"""Shared fixtures for the experiment benchmarks.

Each benchmark regenerates one table or figure of the paper (see
DESIGN.md's experiment index).  Results are printed and also written to
``benchmarks/results/*.txt`` so EXPERIMENTS.md can cite a concrete run.

Scale knobs (environment variables):

* ``SPL_BENCH_FULL=1`` — paper-scale runs (Figure 4/5/6 up to 2^20,
  keep-3 DP everywhere).  Default is a quick mode that preserves every
  qualitative shape at a few seconds per figure.
* ``SPL_FIG4_MAX_LOG2N`` — override the largest FFT size explicitly.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.perfeval.ccompile import have_c_compiler

RESULTS_DIR = Path(__file__).parent / "results"

FULL = os.environ.get("SPL_BENCH_FULL", "0") == "1"

requires_cc = pytest.mark.skipif(
    not have_c_compiler(), reason="benchmarks need a C compiler"
)


def fig4_max_log2n() -> int:
    value = os.environ.get("SPL_FIG4_MAX_LOG2N")
    if value:
        return int(value)
    return 20 if FULL else 14


def write_results(name: str, lines: list[str]) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    text = "\n".join(lines) + "\n"
    path.write_text(text)
    print()
    print(text)
    return path


@pytest.fixture(scope="session")
def small_search_results():
    """The paper's §4.1 search, shared by Figures 3/4/5."""
    from repro.search.dp import search_small_sizes

    sizes = (2, 4, 8, 16, 32, 64)
    cap = None if FULL else 16
    return search_small_sizes(sizes, max_candidates=cap, min_time=0.002)


@pytest.fixture(scope="session")
def large_search(small_search_results):
    """The §4.2 keep-3 DP, shared by Figures 4 and 5."""
    from repro.search.large import LargeSearch

    keep = 3 if FULL else 2
    radices = (4, 5, 6) if not FULL else (1, 2, 3, 4, 5, 6)
    return LargeSearch(small_search_results, keep=keep,
                       radix_log2_range=radices, min_time=0.002)


@pytest.fixture(scope="session")
def fftw_library():
    from repro.fftw import FftwLibrary

    return FftwLibrary()


@pytest.fixture(scope="session")
def fftw_planner(fftw_library):
    from repro.fftw import Planner

    return Planner(fftw_library, min_time=0.002)
