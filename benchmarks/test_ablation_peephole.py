"""Ablation: the machine-dependent peepholes and compiler flop counts.

Section 3.4 describes two SPARC-specific transformations (unary-minus
avoidance and 'automatic' stack allocation) and notes they "may not
have a positive effect on machines other than the SPARC".  This
ablation measures the unary-minus rewrite on the host — reporting,
not asserting, a direction — and verifies the optimizer's flop-count
reductions that Figure 2 rests on.
"""

import numpy as np
import pytest

from repro.core.compiler import CompilerOptions, SplCompiler
from repro.formulas.factorization import ct_dit
from repro.perfeval.runner import build_executable
from repro.perfeval.timing import time_callable

from conftest import requires_cc, write_results

FORMULA = ct_dit(8, 8)


def timed(peephole: bool) -> float:
    compiler = SplCompiler(CompilerOptions(
        optimize="default", unroll=True, codetype="real", language="c",
        peephole=peephole,
    ))
    routine = compiler.compile_formula(FORMULA, f"abl_ph{int(peephole)}",
                                       language="c")
    executable = build_executable(routine)
    return time_callable(executable.timer_closure(), min_time=0.002,
                         repeats=3)


@requires_cc
def test_ablation_peephole(benchmark):
    t_off = timed(peephole=False)
    t_on = timed(peephole=True)

    flops = {}
    ops_total = {}
    for level in ("none", "scalars", "default"):
        compiler = SplCompiler(CompilerOptions(
            optimize=level, unroll=True, codetype="real", language="c"))
        routine = compiler.compile_formula(FORMULA, f"abl_{level}",
                                           language="c")
        flops[level] = routine.flop_count
        ops_total[level] = len(routine.source.splitlines())

    lines = [
        "Ablation: peephole and optimization levels on F_64 (DIT 8x8)",
        f"peephole off: {t_off * 1e9:10.1f} ns/call",
        f"peephole on:  {t_on * 1e9:10.1f} ns/call "
        f"(ratio {t_on / t_off:.3f}; SPARC-specific, direction may vary)",
        "",
        f"{'level':>10} {'flops':>8} {'source lines':>14}",
    ]
    for level in ("none", "scalars", "default"):
        lines.append(
            f"{level:>10} {flops[level]:>8} {ops_total[level]:>14}"
        )
    write_results("ablation_peephole", lines)

    benchmark(lambda: timed(peephole=False))

    # The default optimizations must strictly reduce arithmetic.
    assert flops["default"] < flops["none"]
    # The peephole changes instruction selection, not operation count,
    # so times stay within noise of each other (within 2x either way).
    assert 0.5 < t_on / t_off < 2.0
