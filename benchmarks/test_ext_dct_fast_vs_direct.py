"""Extension: the DCT-II recursion of Section 2.1 versus the definition.

The paper lists the DCT-II factorization as an example of the
algorithms SPL can express but evaluates only the FFT.  This benchmark
completes the story: compile the O(n log n)-style recursive DCT-II
formula and the O(n^2) definition, and show the recursion winning with
a growing margin — the generality claim made concrete.
"""

import numpy as np
import pytest

from repro.core.compiler import CompilerOptions, SplCompiler
from repro.core.nodes import Param
from repro.formulas.transforms import dct2_matrix
from repro.generator.dct_rules import dct2_recursive
from repro.perfeval.runner import build_executable
from repro.perfeval.timing import time_callable

from conftest import requires_cc, write_results

SIZES = (8, 16, 32, 64, 128)


def compile_and_time(formula, name):
    compiler = SplCompiler(CompilerOptions(
        optimize="default", datatype="real", language="c",
        unroll_threshold=8,
    ))
    routine = compiler.compile_formula(formula, name, language="c")
    executable = build_executable(routine)
    seconds = time_callable(executable.timer_closure(), min_time=0.002,
                            repeats=2)
    return routine, executable, seconds


@requires_cc
def test_ext_dct_fast_vs_direct(benchmark):
    rows = []
    last_executable = None
    for n in SIZES:
        direct = Param(name="DCT2", params=(n,))
        fast = dct2_recursive(n)
        d_routine, _, t_direct = compile_and_time(direct, f"dctdir{n}")
        f_routine, f_exec, t_fast = compile_and_time(fast, f"dctfast{n}")
        last_executable = f_exec

        # Both must be correct.
        x = np.random.default_rng(n).standard_normal(n)
        np.testing.assert_allclose(f_exec.apply(x), dct2_matrix(n) @ x,
                                   atol=1e-8)
        rows.append((n, t_direct * 1e9, t_fast * 1e9,
                     d_routine.flop_count, f_routine.flop_count))

    lines = [
        "Extension: recursive DCT-II formula vs the O(n^2) definition",
        f"{'N':>6} {'direct ns':>10} {'fast ns':>10} {'speedup':>8} "
        f"{'direct flops':>13} {'fast flops':>11}",
    ]
    for n, t_d, t_f, fl_d, fl_f in rows:
        lines.append(f"{n:>6} {t_d:>10.1f} {t_f:>10.1f} "
                     f"{t_d / t_f:>8.2f} {fl_d:>13} {fl_f:>11}")
    write_results("ext_dct_fast_vs_direct", lines)

    benchmark(last_executable.timer_closure())

    # Shape: the recursion reduces arithmetic at every size and wins
    # in time at the largest sizes (asymptotics beat constants).
    for n, t_d, t_f, fl_d, fl_f in rows:
        assert fl_f < fl_d, (n, fl_f, fl_d)
    n, t_d, t_f, *_ = rows[-1]
    assert t_f < t_d, rows[-1]
