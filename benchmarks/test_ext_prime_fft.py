"""Extension: prime-size and arbitrary-size FFTs as SPL formulas.

The paper's generality claim, pushed past Cooley-Tukey: Rader's and
Bluestein's algorithms (with power-of-two inner FFTs factored by the
usual CT machinery) compiled against the O(p^2) DFT definition.  The
fast algorithms lose at tiny sizes to their border/chirp overhead and
win with a growing margin — the expected crossover shape.
"""

import numpy as np
import pytest

from repro.core.compiler import CompilerOptions, SplCompiler
from repro.core.nodes import fourier
from repro.formulas.factorization import ct_multi
from repro.formulas.prime import bluestein, rader
from repro.formulas.transforms import dft_matrix
from repro.perfeval.runner import build_executable
from repro.perfeval.timing import time_callable

from conftest import requires_cc, write_results

PRIMES = (17, 31, 61, 127)


def fast_leaf(n: int):
    if n & (n - 1) == 0 and n > 4:
        factors = []
        m = n
        while m > 8:
            factors.append(8)
            m //= 8
        factors.append(m)
        return ct_multi(factors)
    return fourier(n)


def compile_and_time(formula, name):
    compiler = SplCompiler(CompilerOptions(
        optimize="default", datatype="complex", codetype="real",
        language="c", unroll_threshold=8,
    ))
    routine = compiler.compile_formula(formula, name, language="c")
    executable = build_executable(routine)
    seconds = time_callable(executable.timer_closure(), min_time=0.002,
                            repeats=2)
    return routine, executable, seconds


@requires_cc
def test_ext_prime_fft(benchmark):
    rows = []
    last = None
    for p in PRIMES:
        direct = fourier(p)
        _, _, t_direct = compile_and_time(direct, f"primedir{p}")
        _, r_exec, t_rader = compile_and_time(
            rader(p, leaf=fast_leaf), f"primerad{p}")
        _, b_exec, t_blu = compile_and_time(
            bluestein(p, leaf=fast_leaf), f"primeblu{p}")
        last = b_exec

        x = np.random.default_rng(p).standard_normal(p) * (1 + 1j)
        reference = dft_matrix(p) @ x
        np.testing.assert_allclose(r_exec.apply(x), reference, atol=1e-7)
        np.testing.assert_allclose(b_exec.apply(x), reference, atol=1e-7)
        rows.append((p, t_direct * 1e9, t_rader * 1e9, t_blu * 1e9))

    lines = [
        "Extension: prime-size FFTs — Rader and Bluestein vs the "
        "O(p^2) definition (ns/call)",
        f"{'p':>6} {'direct':>10} {'rader':>10} {'bluestein':>11}",
    ]
    for p, t_d, t_r, t_b in rows:
        lines.append(f"{p:>6} {t_d:>10.1f} {t_r:>10.1f} {t_b:>11.1f}")
    lines.append(
        "note: Rader's inner convolution has size p-1, so it is only "
        "fast when p-1 is smooth (17, 31); Bluestein always pads to a "
        "power of two and wins at large primes."
    )
    write_results("ext_prime_fft", lines)

    benchmark(last.timer_closure())

    # Shape: by the largest prime, at least one fast algorithm beats
    # the definition clearly.
    p, t_d, t_r, t_b = rows[-1]
    assert min(t_r, t_b) < t_d, rows[-1]
