"""Extension: search over Walsh-Hadamard factorizations.

Section 5 of the paper points at the Johnson/Pueschel WHT package as
the closest related work — a search over WHT breakdown formulas.  The
SPL system subsumes it: the same generator + compiler + timer machinery
searches the WHT space with no new code.  This benchmark demonstrates
that, reporting the spread between the best and worst WHT_64 formulas
(the reason search matters at all).
"""

import numpy as np
import pytest

from repro.core.compiler import CompilerOptions, SplCompiler
from repro.generator.wht_rules import enumerate_wht_formulas
from repro.perfeval.runner import build_executable
from repro.perfeval.timing import time_callable

from conftest import requires_cc, write_results

N = 64


@requires_cc
def test_ext_wht_search(benchmark):
    compiler = SplCompiler(CompilerOptions(
        optimize="default", datatype="real", language="c",
        unroll_threshold=8,
    ))
    rows = []
    for index, formula in enumerate(enumerate_wht_formulas(N)):
        routine = compiler.compile_formula(formula, f"wht_{index}",
                                           language="c")
        executable = build_executable(routine)
        seconds = time_callable(executable.timer_closure(),
                                min_time=0.002, repeats=2)
        rows.append((seconds, formula.to_spl()))
    rows.sort()

    lines = [
        f"Extension: search over {len(rows)} WHT_{N} breakdown formulas",
        f"{'rank':>4} {'ns/call':>10}  formula",
    ]
    for rank, (seconds, text) in enumerate(rows):
        shown = text if len(text) < 70 else text[:67] + "..."
        lines.append(f"{rank:>4} {seconds * 1e9:>10.1f}  {shown}")
    spread = rows[-1][0] / rows[0][0]
    lines.append(f"best/worst spread: {spread:.2f}x")
    write_results("ext_wht_search", lines)

    # Correctness of the winner.
    from repro.formulas.transforms import wht_matrix
    from repro.core.parser import parse_formula_text

    best_formula = parse_formula_text(rows[0][1])
    routine = compiler.compile_formula(best_formula, "wht_best",
                                       language="c")
    executable = build_executable(routine)
    x = np.random.default_rng(0).standard_normal(N)
    np.testing.assert_allclose(executable.apply(x), wht_matrix(N) @ x,
                               atol=1e-9)

    benchmark(executable.timer_closure())

    # Shape: the formula space has real performance spread (>20%),
    # which is what makes searching worthwhile.
    assert spread > 1.2, spread
