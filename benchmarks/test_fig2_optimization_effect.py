"""Figure 2: effect of basic optimizations.

The paper compiles 45 SPL formulas for FFT N=32 three ways — (1) no
optimization, (2) temporary vectors replaced by scalar variables,
(3) default optimizations — and plots performance normalized to (3).
Its key observation is that the effect *depends on the back-end
compiler*: large wins on SPARC (Workshop 5.0) and Pentium II (egcs),
"insignificant" on MIPS because "the MIPSpro compiler did a good job in
standard optimizations".

A modern gcc at -O3 behaves like the paper's MIPSpro: the three
versions are nearly indistinguishable.  To reproduce the paper's other
two panels we add a weak-back-end axis — the same codes compiled at
-O0 — where the SPL compiler's own optimizations must carry the load
and version (3) wins clearly.
"""

import numpy as np
import pytest

from repro.core.compiler import CompilerOptions, SplCompiler
from repro.generator.fft_rules import enumerate_breakdown_trees
from repro.perfeval.runner import build_executable
from repro.perfeval.timing import time_callable

from conftest import FULL, requires_cc, write_results

N = 32
NUM_FORMULAS = 45 if FULL else 15
VERSIONS = ("none", "scalars", "default")
BACKENDS = {"strong": ("-O3",), "weak": ("-O0",)}


def compile_and_time(formula, level: str, index: int,
                     cflags: tuple[str, ...]) -> float:
    compiler = SplCompiler(CompilerOptions(
        optimize=level, unroll=True, datatype="complex",
        codetype="real", language="c",
    ))
    tag = "".join(f.strip("-") for f in cflags)
    routine = compiler.compile_formula(
        formula, f"fig2_{level}_{index}_{tag}", language="c"
    )
    executable = build_executable(routine, cflags=cflags)
    return time_callable(executable.timer_closure(), min_time=0.002,
                         repeats=2)


@requires_cc
def test_fig2_optimization_effect(benchmark):
    formulas = enumerate_breakdown_trees(N)[1:NUM_FORMULAS + 1]
    normalized = {
        backend: {v: [] for v in VERSIONS} for backend in BACKENDS
    }
    for backend, cflags in BACKENDS.items():
        for index, formula in enumerate(formulas):
            times = {
                level: compile_and_time(formula, level, index, cflags)
                for level in VERSIONS
            }
            for level in VERSIONS:
                normalized[backend][level].append(
                    times["default"] / times[level]
                )

    lines = [
        f"Figure 2: normalized performance of {len(formulas)} SPL "
        f"formulas for FFT N={N}",
        "(1.0 = the default-optimized version on the same backend)",
    ]
    means = {}
    for backend in BACKENDS:
        lines.append("")
        lines.append(f"backend gcc {BACKENDS[backend][0]} ({backend}):")
        lines.append(f"{'formula':>8} {'no-opt':>8} {'scalar':>8} "
                     f"{'default':>8}")
        data = normalized[backend]
        for i in range(len(formulas)):
            lines.append(
                f"{i:>8} {data['none'][i]:>8.3f} "
                f"{data['scalars'][i]:>8.3f} {data['default'][i]:>8.3f}"
            )
        means[backend] = {
            v: float(np.mean(data[v])) for v in VERSIONS
        }
        lines.append(
            f"{'mean':>8} {means[backend]['none']:>8.3f} "
            f"{means[backend]['scalars']:>8.3f} "
            f"{means[backend]['default']:>8.3f}"
        )
    write_results("fig2_optimization_effect", lines)

    # The benchmark fixture times one default-optimized executable.
    compiler = SplCompiler(CompilerOptions(
        optimize="default", unroll=True, codetype="real", language="c"))
    routine = compiler.compile_formula(formulas[0], "fig2_bench",
                                       language="c")
    benchmark(build_executable(routine).timer_closure())

    # Shapes:
    # weak backend = the paper's SPARC/PII panels: no-opt clearly loses.
    assert means["weak"]["none"] < 0.85, means["weak"]
    assert means["weak"]["scalars"] <= 1.1, means["weak"]
    # strong backend = the paper's MIPS panel: differences insignificant.
    for level in VERSIONS:
        assert 0.7 < means["strong"][level] < 1.4, means["strong"]
