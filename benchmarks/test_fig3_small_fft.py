"""Figure 3: performance for small-size FFTs (N = 2 .. 64).

The paper compares straight-line code found by the Equation-10 search
with FFTW's codelets, in pseudo-MFlops = 5 N log2(N) / t(us).  Here the
baseline is the FFTW-substitute's codelets (themselves strided
straight-line code).  Expected shape: the two curves are close — within
a small factor at every size — exactly the paper's conclusion.
"""

import ctypes

import numpy as np
import pytest

from repro.perfeval.timing import pseudo_mflops, time_callable

from conftest import requires_cc, write_results

SIZES = (2, 4, 8, 16, 32, 64)


def codelet_closure(library, n):
    fn = library.codelet_fn(n)
    rng = np.random.default_rng(0)
    x = np.ascontiguousarray(rng.standard_normal(2 * n))
    y = np.zeros(2 * n)
    dp = ctypes.POINTER(ctypes.c_double)
    xp = x.ctypes.data_as(dp)
    yp = y.ctypes.data_as(dp)

    def call() -> None:
        fn(yp, xp, 1, 1, 0, 0)

    call._buffers = (x, y)
    return call


@requires_cc
def test_fig3_small_fft(benchmark, small_search_results, fftw_library):
    rows = []
    ratios = []
    for n in SIZES:
        spl_result = small_search_results[n]
        spl_mflops = spl_result.mflops
        t_codelet = time_callable(codelet_closure(fftw_library, n),
                                  min_time=0.002, repeats=2)
        fftw_mflops = pseudo_mflops(n, t_codelet)
        ratios.append(spl_mflops / fftw_mflops)
        rows.append((n, spl_mflops, fftw_mflops))

    lines = [
        "Figure 3: small-size FFT performance (pseudo-MFlops)",
        f"{'N':>4} {'SPL':>10} {'FFTW codelet':>14} {'SPL/FFTW':>10}",
    ]
    for (n, spl, fftw), ratio in zip(rows, ratios):
        lines.append(f"{n:>4} {spl:>10.1f} {fftw:>14.1f} {ratio:>10.2f}")
    write_results("fig3_small_fft", lines)

    # Time the N=64 winner through the benchmark fixture.
    from repro.search.measure import measure_formula
    from repro.search.dp import default_small_compiler

    compiler = default_small_compiler()
    routine = compiler.compile_formula(small_search_results[64].formula,
                                       "fig3_best64", language="c")
    from repro.perfeval.runner import build_executable

    benchmark(build_executable(routine).timer_closure())

    # Shape: SPL straight-line code is within a small factor of the
    # codelets at every size (the paper's "very close").
    assert all(ratio > 0.4 for ratio in ratios), ratios
    # And performance grows with size in this range (per-call overhead
    # amortizes), as in the paper's curves.
    mflops = [row[1] for row in rows]
    assert mflops[-1] > mflops[0]
