"""Figure 4: performance for large-size FFTs (N = 2^7 .. 2^20).

Three curves, as in the paper: SPL-compiled loop code (search winners
embedded as codelet templates), the FFTW substitute with a measured
plan, and the FFTW substitute with an estimated plan.

Expected shape: all three are the same order of magnitude, measured
plans are at least as good as estimated plans, and the pseudo-MFlops
curves eventually decay as N outgrows the caches (the paper's "two
large drops").  Quick mode runs to 2^14; set SPL_BENCH_FULL=1 or
SPL_FIG4_MAX_LOG2N=20 for the paper's full range.
"""

import numpy as np
import pytest

from repro.perfeval.timing import pseudo_mflops, time_callable

from conftest import fig4_max_log2n, requires_cc, write_results


@requires_cc
def test_fig4_large_fft(benchmark, large_search, fftw_library,
                        fftw_planner):
    sizes = [1 << k for k in range(7, fig4_max_log2n() + 1)]
    rows = []
    for n in sizes:
        spl = large_search.best_measurement(n)
        measured = fftw_planner.plan_measure(n)
        estimated = fftw_planner.plan_estimate(n)
        t_measured = time_callable(
            fftw_library.transform(measured).timer_closure(),
            min_time=0.002, repeats=2)
        t_estimated = time_callable(
            fftw_library.transform(estimated).timer_closure(),
            min_time=0.002, repeats=2)
        rows.append((
            n,
            spl.mflops,
            pseudo_mflops(n, t_measured),
            pseudo_mflops(n, t_estimated),
        ))

    lines = [
        "Figure 4: large-size FFT performance (pseudo-MFlops)",
        f"{'N':>8} {'SPL':>10} {'FFTW':>10} {'FFTW-est':>10}",
    ]
    for n, spl, fftw, est in rows:
        lines.append(f"{n:>8} {spl:>10.1f} {fftw:>10.1f} {est:>10.1f}")
    write_results("fig4_large_fft", lines)

    benchmark(large_search.best_measurement(sizes[-1])
              .executable.timer_closure())

    spl_curve = [row[1] for row in rows]
    fftw_curve = [row[2] for row in rows]
    est_curve = [row[3] for row in rows]
    # Shape: same order of magnitude throughout (the paper's curves
    # track each other within ~2x).
    for spl, fftw in zip(spl_curve, fftw_curve):
        assert 0.2 < spl / fftw < 8.0, (spl, fftw)
    # Measured plans beat estimated plans on average; pointwise the
    # paper's own Figure 4 shows "FFTW estimate" winning at some sizes
    # (e.g. its Pentium II panel), so only the mean is constrained.
    mean_ratio = float(np.mean([f / e for f, e in
                                zip(fftw_curve, est_curve)]))
    assert mean_ratio > 0.85, (mean_ratio, rows)
    for fftw, est in zip(fftw_curve, est_curve):
        assert fftw >= 0.5 * est, (fftw, est)
