"""Figure 5: memory consumption for large-size FFTs.

The paper measures the memory required to run the SPL-generated code
against FFTW with estimated and with measured plans, finding SPL close
to "FFTW estimate" while FFTW's measuring planner needs more memory
during its runtime search.

Accounting here: SPL = generated code + twiddle tables + temporaries +
I/O buffers; FFTW = executor code share + plan (twiddles + work) + I/O
buffers; FFTW-measure additionally charges the planner's candidate
allocations (its peak planning footprint).
"""

import pytest

from repro.perfeval.ccompile import compile_shared_object
from repro.perfeval.memory import routine_memory

from conftest import fig4_max_log2n, requires_cc, write_results


@requires_cc
def test_fig5_memory(benchmark, large_search, fftw_library, fftw_planner):
    sizes = [1 << k for k in range(7, fig4_max_log2n() + 1)]
    rows = []
    for n in sizes:
        candidate = large_search.best_candidate(n)
        routine = large_search.compiler.compile_formula(
            candidate.formula, f"fig5_{n}", language="c")
        so_path = compile_shared_object(routine.source)
        spl_bytes = routine_memory(routine, so_path).total_bytes

        measured = fftw_planner.plan_measure(n)
        planning_bytes = fftw_planner.planning_bytes_by_n.get(n, 0)
        estimated = fftw_planner.plan_estimate(n)
        code_share = fftw_library.shared_object_size()
        io_bytes = 2 * (2 * n) * 8
        est_bytes = estimated.memory_bytes() + code_share + io_bytes
        meas_bytes = (measured.memory_bytes() + code_share + io_bytes
                      + planning_bytes)
        rows.append((n, spl_bytes, meas_bytes, est_bytes))

    lines = [
        "Figure 5: memory consumption for large-size FFTs (KB)",
        f"{'N':>8} {'SPL':>10} {'FFTW':>10} {'FFTW-est':>10}",
    ]
    for n, spl, meas, est in rows:
        lines.append(f"{n:>8} {spl / 1024:>10.1f} {meas / 1024:>10.1f} "
                     f"{est / 1024:>10.1f}")
    write_results("fig5_memory", lines)

    benchmark(lambda: routine_memory(routine, so_path))

    for n, spl, meas, est in rows:
        # FFTW's measuring planner needs more memory than estimate mode
        # (the paper's main observation in Figure 5).
        assert meas > est
        # SPL memory is the same order as FFTW-estimate: within ~4x once
        # the data (not the code) dominates.
        if n >= 1024:
            assert spl < 4 * est
            assert spl > est / 8
