"""Figure 6: accuracy of the FFT computation.

The paper runs benchfft over the generated codes and plots the relative
error per size (of order 1e-14 at 2^18, growing slowly — consistent
with the O(sqrt(log N)) error growth of Cooley-Tukey in double
precision).  Here the SPL-compiled codes are compared against a
high-precision reference for N = 2^1 .. 2^16 (2^18 in full mode).
"""

import math
import os

import numpy as np
import pytest

from repro.core.compiler import CompilerOptions, SplCompiler
from repro.formulas.factorization import ct_multi
from repro.perfeval.accuracy import relative_error
from repro.perfeval.runner import build_executable

from conftest import FULL, requires_cc, write_results

MAX_LOG2N = 18 if FULL else 14


def spl_fft_callable(n: int):
    """Compile a radix-8 (with remainder) SPL FFT for size n."""
    compiler = SplCompiler(CompilerOptions(
        optimize="default", datatype="complex", codetype="real",
        language="c", unroll_threshold=8,
    ))
    if n == 2:
        factors = [2]
    else:
        factors = []
        m = n
        while m > 8:
            factors.append(8)
            m //= 8
        factors.append(m)
    routine = compiler.compile_formula(ct_multi(factors), f"acc{n}",
                                       language="c")
    executable = build_executable(routine)
    return executable.apply


@requires_cc
def test_fig6_accuracy(benchmark):
    sizes = [1 << k for k in range(1, MAX_LOG2N + 1)]
    rows = []
    for n in sizes:
        fft = spl_fft_callable(n)
        error = relative_error(fft, n, trials=2)
        rows.append((n, error))

    lines = [
        "Figure 6: relative error of the SPL-generated FFT per size",
        f"{'N':>8} {'rel. L2 error':>14}",
    ]
    for n, error in rows:
        lines.append(f"{n:>8} {error:>14.3e}")
    write_results("fig6_accuracy", lines)

    benchmark(lambda: relative_error(np.fft.fft, 256, trials=1))

    errors = [e for _, e in rows]
    # Shape: double-precision accuracy at every size...
    assert all(e < 1e-12 for e in errors), errors
    # ...with slow growth: the largest size is within a modest factor
    # of machine epsilon scaled by sqrt(log N) (paper: ~1e-14 region).
    n_max, e_max = rows[-1]
    bound = 50 * np.finfo(float).eps * math.sqrt(math.log2(n_max))
    assert e_max < bound, (e_max, bound)
