"""Distributed-search + wisdom-pack smoke: the deployment round trip.

A small but *real* end-to-end run of the fault-tolerant offline
pipeline (everything compiled and timed by the host toolchain, no
stubs):

1. distributed small-size search over forked leased workers, with
   chaos-injected worker SIGKILLs and a completion journal;
2. a second run replaying entirely from wisdom (zero re-measurement);
3. ``pack build`` -> ``pack verify`` on the search's wisdom store,
   bundling the compiled portable artifacts;
4. a hot boot on a simulated toolchain-less replica: the pack's
   artifacts serve the first request on the C backend with the
   compiler lookup stubbed to fail.

Skips (never fails) on hosts without POSIX fork or a C compiler,
matching the chaos-smoke convention.  The record lands in
``benchmarks/results/BENCH_search_dist.txt``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.perfeval import ccompile
from repro.perfeval.sandbox import Quarantine
from repro.search.dist import distributed_search_small_sizes
from repro.search.queue import (
    QueuePolicy,
    SearchChaos,
    TaskJournal,
    queue_supported,
)
from repro.serve.plans import PlanKey, PlanRegistry
from repro.wisdom.pack import build_pack, load_pack, verify_pack
from repro.wisdom.store import WisdomStore

from conftest import requires_cc, write_results

requires_fork = pytest.mark.skipif(
    not queue_supported(), reason="distributed search needs POSIX fork")

SIZES = (2, 4, 8)
CHAOS = SearchChaos(kill_rate=0.3, kill_attempts=1, seed=3)
POLICY = QueuePolicy(workers=2, lease_timeout_s=60.0,
                     heartbeat_interval_s=0.05,
                     heartbeat_timeout_s=20.0, max_attempts=3,
                     backoff_base_s=0.02, backoff_max_s=0.2)


@requires_cc
@requires_fork
def test_search_dist_smoke(tmp_path, monkeypatch):
    lines = ["distributed search + pack round trip",
             f"sizes={SIZES} chaos={CHAOS.to_spec()}"]

    # 1. Distributed search under injected worker kills.
    wisdom = WisdomStore(tmp_path / "wisdom.json")
    journal_path = tmp_path / "journal.jsonl"
    results = distributed_search_small_sizes(
        SIZES, policy=POLICY, wisdom=wisdom,
        journal_path=str(journal_path), quarantine=Quarantine(),
        chaos=CHAOS, min_time=0.002, repeats=1)
    for n in SIZES:
        result = results[n]
        assert not result.from_wisdom
        lines.append(f"n={n}: {result.formula.to_spl()} "
                     f"{result.seconds * 1e6:.1f}us "
                     f"({result.candidates_tried} candidates)")
    replay = TaskJournal(journal_path).replay()
    expected = sum(results[n].candidates_tried for n in SIZES)
    assert len(replay.results) == expected
    assert replay.duplicate_keys == 0
    lines.append(f"journal: {len(replay.results)} records, "
                 f"0 duplicates")

    # 2. A rerun replays wisdom: zero candidates re-measured.
    again = distributed_search_small_sizes(
        SIZES, policy=POLICY, wisdom=wisdom, quarantine=Quarantine(),
        chaos=CHAOS, min_time=0.002, repeats=1)
    assert all(again[n].from_wisdom for n in SIZES)
    assert all(again[n].formula.to_spl() == results[n].formula.to_spl()
               for n in SIZES)
    lines.append("wisdom replay: all sizes, zero re-measurement")

    # 3. Pack the store (with compiled portable artifacts) and verify.
    pack_path = tmp_path / "wisdom.pack"
    summary = build_pack(wisdom, pack_path, include_artifacts=True)
    ok, diagnostics, info = verify_pack(pack_path)
    assert ok, [d.describe() for d in diagnostics]
    lines.append(f"pack: {summary['entries']} entries, "
                 f"{summary['artifacts']} artifacts, "
                 f"{summary['bytes']} bytes, verify OK")

    # 4. Hot boot on a replica with no C compiler at all.
    consumer_build = tmp_path / "consumer-build"
    consumer_build.mkdir()
    monkeypatch.setenv("SPL_BUILD_DIR", str(consumer_build))
    monkeypatch.setattr(ccompile, "_find_compiler", lambda: None)
    loaded = load_pack(pack_path, build_dir=consumer_build)
    assert loaded.store is not None and loaded.entries_loaded == len(SIZES)
    registry = PlanRegistry(prefer="c", wisdom=loaded.store,
                            wisdom_source="pack")
    plan = registry.get(PlanKey(transform="fft", n=8,
                                dtype="complex128"))
    assert plan.from_wisdom
    assert plan.executable.backend == "c"
    x = (np.random.default_rng(9).standard_normal(8)
         + 1j * np.random.default_rng(10).standard_normal(8))
    np.testing.assert_allclose(plan.executable.apply(x), np.fft.fft(x),
                               atol=1e-9)
    lines.append(f"hot boot without toolchain: backend={plan.executable.backend}, "
                 f"{loaded.artifacts_installed} artifacts installed, "
                 f"wisdom_source={registry.stats()['wisdom_source']}")

    write_results("BENCH_search_dist", lines)
