"""Serving latency and sustained throughput: the asyncio front-end.

Drives a live :class:`repro.serve.SplServer` (real sockets, real
framing, real dispatch) with the open-loop load generator and records,
per transform size:

* a **capacity probe** — offered load far beyond capacity with a deep
  queue; the completion rate is the sustainable vectors/sec through
  the whole socket -> admission -> batcher -> backend path;
* a **steady run** at ~50% of probed capacity — the p50/p90/p99
  latency a provisioned service delivers;
* one **mixed burst run** — both sizes interleaved, Poisson arrivals
  with 4x bursts, exercising the coalescing window under uneven load;
* an **overload run** — offered load ~4x capacity against a tiny
  admission queue; the point is that the bounded queue sheds with
  typed ``overload`` rejections while completed requests keep flowing
  (latency stays bounded instead of the queue growing without limit).

Latency numbers are end-to-end from the client's submit to its
response, including wire time on loopback.  The artifact lands in
``BENCH_serving.json`` (benchmarks/results/ plus a repo-root mirror),
written *before* any acceptance gate so minimal runners always leave
a record.

A **resilience run** (``test_serving_resilience``) boots a real
supervised fleet (``spl serve --workers 2`` in a subprocess),
SIGKILLs a worker mid-load, and records availability — overall and
after the restart-backoff recovery window — plus p99 across the
kill-restart event, under the ``resilience`` key of the same
artifact.  It skips (never fails) on hosts without fork or
``SO_REUSEPORT``.

Scale knobs: ``SPL_SERVING_SIZES=64,1024`` (FFT sizes),
``SPL_SERVING_DURATION=0.8`` (seconds per steady run),
``SPL_SERVING_CONNECTIONS=4``, ``SPL_RESILIENCE_RATE=200`` /
``SPL_RESILIENCE_DURATION=5`` (chaos offered rate and length).
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
from pathlib import Path

import pytest

from repro.perfeval.ccompile import have_c_compiler
from repro.serve import PlanKey, PlanRegistry, Router, SplServer
from repro.serve.chaos import ChaosConfig, fleet_supported, run_chaos
from repro.serve.loadgen import WorkloadSpec, run_load

from conftest import RESULTS_DIR, write_results

PROBE_RATE = 50_000.0  # offered rate for the capacity probe
PROBE_DURATION = 0.4
OVERLOAD_QUEUE_LIMIT = 8
OVERLOAD_FACTOR = 4.0


def _sizes() -> tuple[int, ...]:
    value = os.environ.get("SPL_SERVING_SIZES")
    if value:
        return tuple(int(p) for p in value.split(",") if p.strip())
    return (64, 1024)


def _duration() -> float:
    return float(os.environ.get("SPL_SERVING_DURATION", "0.8"))


def _connections() -> int:
    return int(os.environ.get("SPL_SERVING_CONNECTIONS", "4"))


class _ServerThread:
    """A live server on an ephemeral port in a background thread."""

    def __init__(self, router: Router, warm: list[PlanKey]):
        self._router = router
        self._warm = warm
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._main, daemon=True)
        self.host = ""
        self.port = 0

    def _main(self) -> None:
        asyncio.run(self._amain())

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = SplServer(self._router, warm=self._warm)
        self.host, self.port = await server.start()
        self._ready.set()
        await self._stop.wait()
        await server.close()

    def __enter__(self) -> "_ServerThread":
        self._thread.start()
        assert self._ready.wait(120), "server did not boot"
        return self

    def __exit__(self, *exc_info) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=120)


def _run(server: _ServerThread, **kwargs) -> dict:
    async def drive():
        return await run_load(server.host, server.port, **kwargs)

    return asyncio.run(drive()).summary()


def _artifact_paths() -> tuple[Path, Path]:
    return (RESULTS_DIR / "BENCH_serving.json",
            Path(__file__).resolve().parent.parent
            / "BENCH_serving.json")


def _write_artifact(payload: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    text = json.dumps(payload, indent=2) + "\n"
    for path in _artifact_paths():
        path.write_text(text)


def _update_artifact(updates: dict) -> None:
    """Merge top-level keys into the artifact, preserving whatever
    other sections an earlier benchmark already recorded."""
    primary, _ = _artifact_paths()
    payload: dict = {}
    if primary.exists():
        try:
            payload = json.loads(primary.read_text())
        except (OSError, ValueError):
            payload = {}
    payload.update(updates)
    _write_artifact(payload)


def test_serving_latency_and_throughput():
    sizes = _sizes()
    duration = _duration()
    connections = _connections()
    registry = PlanRegistry()  # c backend when a compiler is on PATH
    keys = [PlanKey("fft", n, "complex128") for n in sizes]

    per_size = []
    with _ServerThread(Router(registry, queue_limit=256),
                       warm=keys) as server:
        for n in sizes:
            mix = {WorkloadSpec("fft", n): 1.0}
            probe = _run(server, mix=mix, rate=PROBE_RATE,
                         duration=PROBE_DURATION, pattern="uniform",
                         connections=connections, seed=1)
            capacity = probe["achieved_rate"]
            steady_rate = max(200.0, 0.5 * capacity)
            steady = _run(server, mix=mix, rate=steady_rate,
                          duration=duration, pattern="poisson",
                          connections=connections, seed=2)
            per_size.append({
                "n": n,
                "capacity_vps": capacity,
                "probe": probe,
                "steady": steady,
            })

        mixed = _run(
            server,
            mix={WorkloadSpec("fft", n): 1.0 for n in sizes},
            rate=max(400.0, 0.5 * min(r["capacity_vps"]
                                      for r in per_size)),
            duration=duration, pattern="burst",
            connections=connections, seed=3)

    # Overload against a fresh router with a tiny admission queue (a
    # fresh one so steady-state counters don't blur the picture).
    smallest = min(sizes)
    overload_rate = max(2000.0, OVERLOAD_FACTOR * max(
        r["capacity_vps"] for r in per_size if r["n"] == smallest))
    with _ServerThread(
            Router(PlanRegistry(),
                   queue_limit=OVERLOAD_QUEUE_LIMIT),
            warm=[PlanKey("fft", smallest, "complex128")]) as server:
        overload = _run(
            server, mix={WorkloadSpec("fft", smallest): 1.0},
            rate=overload_rate, duration=min(duration, 0.5),
            pattern="uniform", connections=connections, seed=4)

    lines = [
        "Serving latency and sustained throughput "
        "(end-to-end over loopback)",
        f"{'N':>6} {'capacity v/s':>13} {'steady v/s':>11} "
        f"{'p50 ms':>8} {'p90 ms':>8} {'p99 ms':>8}",
    ]
    for rec in per_size:
        steady = rec["steady"]
        lines.append(
            f"{rec['n']:>6} {rec['capacity_vps']:>13.0f} "
            f"{steady['achieved_rate']:>11.0f} "
            f"{steady['p50_ms']:>8.2f} {steady['p90_ms']:>8.2f} "
            f"{steady['p99_ms']:>8.2f}"
        )
    lines.append(
        f"mixed burst: {mixed['achieved_rate']:.0f} v/s, "
        f"p99 {mixed['p99_ms']:.2f} ms, errors {mixed['errors']}"
    )
    lines.append(
        f"overload (queue_limit={OVERLOAD_QUEUE_LIMIT}, offered "
        f"{overload['offered_rate']:.0f} v/s): completed "
        f"{overload['completed']}, rejected "
        f"{overload['errors'].get('overload', 0)} (typed), p99 "
        f"{overload['p99_ms']:.2f} ms"
    )
    write_results("serving", lines)

    # The artifact is written before any gate below can fail.
    _update_artifact({
        "sizes": list(sizes),
        "duration_s": duration,
        "connections": connections,
        "backend": registry.prefer,
        "c_compiler": have_c_compiler(),
        "per_size": per_size,
        "mixed_burst": mixed,
        "overload": {
            "queue_limit": OVERLOAD_QUEUE_LIMIT,
            "summary": overload,
        },
    })

    # Acceptance: every steady run completes work cleanly with a
    # measured latency distribution...
    for rec in per_size:
        steady = rec["steady"]
        assert steady["completed"] > 0
        assert steady["errors"] == {}, (
            f"n={rec['n']}: steady run at half capacity saw "
            f"{steady['errors']}"
        )
        assert steady["p99_ms"] > 0
        assert steady["p50_ms"] <= steady["p99_ms"]
    assert mixed["completed"] > 0

    # ...and overload degrades into *typed, bounded-queue* rejections,
    # not transport failures, while the server keeps serving.
    assert overload["completed"] > 0
    assert overload["errors"].get("overload", 0) > 0, (
        "overload run produced no bounded-queue rejections"
    )
    assert set(overload["errors"]) <= {"overload", "deadline"}


def test_serving_resilience():
    """Availability and p99 across a worker kill-restart event.

    A real supervised fleet (2 workers, subprocess CLI) under
    open-loop load with retrying clients; one worker is SIGKILLed
    mid-run plus light server-side stall/truncate injection.  Gates:
    zero wrong answers, and post-recovery availability >= 99%."""
    if not fleet_supported():
        pytest.skip("supervised fleets need fork and SO_REUSEPORT")

    rate = float(os.environ.get("SPL_RESILIENCE_RATE", "200"))
    duration = float(os.environ.get("SPL_RESILIENCE_DURATION", "5"))
    kill_at = max(0.5, duration * 0.3)
    recovery_window = max(1.0, duration * 0.4)
    report = run_chaos(
        workers=2, n=64, rate=rate, duration=duration,
        kill_at=(kill_at,), recovery_window_s=recovery_window,
        server_chaos=ChaosConfig(stall_rate=0.005, stall_s=0.8,
                                 truncate_rate=0.005, seed=13),
        connections=_connections(), seed=17)
    summary = report.summary()

    write_results("serving_resilience", [
        "Fleet resilience across a worker kill-restart "
        "(2 workers, SIGKILL mid-load, retrying clients)",
        f"offered {summary['offered']} ok {summary['ok']} "
        f"wrong {summary['wrong']} errors {summary['errors']}",
        f"availability {summary['availability']:.4f} "
        f"(post-recovery {summary['post_recovery_availability']:.4f}"
        f" over {summary['post_recovery_offered']} arrivals)",
        f"p50 {summary['p50_ms']:.2f} ms, p99 {summary['p99_ms']:.2f}"
        f" ms across the kill-restart event; "
        f"reconnects {summary['reconnects']}, "
        f"retries spent {summary['retries_spent']}",
    ])

    # Recorded before the gates so failed runs still leave evidence.
    _update_artifact({"resilience": {
        "workers": 2,
        "rate": rate,
        "duration_s": duration,
        "kill_at_s": kill_at,
        "summary": summary,
    }})

    assert report.offered > 0
    assert report.wrong == 0, (
        f"{report.wrong} transforms returned INCORRECT results"
    )
    assert report.killed_pids, "the chaos kill never landed"
    assert report.post_recovery_offered > 0
    assert report.post_recovery_availability >= 0.99, summary
    assert report.availability >= 0.9, summary
