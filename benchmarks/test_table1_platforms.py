"""Table 1: experiment platforms.

The paper lists three 1990s workstations (UltraSPARC II 333MHz, MIPS
R10000 195MHz, Pentium II 400MHz) with their caches, memory, OS and
back-end compiler.  This benchmark prints the equivalent inventory row
for the host the reproduction runs on, next to the paper's rows.
"""

from repro.perfeval.platform import format_table, host_platform

from conftest import write_results

PAPER_ROWS = [
    "Paper platforms (for reference):",
    "  UltraSPARC II  333MHz  16KB/16KB L1  2MB L2  128MB  Solaris 7"
    "  Workshop 5.0",
    "  MIPS R10000    195MHz  32KB/32KB L1  1MB L2  384MB  IRIX64 6.5"
    "  MIPSpro 7.3.1.1m",
    "  Pentium II     400MHz  16KB/16KB L1  512KB L2  256MB  Linux 2.2.18"
    "  egcs 1.1.2",
]


def test_table1_platform_inventory(benchmark):
    row = benchmark(host_platform)
    lines = [format_table([row]), ""]
    lines.extend(PAPER_ROWS)
    write_results("table1_platforms", lines)
    data = row.as_table_row()
    assert data["CPU"]
    assert data["OS"]
