"""Throughput vs batch size and thread count: the execution runtime.

Beyond the paper: every backend has an ``apply_many`` path that
amortizes per-call overhead (Python interpretation, ctypes crossings,
buffer setup) over a ``(B, n)`` batch, and a parallel path that splits
the batch axis across workers (the OpenMP ``spl_batch_omp_*`` C driver
or sharded thread-pool dispatch).  This benchmark measures vectors/sec
for per-vector ``apply``, for ``apply_many`` at several batch sizes,
and for ``apply_many`` at the largest batch across a thread-count
sweep, for every available backend plus the FFTW-substitute executor.
Results land in ``BENCH_throughput.json`` (under ``benchmarks/results``
and mirrored at the repo root) so the perf trajectory is tracked
across PRs.

Expected shape: batching pays the most where per-call overhead
dominates, and threading pays where per-batch compute dominates —
small transforms are bandwidth/overhead-bound and may not scale, large
ones approach the core count.  Machines with one core (or toolchains
without OpenMP) still record the serial curves.

The artifact is written *before* any acceptance gate, and missing
capabilities (no C compiler, no OpenMP, one core) skip their gates
instead of failing, so minimal CI runners always produce an artifact.

Each record also carries the optimizer's scratch-memory outcome
(``scratch_bytes_before`` / ``scratch_bytes`` / ``temps_eliminated``):
cross-stage fusion plus liveness-based temp reuse must cut per-call
scratch by at least :data:`SCRATCH_REDUCTION_FLOOR` at n >= 256.  A
compose-heavy radix-2 n=512 plan (log2(n) stages, the worst case for
stage-at-a-time scratch) is swept alongside the mixed-radix plans.

``test_cold_plan_latency`` adds a ``cold_plan_latency`` section to the
same artifact: time-to-first-execution for a fresh codelet plan via
the gcc shared-object path (fresh build directory, no ``.so`` cache)
versus the in-process JIT, with the acceptance gate that the JIT is at
least :data:`COLD_PLAN_SPEEDUP_FLOOR` times faster for n <=
:data:`COLD_PLAN_MAX_N` whenever both tiers are available (skipped,
not failed, otherwise).

Scale knobs: ``SPL_THROUGHPUT_SIZES=8,16`` (FFT sizes),
``SPL_THROUGHPUT_BATCHES=1,8,64``, ``SPL_THROUGHPUT_THREADS=1,2``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.compiler import CompilerOptions, SplCompiler
from repro.perfeval.ccompile import have_c_compiler, have_openmp
from repro.perfeval.runner import build_executable
from repro.perfeval.timing import time_callable
from repro.runtime.pool import cpu_count

from conftest import RESULTS_DIR, write_results

MIN_TIME = 0.002

#: Acceptance floors: apply_many at the largest batch must beat
#: per-vector apply by at least this factor, per backend.  The pure
#: Python backend is reported but not gated (its apply path reuses
#: scratch too, so the batch win is smaller and noisier).
SPEEDUP_FLOORS = {"numpy": 5.0, "c": 1.5}

#: Non-flaky parallel sanity bound: threaded apply_many wall-time must
#: not exceed this multiple of serial wall-time (a "threads don't make
#: it pathologically slower" check, deliberately not a speedup gate —
#: speedups depend on core count and transform size and are recorded,
#: not asserted).
PARALLEL_WALLTIME_BOUND = 1.25

#: At n >= 256 the optimizer must cut per-call scratch bytes by at
#: least this fraction relative to the unoptimized (stage-at-a-time)
#: program — the ISSUE's "scratch_bytes down >= 30%" acceptance gate.
SCRATCH_REDUCTION_FLOOR = 0.30

#: Cold-plan acceptance: for sizes up to COLD_PLAN_MAX_N, first
#: execution via the in-process JIT must come at least this many times
#: sooner than via a fresh gcc shared-object build.
COLD_PLAN_SPEEDUP_FLOOR = 5.0
COLD_PLAN_MAX_N = 64


def _env_ints(name: str, default: tuple[int, ...]) -> tuple[int, ...]:
    value = os.environ.get(name)
    if value:
        return tuple(int(part) for part in value.split(",") if part.strip())
    return default


def _sizes() -> tuple[int, ...]:
    return _env_ints("SPL_THROUGHPUT_SIZES", (8, 64, 256))


def _batches() -> tuple[int, ...]:
    return _env_ints("SPL_THROUGHPUT_BATCHES", (1, 8, 64))


def _threads() -> tuple[int, ...]:
    return _env_ints("SPL_THROUGHPUT_THREADS", (1, 2))


def _factors(n: int) -> list[int]:
    """Cooley-Tukey factors with small (unrollable) leaves."""
    factors = []
    while n > 8:
        factors.append(4 if n % 4 == 0 else 2)
        n //= factors[-1]
    factors.append(n)
    return factors


def _compile_fft(n: int, language: str, factors: list[int] | None = None):
    from repro.formulas.factorization import ct_multi

    compiler = SplCompiler(CompilerOptions(codetype="real",
                                           unroll_threshold=16))
    return compiler.compile_formula(ct_multi(factors or _factors(n)),
                                    f"tp{n}", language=language)


def _radix2_factors(n: int) -> list[int]:
    """All-2 factorization: log2(n) compose stages, the scratch-heavy
    worst case the liveness pass exists for."""
    factors = []
    while n > 1:
        factors.append(2)
        n //= 2
    return factors


def _apply_closure(executable, n):
    rng = np.random.default_rng(0)
    x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    apply = executable.apply

    def call() -> None:
        apply(x)

    call._buffers = (x,)
    return call


def _fftw_apply_closure(transform):
    rng = np.random.default_rng(0)
    x = rng.standard_normal(transform.n) \
        + 1j * rng.standard_normal(transform.n)

    def call() -> None:
        transform.apply(x)

    call._buffers = (x,)
    return call


def _fftw_batch_closure(transform, batch, threads=None):
    rng = np.random.default_rng(0)
    X = rng.standard_normal((batch, transform.n)) \
        + 1j * rng.standard_normal((batch, transform.n))

    def call() -> None:
        transform.apply_many(X, threads=threads)

    call._buffers = (X,)
    return call


def _rates_for_executable(executable, n, batches, threads) -> dict:
    rates = {}
    t = time_callable(_apply_closure(executable, n), min_time=MIN_TIME)
    rates["apply"] = 1.0 / t
    for batch in batches:
        t = time_callable(executable.timer_closure_many(batch),
                          min_time=MIN_TIME)
        rates[f"apply_many[{batch}]"] = batch / t
    top = batches[-1]
    for nthreads in threads:
        t = time_callable(
            executable.timer_closure_many(top, threads=nthreads),
            min_time=MIN_TIME)
        rates[f"apply_many[{top},threads={nthreads}]"] = top / t
    return rates


def _rates_for_fftw(transform, batches, threads) -> dict:
    rates = {}
    t = time_callable(_fftw_apply_closure(transform), min_time=MIN_TIME)
    rates["apply"] = 1.0 / t
    for batch in batches:
        t = time_callable(_fftw_batch_closure(transform, batch),
                          min_time=MIN_TIME)
        rates[f"apply_many[{batch}]"] = batch / t
    top = batches[-1]
    for nthreads in threads:
        t = time_callable(_fftw_batch_closure(transform, top, nthreads),
                          min_time=MIN_TIME)
        rates[f"apply_many[{top},threads={nthreads}]"] = top / t
    return rates


_ROOT_ARTIFACT = (Path(__file__).resolve().parent.parent
                  / "BENCH_throughput.json")


def _write_artifact(payload: dict) -> None:
    """benchmarks/results/ copy plus a repo-root mirror (the tracked
    perf-trajectory file).  Sections owned by other tests in this file
    are carried over from the existing mirror so a partial run never
    erases them."""
    if _ROOT_ARTIFACT.exists():
        try:
            existing = json.loads(_ROOT_ARTIFACT.read_text())
        except (OSError, ValueError):
            existing = {}
        for section in ("cold_plan_latency",):
            if section in existing and section not in payload:
                payload[section] = existing[section]
    RESULTS_DIR.mkdir(exist_ok=True)
    text = json.dumps(payload, indent=2) + "\n"
    (RESULTS_DIR / "BENCH_throughput.json").write_text(text)
    _ROOT_ARTIFACT.write_text(text)


def _merge_artifact_section(name: str, section: dict) -> None:
    """Insert/replace one top-level section in the artifact, keeping
    everything else (used by tests that own a single section)."""
    payload: dict = {}
    if _ROOT_ARTIFACT.exists():
        try:
            payload = json.loads(_ROOT_ARTIFACT.read_text())
        except (OSError, ValueError):
            payload = {}
    payload[name] = section
    RESULTS_DIR.mkdir(exist_ok=True)
    text = json.dumps(payload, indent=2) + "\n"
    (RESULTS_DIR / "BENCH_throughput.json").write_text(text)
    _ROOT_ARTIFACT.write_text(text)


def test_throughput_batch(request):
    sizes = _sizes()
    batches = _batches()
    threads = _threads()
    top = batches[-1]
    backends = ["python", "numpy"] + (["c"] if have_c_compiler() else [])
    fftw_planner = (request.getfixturevalue("fftw_planner")
                    if have_c_compiler() else None)
    records = []
    for n in sizes:
        for backend in backends:
            routine = _compile_fft(n, backend)
            executable = build_executable(routine, prefer=backend)
            assert executable.backend == backend
            records.append({
                "backend": backend, "n": n, "plan": "mixed-radix",
                "parallel_driver": ("openmp" if executable.batch_omp_fn
                                    is not None else "sharded"),
                "scratch_bytes": routine.scratch_bytes,
                "scratch_bytes_before": routine.scratch_bytes_before,
                "temps_eliminated": routine.temps_eliminated,
                "rates": _rates_for_executable(executable, n,
                                               batches, threads),
            })
        if fftw_planner is not None:
            transform = fftw_planner.library.transform(
                fftw_planner.plan_estimate(n))
            records.append({
                "backend": "fftw", "n": n, "plan": "mixed-radix",
                "parallel_driver": "sharded",
                "rates": _rates_for_fftw(transform, batches, threads),
            })

    # Compose-heavy worst case: an all-radix-2 n=512 plan has log2(n)
    # compose stages, so stage-at-a-time code allocates one temp array
    # per stage; liveness-based reuse collapses them to the max-live
    # set.  Swept on the fastest available backend.
    radix2_n = 512
    radix2_backend = "c" if have_c_compiler() else "numpy"
    routine = _compile_fft(radix2_n, radix2_backend,
                           factors=_radix2_factors(radix2_n))
    executable = build_executable(routine, prefer=radix2_backend)
    records.append({
        "backend": radix2_backend, "n": radix2_n, "plan": "radix2",
        "parallel_driver": ("openmp" if executable.batch_omp_fn
                            is not None else "sharded"),
        "scratch_bytes": routine.scratch_bytes,
        "scratch_bytes_before": routine.scratch_bytes_before,
        "temps_eliminated": routine.temps_eliminated,
        "rates": _rates_for_executable(executable, radix2_n,
                                       batches, threads),
    })

    lines = [
        "Throughput vs batch size and thread count (vectors/sec)",
        f"{'N':>5} {'backend':>8} {'apply':>12} "
        + " ".join(f"{f'B={b}':>12}" for b in batches)
        + " ".join(f"{f'T={t}':>12}" for t in threads)
        + f" {'speedup':>8} {'scaling':>8}",
    ]
    for rec in records:
        rates = rec["rates"]
        speedup = rates[f"apply_many[{top}]"] / rates["apply"]
        rec["batch_speedup"] = speedup
        serial = rates[f"apply_many[{top},threads={threads[0]}]"]
        best_threads = max(
            rates[f"apply_many[{top},threads={t}]"] for t in threads)
        rec["thread_scaling"] = best_threads / serial
        lines.append(
            f"{rec['n']:>5} {rec['backend']:>8} {rates['apply']:>12.0f} "
            + " ".join(f"{rates[f'apply_many[{b}]']:>12.0f}"
                       for b in batches)
            + " ".join(f"{rates[f'apply_many[{top},threads={t}]']:>12.0f}"
                       for t in threads)
            + f" {speedup:>7.1f}x {rec['thread_scaling']:>7.2f}x"
        )
    lines.append("")
    lines.append("Optimizer scratch memory (bytes per call)")
    for rec in records:
        if "scratch_bytes" not in rec:
            continue
        before = rec["scratch_bytes_before"]
        after = rec["scratch_bytes"]
        cut = (1.0 - after / before) * 100 if before else 0.0
        lines.append(
            f"{rec['n']:>5} {rec['backend']:>8} {rec['plan']:>12} "
            f"{before:>10} -> {after:>8}  (-{cut:.0f}%, "
            f"{rec['temps_eliminated']} temp arrays eliminated)"
        )
    write_results("throughput_batch", lines)

    # The artifact is written before any gate below can fail, so every
    # runner — including ones without a C compiler or OpenMP — leaves
    # a record behind.
    _write_artifact({
        "sizes": list(sizes),
        "batches": list(batches),
        "threads": list(threads),
        "cpu_count": cpu_count(),
        "c_compiler": have_c_compiler(),
        "openmp": have_openmp(),
        "records": records,
    })

    # Acceptance: batching must beat per-vector apply at the largest
    # batch size, by the per-backend floor.
    for rec in records:
        floor = SPEEDUP_FLOORS.get(rec["backend"])
        if floor is not None:
            assert rec["batch_speedup"] >= floor, (
                f"{rec['backend']} n={rec['n']}: apply_many[{top}] only "
                f"{rec['batch_speedup']:.2f}x over apply (floor {floor}x)"
            )

    # Acceptance: the optimizer's scratch win.  Fusion plus liveness
    # reuse must cut per-call temp memory at n >= 256 by at least the
    # floor, relative to the stage-at-a-time program it started from.
    for rec in records:
        before = rec.get("scratch_bytes_before", 0)
        if rec["n"] < 256 or not before:
            continue
        reduction = 1.0 - rec["scratch_bytes"] / before
        assert reduction >= SCRATCH_REDUCTION_FLOOR, (
            f"{rec['backend']} n={rec['n']} ({rec['plan']}): scratch "
            f"only down {reduction:.0%} ({before} -> "
            f"{rec['scratch_bytes']} bytes; floor "
            f"{SCRATCH_REDUCTION_FLOOR:.0%})"
        )

    if not have_c_compiler():
        pytest.skip("no C compiler: recorded python/numpy-only results, "
                    "parallel sanity not applicable")
    if len(threads) < 2:
        pytest.skip("single-entry thread sweep: no parallel sanity check")
    if cpu_count() < 2:
        pytest.skip("single-core machine: oversubscribed threads can "
                    "legitimately exceed the wall-time bound "
                    "(scaling curves recorded, not asserted)")

    # Parallel sanity (non-flaky by design): threading must never make
    # the C path pathologically slower than serial — bounded wall-time
    # ratio, not a speedup gate.  One re-measure absorbs scheduler
    # noise on loaded runners.
    for rec in records:
        if rec["backend"] != "c":
            continue
        rates = rec["rates"]
        serial = rates[f"apply_many[{top},threads={threads[0]}]"]
        for nthreads in threads[1:]:
            parallel = rates[f"apply_many[{top},threads={nthreads}]"]
            if serial > parallel * PARALLEL_WALLTIME_BOUND:
                factors = (_radix2_factors(rec["n"])
                           if rec["plan"] == "radix2" else None)
                executable = build_executable(
                    _compile_fft(rec["n"], "c", factors=factors),
                    prefer="c")
                retry = time_callable(
                    executable.timer_closure_many(top, threads=nthreads),
                    min_time=MIN_TIME)
                parallel = top / retry
            assert serial <= parallel * PARALLEL_WALLTIME_BOUND, (
                f"c n={rec['n']}: threads={nthreads} ran "
                f"{serial / parallel:.2f}x slower than serial "
                f"(bound {PARALLEL_WALLTIME_BOUND}x)"
            )


def _codelet_fft(n: int, language: str):
    """A fully-unrolled (codelet) plan — the shape both cold tiers
    must be able to execute."""
    from repro.formulas.factorization import ct_multi

    compiler = SplCompiler(CompilerOptions(codetype="real", unroll=True))
    return compiler.compile_formula(ct_multi(_factors(n)),
                                    f"cold{n}", language=language)


def _time_to_first_execution(routine, prefer: str, x, repeats=3) -> float:
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        executable = build_executable(routine, prefer=prefer)
        assert executable.backend == prefer
        executable.apply(x)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def test_cold_plan_latency(tmp_path, monkeypatch):
    """Cold-plan latency: gcc shared object vs in-process JIT.

    Measures time from ``build_executable`` to the first ``apply`` for
    a fresh codelet plan.  The gcc path gets a fresh ``SPL_BUILD_DIR``
    per repetition so the shared-object cache cannot answer; the JIT
    path is pinned (``SPL_JIT_UPGRADE=0``) so no background gcc build
    races the measurement.  The section is written to the artifact
    before the gate, and missing capabilities skip instead of fail.
    """
    from repro.perfeval import jit as spl_jit

    monkeypatch.setenv("SPL_JIT_UPGRADE", "0")
    sizes = sorted(set(n for n in _sizes() if n <= COLD_PLAN_MAX_N)
                   or (8, 16))
    jit_ok = spl_jit.jit_supported()
    cc_ok = have_c_compiler()
    entries = []
    for n in sizes:
        routine = _codelet_fft(n, "cjit")
        assert routine.program.is_straight_line()
        rng = np.random.default_rng(0)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        entry: dict = {"n": n}
        if cc_ok:
            gcc_best = None
            for rep in range(3):
                monkeypatch.setenv("SPL_BUILD_DIR",
                                   str(tmp_path / f"gcc-{n}-{rep}"))
                gcc_seconds = _time_to_first_execution(
                    routine, "c", x, repeats=1)
                gcc_best = (gcc_seconds if gcc_best is None
                            else min(gcc_best, gcc_seconds))
            monkeypatch.delenv("SPL_BUILD_DIR")
            entry["gcc_ms"] = gcc_best * 1e3
        if jit_ok and spl_jit.can_jit(routine.program):
            entry["jit_ms"] = _time_to_first_execution(
                routine, "cjit", x) * 1e3
        if "gcc_ms" in entry and "jit_ms" in entry:
            entry["speedup"] = entry["gcc_ms"] / entry["jit_ms"]
        entries.append(entry)

    lines = ["Cold-plan latency: time to first execution (ms)",
             f"{'N':>5} {'gcc':>10} {'jit':>10} {'speedup':>9}"]
    for entry in entries:
        lines.append(
            f"{entry['n']:>5} "
            f"{entry.get('gcc_ms', float('nan')):>10.3f} "
            f"{entry.get('jit_ms', float('nan')):>10.3f} "
            + (f"{entry['speedup']:>8.1f}x" if "speedup" in entry
               else f"{'-':>9}"))
    write_results("cold_plan_latency", lines)

    # Artifact before gates: even a capability-poor runner records
    # whatever it could measure.
    _merge_artifact_section("cold_plan_latency", {
        "floor": COLD_PLAN_SPEEDUP_FLOOR,
        "max_n": COLD_PLAN_MAX_N,
        "jit_supported": jit_ok,
        "c_compiler": cc_ok,
        "entries": entries,
    })

    if not cc_ok:
        pytest.skip("no C compiler: recorded JIT-only cold latency")
    if not jit_ok:
        pytest.skip("in-process JIT unsupported: recorded gcc-only "
                    "cold latency")
    for entry in entries:
        assert entry["speedup"] >= COLD_PLAN_SPEEDUP_FLOOR, (
            f"n={entry['n']}: JIT only {entry['speedup']:.1f}x faster "
            f"to first execution (floor {COLD_PLAN_SPEEDUP_FLOOR}x; "
            f"gcc {entry['gcc_ms']:.1f}ms vs jit {entry['jit_ms']:.3f}ms)"
        )
