"""Throughput vs batch size: the batched execution engine.

Beyond the paper: every backend now has an ``apply_many`` path that
amortizes per-call overhead (Python interpretation, ctypes crossings,
buffer setup) over a ``(B, n)`` batch.  This benchmark measures
vectors/sec for per-vector ``apply`` and for ``apply_many`` at several
batch sizes, for every available backend plus the FFTW-substitute
executor, and writes ``BENCH_throughput.json`` next to the text report.

Expected shape: batching pays the most where per-call overhead
dominates — the Python-level backends gain the most, the C batch driver
still beats per-vector ctypes calls, and the gain shrinks as the
transform size grows and compute starts to dominate.

Scale knobs: ``SPL_THROUGHPUT_SIZES=8,16`` (comma-separated FFT sizes,
e.g. for a CI smoke run) overrides the default 8..256 sweep.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.core.compiler import CompilerOptions, SplCompiler
from repro.perfeval.ccompile import have_c_compiler
from repro.perfeval.runner import build_executable
from repro.perfeval.timing import time_callable

from conftest import RESULTS_DIR, write_results

BATCHES = (1, 8, 64)

MIN_TIME = 0.002

#: Acceptance floors: apply_many at the largest batch must beat
#: per-vector apply by at least this factor, per backend.  The pure
#: Python backend is reported but not gated (its apply path reuses
#: scratch too, so the batch win is smaller and noisier).
SPEEDUP_FLOORS = {"numpy": 5.0, "c": 1.5}


def _sizes() -> tuple[int, ...]:
    value = os.environ.get("SPL_THROUGHPUT_SIZES")
    if value:
        return tuple(int(part) for part in value.split(",") if part.strip())
    return (8, 64, 256)


def _factors(n: int) -> list[int]:
    """Cooley-Tukey factors with small (unrollable) leaves."""
    factors = []
    while n > 8:
        factors.append(4 if n % 4 == 0 else 2)
        n //= factors[-1]
    factors.append(n)
    return factors


def _compile_fft(n: int, language: str):
    from repro.formulas.factorization import ct_multi

    compiler = SplCompiler(CompilerOptions(codetype="real",
                                           unroll_threshold=16))
    return compiler.compile_formula(ct_multi(_factors(n)), f"tp{n}",
                                    language=language)


def _apply_closure(executable, n):
    rng = np.random.default_rng(0)
    x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    apply = executable.apply

    def call() -> None:
        apply(x)

    call._buffers = (x,)
    return call


def _fftw_apply_closure(transform):
    rng = np.random.default_rng(0)
    x = rng.standard_normal(transform.n) \
        + 1j * rng.standard_normal(transform.n)

    def call() -> None:
        transform.apply(x)

    call._buffers = (x,)
    return call


def _fftw_batch_closure(transform, batch):
    rng = np.random.default_rng(0)
    X = rng.standard_normal((batch, transform.n)) \
        + 1j * rng.standard_normal((batch, transform.n))

    def call() -> None:
        transform.apply_many(X)

    call._buffers = (X,)
    return call


def _rates_for_executable(executable, n) -> dict:
    rates = {}
    t = time_callable(_apply_closure(executable, n), min_time=MIN_TIME)
    rates["apply"] = 1.0 / t
    for batch in BATCHES:
        t = time_callable(executable.timer_closure_many(batch),
                          min_time=MIN_TIME)
        rates[f"apply_many[{batch}]"] = batch / t
    return rates


def _rates_for_fftw(transform) -> dict:
    rates = {}
    t = time_callable(_fftw_apply_closure(transform), min_time=MIN_TIME)
    rates["apply"] = 1.0 / t
    for batch in BATCHES:
        t = time_callable(_fftw_batch_closure(transform, batch),
                          min_time=MIN_TIME)
        rates[f"apply_many[{batch}]"] = batch / t
    return rates


def test_throughput_batch(request):
    sizes = _sizes()
    backends = ["python", "numpy"] + (["c"] if have_c_compiler() else [])
    fftw_planner = (request.getfixturevalue("fftw_planner")
                    if have_c_compiler() else None)
    records = []
    for n in sizes:
        for backend in backends:
            executable = build_executable(_compile_fft(n, backend),
                                          prefer=backend)
            assert executable.backend == backend
            records.append({"backend": backend, "n": n,
                            "rates": _rates_for_executable(executable, n)})
        if have_c_compiler():
            transform = fftw_planner.library.transform(
                fftw_planner.plan_estimate(n))
            records.append({"backend": "fftw", "n": n,
                            "rates": _rates_for_fftw(transform)})

    top = BATCHES[-1]
    lines = [
        "Throughput vs batch size (vectors/sec)",
        f"{'N':>5} {'backend':>8} {'apply':>12} "
        + " ".join(f"{f'B={b}':>12}" for b in BATCHES)
        + f" {'speedup':>8}",
    ]
    for rec in records:
        rates = rec["rates"]
        speedup = rates[f"apply_many[{top}]"] / rates["apply"]
        rec["batch_speedup"] = speedup
        lines.append(
            f"{rec['n']:>5} {rec['backend']:>8} {rates['apply']:>12.0f} "
            + " ".join(f"{rates[f'apply_many[{b}]']:>12.0f}"
                       for b in BATCHES)
            + f" {speedup:>7.1f}x"
        )
    write_results("throughput_batch", lines)

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "sizes": list(sizes),
        "batches": list(BATCHES),
        "records": records,
    }
    (RESULTS_DIR / "BENCH_throughput.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    # Acceptance: batching must beat per-vector apply at the largest
    # batch size, by the per-backend floor.
    for rec in records:
        floor = SPEEDUP_FLOORS.get(rec["backend"])
        if floor is not None:
            assert rec["batch_speedup"] >= floor, (
                f"{rec['backend']} n={rec['n']}: apply_many[{top}] only "
                f"{rec['batch_speedup']:.2f}x over apply (floor {floor}x)"
            )
