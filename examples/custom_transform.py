#!/usr/bin/env python3
"""Extensibility: new transforms and code-generation strategies via
templates, without touching the compiler (Section 3.2's main claim).

Three demonstrations:

1. the WHT and DCT-II compiled from their factorized SPL formulas;
2. a brand-new parameterized matrix (a Haar butterfly stage) defined
   entirely with a user template;
3. a loop-fusion template that overrides code generation for a whole
   compose pattern — "the effect is the same as loop fusion".

Run:  python examples/custom_transform.py
"""

import numpy as np

from repro.core import CompilerOptions, SplCompiler
from repro.core.icode import Loop
from repro.formulas import dct2_matrix, to_matrix, wht_matrix
from repro.generator.dct_rules import dct2_recursive
from repro.formulas.factorization import wht_multi


def demo_wht_and_dct() -> None:
    print("=== WHT and DCT-II from factorized formulas ===")
    compiler = SplCompiler(CompilerOptions(datatype="real",
                                           language="python"))
    rng = np.random.default_rng(0)

    wht_formula = wht_multi([2, 3])  # WHT_32 = (WHT_4 x I_8)(I_4 x WHT_8)
    routine = compiler.compile_formula(wht_formula, "wht32")
    x = rng.standard_normal(32)
    error = np.abs(np.asarray(routine.run(list(x)))
                   - wht_matrix(32) @ x).max()
    print(f"  WHT_32 via {wht_formula.to_spl()[:50]}...: error {error:.2e}")

    dct_formula = dct2_recursive(16)
    routine = compiler.compile_formula(dct_formula, "dct16")
    x = rng.standard_normal(16)
    error = np.abs(np.asarray(routine.run(list(x)))
                   - dct2_matrix(16) @ x).max()
    print(f"  DCT-II_16 recursive: error {error:.2e}")


def demo_new_parameterized_matrix() -> None:
    print("\n=== a user-defined parameterized matrix ===")
    compiler = SplCompiler(CompilerOptions(datatype="real",
                                           language="python"))
    # A Haar analysis stage: averages in the first half, differences in
    # the second. Entirely defined by the template below; the compiler
    # infers the vector sizes from the i-code.
    compiler.parse("""
    (template (HAAR n_) [n_ > 0]
      (
        do $i0 = 0, n_ - 1
          $out($i0) = $in(2 * $i0) + $in(2 * $i0 + 1)
          $out(n_ + $i0) = $in(2 * $i0) - $in(2 * $i0 + 1)
        end
      ))
    """)
    routine = compiler.compile_formula("(HAAR 4)", "haar4")
    x = [1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0]
    y = routine.run(x)
    print(f"  (HAAR 4) on {x}")
    print(f"  sums  = {y[:4]}")
    print(f"  diffs = {y[4:]}")
    assert y[:4] == [3.0, 8.0, 21.0, 55.0]
    assert y[4:] == [-1.0, -2.0, -5.0, -13.0]

    # It composes with everything else in the language.
    nested = compiler.compile_formula("(tensor (I 2) (HAAR 2))", "nested")
    print(f"  (tensor (I 2) (HAAR 2)) input size: {nested.in_size}")


def demo_loop_fusion_template() -> None:
    print("\n=== overriding code generation: loop fusion ===")
    source = "(compose (tensor (I 8) (F 2)) (tensor (I 8) (F 2)))"
    plain = SplCompiler(CompilerOptions(datatype="real",
                                        language="python"))
    fused = SplCompiler(CompilerOptions(datatype="real",
                                        language="python"))
    fused.parse("""
    (template (compose (tensor (I m_) A_) (tensor (I m_) B_))
              [A_.in_size == B_.out_size]
      (
        do $i0 = 0, m_ - 1
          B_($in, $t0, $i0 * B_.in_size, 0, 1, 1)
          A_($t0, $out, 0, $i0 * A_.out_size, 1, 1)
        end
      ))
    """)

    def top_loops(routine):
        return [i for i in routine.program.body if isinstance(i, Loop)]

    plain_routine = plain.compile_formula(source, "plain")
    fused_routine = fused.compile_formula(source, "fused")
    print(f"  top-level loops without the template: "
          f"{len(top_loops(plain_routine))}")
    print(f"  top-level loops with the template:    "
          f"{len(top_loops(fused_routine))}")
    assert len(top_loops(fused_routine)) == 1

    rng = np.random.default_rng(2)
    x = rng.standard_normal(16)
    np.testing.assert_allclose(fused_routine.run(list(x)),
                               plain_routine.run(list(x)), atol=1e-12)
    print("  fused and unfused codes agree")


def main() -> None:
    demo_wht_and_dct()
    demo_new_parameterized_matrix()
    demo_loop_fusion_template()
    print("\ncustom-transform example OK")


if __name__ == "__main__":
    main()
