#!/usr/bin/env python3
"""The SPIRAL loop end to end: generate, compile, measure, search.

Reproduces the paper's Section 4 methodology at demo scale:

1. dynamic programming over Equation-10 factorizations for small FFT
   sizes (straight-line code);
2. the winners become codelet templates;
3. keep-3 dynamic programming over right-most binary factorizations
   builds tuned loop code for larger sizes.

Run:  python examples/fft_search.py  (needs a C compiler; ~30 s)
"""

import numpy as np

from repro.perfeval.ccompile import have_c_compiler
from repro.perfeval.runner import build_executable
from repro.search.dp import search_small_sizes
from repro.search.large import LargeSearch

SMALL_SIZES = (2, 4, 8, 16, 32)
LARGE_SIZES = (64, 128, 256, 512, 1024)


def main() -> None:
    if not have_c_compiler():
        print("This example needs a C compiler (cc/gcc/clang) on PATH.")
        return

    print("=== small-size search (Equation 10, straight-line code) ===")
    small = search_small_sizes(SMALL_SIZES, max_candidates=12,
                               verbose=True)

    print("\n=== large-size search (right-most binary CT, keep-3 DP) ===")
    search = LargeSearch(small, keep=3, max_codelet=32,
                         radix_log2_range=(2, 3, 4, 5), verbose=True)
    search.search_up_to(max(LARGE_SIZES))

    print("\n=== verification against numpy ===")
    rng = np.random.default_rng(1)
    for n in LARGE_SIZES:
        candidate = search.best_candidate(n)
        routine = search.compiler.compile_formula(
            candidate.formula, f"verify{n}", language="c"
        )
        executable = build_executable(routine)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        error = np.abs(executable.apply(x) - np.fft.fft(x)).max()
        print(f"  N={n:5d}: radix {candidate.radix:2d}, "
              f"{candidate.mflops:8.1f} pseudo-MFlops, "
              f"max error {error:.2e}")
        assert error < 1e-9 * n
    print("search example OK")


if __name__ == "__main__":
    main()
