#!/usr/bin/env python3
"""SPL-generated code head to head with the FFTW-style baseline.

A demo-scale version of the paper's Figure 4 comparison: SPL loop code
(search winners embedded as codelet templates) versus the adaptive
planner/executor/codelet library in measure and estimate modes.

Run:  python examples/fftw_comparison.py  (needs a C compiler; ~1 min)
"""

import numpy as np

from repro.fftw import FftwLibrary, Planner
from repro.perfeval.ccompile import have_c_compiler
from repro.perfeval.timing import pseudo_mflops, time_callable
from repro.search.dp import search_small_sizes
from repro.search.large import LargeSearch

SIZES = (128, 256, 512, 1024, 2048)


def main() -> None:
    if not have_c_compiler():
        print("This example needs a C compiler (cc/gcc/clang) on PATH.")
        return

    print("building the FFTW-substitute library (codelets + executor)...")
    library = FftwLibrary()
    planner = Planner(library)

    print("running the SPL search...")
    small = search_small_sizes((2, 4, 8, 16, 32, 64), max_candidates=8)
    search = LargeSearch(small, keep=2, max_codelet=64,
                         radix_log2_range=(3, 4, 5, 6))

    print(f"\n{'N':>6} {'SPL':>10} {'FFTW':>10} {'FFTW-est':>10}"
          f"   (pseudo-MFlops)")
    rng = np.random.default_rng(0)
    for n in SIZES:
        spl = search.best_measurement(n)
        measured_plan = planner.plan_measure(n)
        estimate_plan = planner.plan_estimate(n)
        t_measured = time_callable(
            library.transform(measured_plan).timer_closure())
        t_estimate = time_callable(
            library.transform(estimate_plan).timer_closure())
        print(f"{n:>6} {spl.mflops:>10.1f} "
              f"{pseudo_mflops(n, t_measured):>10.1f} "
              f"{pseudo_mflops(n, t_estimate):>10.1f}")

        # Everyone agrees with numpy.
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        reference = np.fft.fft(x)
        assert np.abs(spl.executable.apply(x) - reference).max() < 1e-8 * n
        assert np.abs(
            library.transform(measured_plan).apply(x) - reference
        ).max() < 1e-8 * n
    print("\nfftw-comparison example OK")


if __name__ == "__main__":
    main()
