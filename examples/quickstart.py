#!/usr/bin/env python3
"""Quickstart: compile the paper's FFT-16 SPL program and run it.

This is the program printed at the end of Section 2.2 of the paper:
``F_16 = (F_4 (x) I_4) T^16_4 (I_4 (x) F_4) L^16_4`` with ``F_4``
defined by the four-factor Cooley-Tukey formula.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import CompilerOptions, SplCompiler

SPL_PROGRAM = """
; The paper's Section 2.2 example program.
(define F4 (compose (tensor (F 2) (I 2)) (T 4 2)
                    (tensor (I 2) (F 2)) (L 4 2)))
#subname fft16
(compose (tensor F4 (I 4)) (T 16 4) (tensor (I 4) F4) (L 16 4))
"""


def main() -> None:
    # 1. Compile to Fortran (the paper's default target) and show it.
    fortran_compiler = SplCompiler(CompilerOptions(language="fortran",
                                                   codetype="real",
                                                   unroll=True))
    (fortran_routine,) = fortran_compiler.compile_text(SPL_PROGRAM)
    print("=== generated Fortran (first 25 lines) ===")
    print("\n".join(fortran_routine.source.split("\n")[:25]))
    print("...")

    # 2. Compile to C.
    c_compiler = SplCompiler(CompilerOptions(language="c", unroll=True))
    (c_routine,) = c_compiler.compile_text(SPL_PROGRAM)
    print(f"\n=== generated C: {c_routine.flop_count} flops, "
          f"{len(c_routine.source.splitlines())} lines ===")

    # 3. Compile to Python, execute, and check against numpy.
    py_compiler = SplCompiler(CompilerOptions(language="python",
                                              unroll=True))
    (py_routine,) = py_compiler.compile_text(SPL_PROGRAM)
    rng = np.random.default_rng(0)
    x = rng.standard_normal(16) + 1j * rng.standard_normal(16)
    y = np.asarray(py_routine.run(list(x)))
    error = np.abs(y - np.fft.fft(x)).max()
    print(f"\nfft16(x) vs numpy.fft.fft: max abs error = {error:.2e}")
    assert error < 1e-10
    print("quickstart OK")


if __name__ == "__main__":
    main()
