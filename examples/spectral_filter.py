#!/usr/bin/env python3
"""A realistic DSP workload built on SPL-compiled transforms.

FFT-based cyclic filtering — the workload class the paper's
introduction motivates ("thousands of variants of fundamental
algorithms" behind every DSP pipeline):

1. the *entire* filter ``y = F^{-1} diag(H) F x`` is expressed as a
   single SPL formula and compiled into one fused routine;
2. a 2-D DFT (row-column algorithm, also one formula) sharpens the
   same machinery for image-sized data;
3. results are validated against numpy/scipy reference pipelines.

Run:  python examples/spectral_filter.py
"""

import numpy as np

from repro.core import CompilerOptions, SplCompiler
from repro.formulas.factorization import ct_multi
from repro.formulas.multidim import cyclic_convolution_with_taps, dft2d


def fused_cyclic_filter() -> None:
    print("=== a fused FFT -> multiply -> IFFT filter, one formula ===")
    n = 64
    rng = np.random.default_rng(0)

    # A low-pass 9-tap moving-average filter, circularly embedded.
    taps = np.zeros(n)
    taps[:9] = 1.0 / 9.0
    spectrum = np.fft.fft(taps)

    compiler = SplCompiler(CompilerOptions(language="python",
                                           unroll_threshold=8))
    formula = cyclic_convolution_with_taps(
        n, spectrum, leaf=lambda m: ct_multi([8, 8]) if m == 64
        else ct_multi([m]),
    )
    routine = compiler.compile_formula(formula, "lowpass64")
    print(f"  compiled one routine: {routine.flop_count} flops "
          f"per 64-sample block")

    signal = np.sin(2 * np.pi * 3 * np.arange(n) / n)
    signal += 0.5 * rng.standard_normal(n)  # noise
    filtered = np.asarray(routine.run(list(signal + 0j)))
    reference = np.fft.ifft(np.fft.fft(signal) * spectrum)
    error = np.abs(filtered - reference).max()
    print(f"  vs numpy reference pipeline: max error {error:.2e}")
    assert error < 1e-10

    noise_before = np.std(signal - np.sin(2 * np.pi * 3
                                          * np.arange(n) / n))
    print(f"  noise std before filtering: {noise_before:.3f}, "
          f"output is smooth: {np.std(np.diff(filtered.real)):.3f} "
          f"vs input {np.std(np.diff(signal)):.3f}")


def image_transform() -> None:
    print("\n=== 2-D DFT of an 8x16 'image', row-column formula ===")
    m, n = 8, 16
    compiler = SplCompiler(CompilerOptions(language="python",
                                           unroll_threshold=8))
    formula = dft2d(m, n, leaf=lambda k: ct_multi(
        [2] * (k.bit_length() - 1)))
    routine = compiler.compile_formula(formula, "dft2d_8x16")
    rng = np.random.default_rng(1)
    image = rng.standard_normal((m, n))
    got = np.asarray(routine.run(list(image.reshape(-1) + 0j)))
    got = got.reshape(m, n)
    error = np.abs(got - np.fft.fft2(image)).max()
    print(f"  {m}x{n} 2-D DFT vs numpy.fft.fft2: max error {error:.2e}")
    assert error < 1e-9

    # Energy conservation (Parseval) as a sanity check of the pipeline.
    lhs = np.sum(np.abs(image) ** 2)
    rhs = np.sum(np.abs(got) ** 2) / (m * n)
    print(f"  Parseval check: {lhs:.6f} == {rhs:.6f}")
    assert abs(lhs - rhs) < 1e-8


def main() -> None:
    fused_cyclic_filter()
    image_transform()
    print("\nspectral-filter example OK")


if __name__ == "__main__":
    main()
