"""Reproduction of "SPL: A Language and Compiler for DSP Algorithms".

Xiong, Johnson, Johnson, Padua - PLDI 2001.

Public API highlights:

* :class:`repro.core.SplCompiler` / :class:`repro.core.CompilerOptions`
  -- the SPL compiler;
* :mod:`repro.formulas` -- dense semantics and factorization rules;
* :mod:`repro.generator` -- formula enumeration;
* :mod:`repro.search` -- timing-driven dynamic programming;
* :mod:`repro.fftw` -- the FFTW-style adaptive baseline;
* :mod:`repro.perfeval` -- timing / accuracy / memory measurement.
"""

from repro.core import CompiledRoutine, CompilerOptions, SplCompiler

__version__ = "1.0.0"

__all__ = [
    "CompiledRoutine",
    "CompilerOptions",
    "SplCompiler",
    "__version__",
]
