"""``spl`` — the umbrella command-line entry point.

Subcommands delegate to the per-package mains:

* ``spl compile ...`` — the SPL compiler driver
  (identical to the standalone ``spl-compile`` command);
* ``spl serve ...`` — the asyncio transform service
  (identical to ``python -m repro.serve``);
* ``spl pack ...`` — build/verify/inspect deployable wisdom packs
  (identical to ``python -m repro.wisdom.pack_cli``).
"""

from __future__ import annotations

import sys

_USAGE = """\
usage: spl <command> [options]

commands:
  compile   compile SPL formulas (see: spl compile --help)
  serve     serve transforms over a socket (see: spl serve --help)
  pack      build/verify/inspect wisdom packs (see: spl pack --help)
"""


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if not argv or argv[0] in ("-h", "--help"):
        print(_USAGE, end="")
        return 0
    command, rest = argv[0], argv[1:]
    if command == "compile":
        from repro.core.cli import main as compile_main
        return compile_main(rest)
    if command == "serve":
        from repro.serve.__main__ import main as serve_main
        return serve_main(rest)
    if command == "pack":
        from repro.wisdom.pack_cli import main as pack_main
        return pack_main(rest)
    print(f"spl: unknown command {command!r}\n\n{_USAGE}",
          end="", file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
