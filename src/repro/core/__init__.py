"""The SPL compiler — the paper's primary contribution.

The compiler proceeds in the five phases of Section 3 of the paper:

1. parsing (:mod:`repro.core.lexer`, :mod:`repro.core.parser`),
2. intermediate code generation (:mod:`repro.core.codegen` driven by the
   template mechanism in :mod:`repro.core.templates`),
3. intermediate code restructuring (:mod:`repro.core.unroll`,
   :mod:`repro.core.intrinsics`, :mod:`repro.core.typetrans`),
4. optimization (:mod:`repro.core.optimizer`, :mod:`repro.core.peephole`),
5. target code generation (:mod:`repro.core.backend_c`,
   :mod:`repro.core.backend_fortran`, :mod:`repro.core.backend_python`).

:class:`repro.core.compiler.SplCompiler` wires the phases together.
"""

from repro.core.compiler import CompiledRoutine, CompilerOptions, SplCompiler
from repro.core.errors import (
    SplError,
    SplNameError,
    SplResourceError,
    SplSemanticError,
    SplSyntaxError,
    SplTemplateError,
)
from repro.core.limits import CompileLimits, DEFAULT_LIMITS

__all__ = [
    "CompiledRoutine",
    "CompileLimits",
    "CompilerOptions",
    "DEFAULT_LIMITS",
    "SplCompiler",
    "SplError",
    "SplNameError",
    "SplResourceError",
    "SplSemanticError",
    "SplSyntaxError",
    "SplTemplateError",
]
