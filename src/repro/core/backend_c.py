"""C target code generation (Section 3.5).

The paper's C backend uses only real arithmetic ("of the popular
imperative languages only Fortran supports complex data type"), so a
complex-datatype program must be lowered by
:func:`repro.core.typetrans.complex_to_real` before reaching this
backend; the routine then operates on interleaved re/im arrays.

Generated signature::

    void name(double *restrict y, const double *restrict x);

or, for codelet-style strided entry points::

    void name(double *restrict y, const double *restrict x,
              int istride, int ostride, int iofs, int oofs);

Innermost loops are strength-reduced on emission: every affine
subscript ``step*i + rest`` (with ``rest`` invariant in ``i``) becomes
a ``long`` induction variable initialized to ``rest`` and bumped by
``step`` per iteration; subscripts sharing a step reuse one induction
variable with a constant offset.  The per-iteration multiplies the
paper's listings show (``t3[4*i5 + 2]``) disappear from the loop body.
"""

from __future__ import annotations

from repro.core.errors import SplSemanticError
from repro.core.icode import (
    Comment,
    FConst,
    FVar,
    IExpr,
    Instr,
    Loop,
    Op,
    Operand,
    Program,
    VecRef,
)

INDENT = "    "


def emit_c(program: Program, *, static: bool = False) -> str:
    """Render ``program`` as one self-contained C function."""
    if program.datatype == "complex" and program.element_width != 2:
        raise SplSemanticError(
            "the C backend requires complex programs to be lowered to "
            "real arithmetic first (codetype real)"
        )
    lines: list[str] = []
    for name, values in program.tables.items():
        data = ", ".join(_const(v) for v in values)
        lines.append(
            f"static const double {name}[{len(values)}] = {{{data}}};"
        )
    qualifier = "static " if static else ""
    params = "double *restrict y, const double *restrict x"
    if program.strided:
        params += ", int istride, int ostride, int iofs, int oofs"
    lines.append(f"{qualifier}void {program.name}({params})")
    lines.append("{")
    scalars = program.scalar_names()
    if scalars:
        lines.append(f"{INDENT}double {', '.join(scalars)};")
    loop_vars = _loop_vars(program.body)
    if loop_vars:
        lines.append(f"{INDENT}int {', '.join(loop_vars)};")
    for info in program.temp_vectors():
        lines.append(f"{INDENT}double {info.name}[{max(info.size, 1)}];")
    used = set(scalars) | set(loop_vars) | set(program.vectors) \
        | set(program.tables)
    lines.extend(_emit_block(program.body, 1, _NameAlloc(used)))
    lines.append("}")
    return "\n".join(lines) + "\n"


class _NameAlloc:
    """Fresh induction-variable names that dodge every existing name."""

    def __init__(self, used: set[str]):
        self._used = set(used)
        self._counter = 0

    def fresh(self) -> str:
        while True:
            name = f"k{self._counter}"
            self._counter += 1
            if name not in self._used:
                self._used.add(name)
                return name


def _loop_vars(body: list[Instr]) -> list[str]:
    names: dict[str, None] = {}

    def visit(instrs: list[Instr]) -> None:
        for inst in instrs:
            if isinstance(inst, Loop):
                names.setdefault(inst.var)
                visit(inst.body)

    visit(body)
    return list(names)


def _emit_block(body: list[Instr], depth: int,
                alloc: _NameAlloc) -> list[str]:
    pad = INDENT * depth
    lines: list[str] = []
    for inst in body:
        if isinstance(inst, Loop):
            inner = not any(isinstance(i, Loop) for i in inst.body)
            subs: dict[IExpr, str] = {}
            bumps: list[str] = []
            if inner and inst.count >= 4:
                subs, decls, bumps = _strength_reduce(inst, alloc)
                lines.extend(f"{pad}{decl}" for decl in decls)
            lines.append(
                f"{pad}for ({inst.var} = 0; {inst.var} < {inst.count}; "
                f"{inst.var}++) {{"
            )
            if subs:
                inner_pad = INDENT * (depth + 1)
                for op in inst.body:
                    if isinstance(op, Op):
                        lines.append(f"{inner_pad}{_emit_op(op, subs)}")
                    elif isinstance(op, Comment):
                        lines.append(f"{inner_pad}/* {op.text} */")
                lines.extend(f"{inner_pad}{bump}" for bump in bumps)
            else:
                lines.extend(_emit_block(inst.body, depth + 1, alloc))
            lines.append(f"{pad}}}")
        elif isinstance(inst, Op):
            lines.append(f"{pad}{_emit_op(inst)}")
        else:
            lines.append(f"{pad}/* {inst.text} */")
    return lines


def _strength_reduce(loop: Loop, alloc: _NameAlloc
                     ) -> tuple[dict[IExpr, str], list[str], list[str]]:
    """Plan induction variables for one innermost loop.

    Returns ``(subscript substitutions, declarations, per-iteration
    bumps)``.  Subscripts affine in the loop variable with an invariant
    rest become ``k + const`` references; subscripts sharing the same
    step share one induction variable.
    """
    subs: dict[IExpr, str] = {}
    decls: list[str] = []
    bumps: list[str] = []
    groups: list[tuple[int, IExpr, str]] = []  # (step, rest, name)
    for inst in loop.body:
        if not isinstance(inst, Op):
            continue
        for item in (inst.dest, *inst.operands()):
            if not isinstance(item, VecRef) or item.index in subs:
                continue
            affine = item.index.as_affine()
            if affine is None:
                continue
            step = affine[0].get(loop.var, 0)
            if step == 0:
                continue
            rest = item.index - IExpr.var(loop.var) * step
            for g_step, g_rest, g_name in groups:
                if g_step != step:
                    continue
                delta = (rest - g_rest).as_const()
                if delta is None:
                    continue
                if delta == 0:
                    subs[item.index] = g_name
                elif delta > 0:
                    subs[item.index] = f"{g_name} + {delta}"
                else:
                    subs[item.index] = f"{g_name} - {-delta}"
                break
            else:
                name = alloc.fresh()
                groups.append((step, rest, name))
                decls.append(f"long {name} = {_index(rest)};")
                bumps.append(f"{name} += {step};"
                             if step > 0 else f"{name} -= {-step};")
                subs[item.index] = name
    return subs, decls, bumps


def _emit_op(op: Op, subs: dict[IExpr, str] | None = None) -> str:
    dest = _operand(op.dest, subs)
    if op.op == "=":
        return f"{dest} = {_operand(op.a, subs)};"
    if op.op == "neg":
        return f"{dest} = -{_operand(op.a, subs)};"
    return (f"{dest} = {_operand(op.a, subs)} {op.op} "
            f"{_operand(op.b, subs)};")


def _operand(operand: Operand,
             subs: dict[IExpr, str] | None = None) -> str:
    if isinstance(operand, FVar):
        return operand.name
    if isinstance(operand, FConst):
        return _const(operand.value)
    if isinstance(operand, VecRef):
        if subs is not None:
            text = subs.get(operand.index)
            if text is not None:
                return f"{operand.vec}[{text}]"
        return f"{operand.vec}[{_index(operand.index)}]"
    raise SplSemanticError(f"cannot emit operand {operand!r} as C")


def _const(value) -> str:
    if isinstance(value, complex):
        raise SplSemanticError(
            "complex constant reached the C backend; run the type "
            "transformation first"
        )
    return repr(float(value))


def _index(expr: IExpr) -> str:
    const = expr.as_const()
    if const is not None:
        return str(const)
    return str(expr)
