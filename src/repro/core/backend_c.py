"""C target code generation (Section 3.5).

The paper's C backend uses only real arithmetic ("of the popular
imperative languages only Fortran supports complex data type"), so a
complex-datatype program must be lowered by
:func:`repro.core.typetrans.complex_to_real` before reaching this
backend; the routine then operates on interleaved re/im arrays.

Generated signature::

    void name(double *restrict y, const double *restrict x);

or, for codelet-style strided entry points::

    void name(double *restrict y, const double *restrict x,
              int istride, int ostride, int iofs, int oofs);
"""

from __future__ import annotations

from repro.core.errors import SplSemanticError
from repro.core.icode import (
    FConst,
    FVar,
    IExpr,
    Instr,
    Loop,
    Op,
    Operand,
    Program,
    VecRef,
)

INDENT = "    "


def emit_c(program: Program, *, static: bool = False) -> str:
    """Render ``program`` as one self-contained C function."""
    if program.datatype == "complex" and program.element_width != 2:
        raise SplSemanticError(
            "the C backend requires complex programs to be lowered to "
            "real arithmetic first (codetype real)"
        )
    lines: list[str] = []
    for name, values in program.tables.items():
        data = ", ".join(_const(v) for v in values)
        lines.append(
            f"static const double {name}[{len(values)}] = {{{data}}};"
        )
    qualifier = "static " if static else ""
    params = "double *restrict y, const double *restrict x"
    if program.strided:
        params += ", int istride, int ostride, int iofs, int oofs"
    lines.append(f"{qualifier}void {program.name}({params})")
    lines.append("{")
    scalars = program.scalar_names()
    if scalars:
        lines.append(f"{INDENT}double {', '.join(scalars)};")
    loop_vars = _loop_vars(program.body)
    if loop_vars:
        lines.append(f"{INDENT}int {', '.join(loop_vars)};")
    for info in program.temp_vectors():
        lines.append(f"{INDENT}double {info.name}[{max(info.size, 1)}];")
    lines.extend(_emit_block(program.body, 1))
    lines.append("}")
    return "\n".join(lines) + "\n"


def _loop_vars(body: list[Instr]) -> list[str]:
    names: dict[str, None] = {}

    def visit(instrs: list[Instr]) -> None:
        for inst in instrs:
            if isinstance(inst, Loop):
                names.setdefault(inst.var)
                visit(inst.body)

    visit(body)
    return list(names)


def _emit_block(body: list[Instr], depth: int) -> list[str]:
    pad = INDENT * depth
    lines: list[str] = []
    for inst in body:
        if isinstance(inst, Loop):
            lines.append(
                f"{pad}for ({inst.var} = 0; {inst.var} < {inst.count}; "
                f"{inst.var}++) {{"
            )
            lines.extend(_emit_block(inst.body, depth + 1))
            lines.append(f"{pad}}}")
        elif isinstance(inst, Op):
            lines.append(f"{pad}{_emit_op(inst)}")
        else:
            lines.append(f"{pad}/* {inst.text} */")
    return lines


def _emit_op(op: Op) -> str:
    dest = _operand(op.dest)
    if op.op == "=":
        return f"{dest} = {_operand(op.a)};"
    if op.op == "neg":
        return f"{dest} = -{_operand(op.a)};"
    return f"{dest} = {_operand(op.a)} {op.op} {_operand(op.b)};"


def _operand(operand: Operand) -> str:
    if isinstance(operand, FVar):
        return operand.name
    if isinstance(operand, FConst):
        return _const(operand.value)
    if isinstance(operand, VecRef):
        return f"{operand.vec}[{_index(operand.index)}]"
    raise SplSemanticError(f"cannot emit operand {operand!r} as C")


def _const(value) -> str:
    if isinstance(value, complex):
        raise SplSemanticError(
            "complex constant reached the C backend; run the type "
            "transformation first"
        )
    return repr(float(value))


def _index(expr: IExpr) -> str:
    const = expr.as_const()
    if const is not None:
        return str(const)
    return str(expr)
