"""Fortran target code generation (the paper's primary target).

Follows the shape of the paper's ``I64F2`` listing: ``implicit real*8
(f)`` / ``implicit integer (r)`` declarations, 1-based array
subscripts, ``do ... end do`` loops.  When the code type is complex the
backend declares ``complex*16`` data and emits complex constants as
``(re, im)`` pairs — the Fortran-only capability called out in Section
3.3.3.

The ``automatic_storage`` flag reproduces the paper's second peephole:
"declares all temporary variables as automatic so they will be
allocated on the stack" (a Sun Fortran extension).
"""

from __future__ import annotations

from repro.core.errors import SplSemanticError
from repro.core.icode import (
    FConst,
    FVar,
    IExpr,
    Instr,
    Loop,
    Op,
    Operand,
    Program,
    VecRef,
)

MARGIN = "      "  # columns 1-6 of fixed-form Fortran
CONT = "     &"


def emit_fortran(program: Program, *, automatic_storage: bool = False) -> str:
    complex_code = (
        program.datatype == "complex" and program.element_width == 1
    )
    scalar_type = "complex*16" if complex_code else "real*8"
    lines: list[str] = []
    args = "(y,x)"
    if program.strided:
        args = "(y,x,istride,ostride,iofs,oofs)"
    lines.append(f"{MARGIN}subroutine {program.name} {args}")
    lines.append(f"{MARGIN}implicit {scalar_type} (f)")
    lines.append(f"{MARGIN}implicit integer (r)")
    if program.strided:
        lines.append(f"{MARGIN}integer istride,ostride,iofs,oofs")
    out_len = program.out_size * program.element_width
    in_len = program.in_size * program.element_width
    lines.append(f"{MARGIN}{scalar_type} y({out_len}),x({in_len})")
    for info in program.temp_vectors():
        lines.append(f"{MARGIN}{scalar_type} {info.name}({max(info.size, 1)})")
    for name, values in program.tables.items():
        lines.append(f"{MARGIN}{scalar_type} {name}({len(values)})")
        lines.extend(_data_statement(name, values))
    if automatic_storage:
        names = program.scalar_names()
        names.extend(info.name for info in program.temp_vectors())
        for name in names:
            lines.append(f"{MARGIN}automatic {name}")
    lines.extend(_emit_block(program.body, 0))
    lines.append(f"{MARGIN}end")
    return "\n".join(lines) + "\n"


def _data_statement(name: str, values) -> list[str]:
    rendered = [_const(v) for v in values]
    lines = [f"{MARGIN}data {name} /"]
    current = lines[-1]
    for i, item in enumerate(rendered):
        suffix = "," if i + 1 < len(rendered) else "/"
        if len(current) + len(item) + 1 > 70:
            lines[-1] = current
            current = f"{CONT}{item}{suffix}"
            lines.append(current)
        else:
            current += item + suffix
            lines[-1] = current
    return lines


def _emit_block(body: list[Instr], depth: int) -> list[str]:
    pad = MARGIN + "  " * depth
    lines: list[str] = []
    for inst in body:
        if isinstance(inst, Loop):
            lines.append(f"{pad}do {inst.var} = 0, {inst.count - 1}")
            lines.extend(_emit_block(inst.body, depth + 1))
            lines.append(f"{pad}end do")
        elif isinstance(inst, Op):
            lines.append(f"{pad}{_emit_op(inst)}")
        else:
            lines.append(f"c {inst.text}")
    return lines


def _emit_op(op: Op) -> str:
    dest = _operand(op.dest)
    if op.op == "=":
        return f"{dest} = {_operand(op.a)}"
    if op.op == "neg":
        return f"{dest} = -{_operand(op.a)}"
    return f"{dest} = {_operand(op.a)} {op.op} {_operand(op.b)}"


def _operand(operand: Operand) -> str:
    if isinstance(operand, FVar):
        return operand.name
    if isinstance(operand, FConst):
        return _const(operand.value)
    if isinstance(operand, VecRef):
        return f"{operand.vec}({_index(operand.index)})"
    raise SplSemanticError(f"cannot emit operand {operand!r} as Fortran")


def _const(value) -> str:
    if isinstance(value, complex):
        return f"({_real(value.real)},{_real(value.imag)})"
    return _real(float(value))


def _real(value: float) -> str:
    text = repr(value)
    if "e" in text or "E" in text:
        return text.replace("e", "d").replace("E", "d")
    return text + "d0"


def _index(expr: IExpr) -> str:
    # Fortran arrays are 1-based: shift every subscript.
    shifted = expr + 1
    const = shifted.as_const()
    if const is not None:
        return str(const)
    return str(shifted)
