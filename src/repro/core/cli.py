"""Command-line interface: ``spl-compile [options] file.spl``.

Mirrors the paper's compiler invocation, including the ``-B`` unrolling
threshold ('with the command-line option "-B 32", all the loops in
those sub-formulas whose input vector is smaller than or equal to 32
are fully unrolled').
"""

from __future__ import annotations

import argparse
import sys

from repro.core.compiler import CompilerOptions, SplCompiler
from repro.core.errors import SplError


def build_arg_parser() -> argparse.ArgumentParser:
    arg_parser = argparse.ArgumentParser(
        prog="spl-compile",
        description="Compile SPL formulas into Fortran, C or Python.",
    )
    arg_parser.add_argument("file", help="SPL source file ('-' for stdin)")
    arg_parser.add_argument(
        "-B", "--unroll-threshold", type=int, metavar="SIZE", default=None,
        help="fully unroll loops of sub-formulas with input size <= SIZE",
    )
    arg_parser.add_argument(
        "--unroll", action="store_true",
        help="fully unroll every loop (straight-line code)",
    )
    arg_parser.add_argument(
        "--language", choices=("c", "fortran", "python"), default=None,
        help="target language (overrides #language directives)",
    )
    arg_parser.add_argument(
        "--datatype", choices=("real", "complex"), default=None,
        help="data type (overrides #datatype directives)",
    )
    arg_parser.add_argument(
        "--codetype", choices=("real", "complex"), default=None,
        help="code type (overrides #codetype directives)",
    )
    arg_parser.add_argument(
        "--optimize", choices=("none", "scalars", "default"),
        default="default", help="optimization level (default: default)",
    )
    arg_parser.add_argument(
        "--peephole", action="store_true",
        help="apply the SPARC-style unary-minus peephole",
    )
    arg_parser.add_argument(
        "--automatic", action="store_true",
        help="declare Fortran temporaries 'automatic' (stack allocation)",
    )
    arg_parser.add_argument(
        "--stats", action="store_true",
        help="print flop/memory statistics for each routine to stderr",
    )
    return arg_parser


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    if args.file == "-":
        source = sys.stdin.read()
    else:
        try:
            with open(args.file, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            print(f"spl-compile: {exc}", file=sys.stderr)
            return 2
    options = CompilerOptions(
        language=args.language,
        datatype=args.datatype,
        codetype=args.codetype,
        unroll=args.unroll,
        unroll_threshold=args.unroll_threshold,
        optimize=args.optimize,
        peephole=args.peephole,
        automatic_storage=args.automatic,
    )
    try:
        routines = SplCompiler(options).compile_text(source)
    except SplError as exc:
        print(f"spl-compile: {exc}", file=sys.stderr)
        return 1
    for routine in routines:
        print(routine.source)
        if args.stats:
            program = routine.program
            print(
                f"; {routine.name}: in={program.in_size} "
                f"out={program.out_size} flops={program.flop_count()} "
                f"temps={program.temp_elements()} "
                f"tables={program.table_elements()}",
                file=sys.stderr,
            )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
