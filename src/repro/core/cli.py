"""Command-line interface: ``spl-compile [options] file.spl``.

Mirrors the paper's compiler invocation, including the ``-B`` unrolling
threshold ('with the command-line option "-B 32", all the loops in
those sub-formulas whose input vector is smaller than or equal to 32
are fully unrolled').

Beyond the paper, ``--search-fft SIZES`` runs the §4.1 small-size
search from the command line, with ``--wisdom FILE`` persisting the
winners (so a repeat invocation re-measures nothing) and ``--jobs N``
measuring candidates concurrently.  Search measurements run in
sandboxed worker processes by default — a candidate that segfaults,
hangs past ``--measure-timeout`` or emits NaN is skipped and
quarantined instead of killing the search; ``--no-sandbox`` opts out.  ``--language numpy`` targets the
batch-vectorized NumPy backend, and ``--batch N`` times each compiled
routine over a random N-vector batch (``apply_many``) and reports
vectors/sec.

Parallel runtime knobs: ``--threads N`` runs ``apply_many`` across N
workers (OpenMP C driver or sharded thread-pool dispatch; 0 = one per
CPU), ``--dispatch`` drives the batch through the dynamic request
batcher (:class:`repro.runtime.BatchDispatcher`) from concurrent
client threads and reports its coalescing counters, and ``--cflags``
appends extra host-compiler flags (e.g. ``-march=native``; also
settable process-wide via ``SPL_CFLAGS``).
"""

from __future__ import annotations

import argparse
import shlex
import sys

from repro.core.compiler import CompilerOptions, SplCompiler
from repro.core.errors import SplError
from repro.core.limits import DEFAULT_LIMITS


def build_arg_parser() -> argparse.ArgumentParser:
    arg_parser = argparse.ArgumentParser(
        prog="spl-compile",
        description="Compile SPL formulas into Fortran, C or Python.",
    )
    arg_parser.add_argument(
        "file", nargs="?", default=None,
        help="SPL source file ('-' for stdin); optional with --search-fft",
    )
    arg_parser.add_argument(
        "-B", "--unroll-threshold", type=int, metavar="SIZE", default=None,
        help="fully unroll loops of sub-formulas with input size <= SIZE",
    )
    arg_parser.add_argument(
        "--unroll", action="store_true",
        help="fully unroll every loop (straight-line code)",
    )
    arg_parser.add_argument(
        "--language", choices=("c", "cjit", "fortran", "python", "numpy"),
        default=None,
        help="target language (overrides #language directives; cjit = "
             "C semantics with in-process machine-code compilation "
             "for codelets)",
    )
    arg_parser.add_argument(
        "--datatype", choices=("real", "complex"), default=None,
        help="data type (overrides #datatype directives)",
    )
    arg_parser.add_argument(
        "--codetype", choices=("real", "complex"), default=None,
        help="code type (overrides #codetype directives)",
    )
    arg_parser.add_argument(
        "--optimize", choices=("none", "scalars", "default"),
        default="default", help="optimization level (default: default)",
    )
    arg_parser.add_argument(
        "--peephole", action="store_true",
        help="apply the SPARC-style unary-minus peephole",
    )
    arg_parser.add_argument(
        "--automatic", action="store_true",
        help="declare Fortran temporaries 'automatic' (stack allocation)",
    )
    arg_parser.add_argument(
        "--no-fusion", action="store_true",
        help="disable cross-stage loop fusion and scratch liveness "
             "reuse (reproduces the paper's stage-at-a-time code)",
    )
    arg_parser.add_argument(
        "--validate-passes", action="store_true",
        help="re-derive each routine's dense matrix after every "
             "optimizer pass and abort (SPL-E300) if any pass changed "
             "its semantics; slow, intended for debugging and fuzzing",
    )
    arg_parser.add_argument(
        "--dump-passes", action="store_true",
        help="print the per-pass compile report (statement/temp/"
             "scratch deltas, per-pass time) for each routine to stderr",
    )
    arg_parser.add_argument(
        "--max-icode", type=int, metavar="N", default=None,
        help="abort compilation past N intermediate-code statements "
             f"(default {DEFAULT_LIMITS.max_icode_statements})",
    )
    arg_parser.add_argument(
        "--max-unroll", type=int, metavar="N", default=None,
        help="reject loop unrolling past N total statements "
             f"(default {DEFAULT_LIMITS.max_unroll_statements})",
    )
    arg_parser.add_argument(
        "--compile-deadline", type=float, metavar="SECONDS", default=None,
        help="wall-clock limit per compiled routine "
             f"(default {DEFAULT_LIMITS.compile_deadline:g})",
    )
    arg_parser.add_argument(
        "--stats", action="store_true",
        help="print flop/memory statistics for each routine to stderr "
             "(with --wisdom: also the wisdom-cache counters)",
    )
    arg_parser.add_argument(
        "--batch", type=int, metavar="N", default=None,
        help="execute each compiled routine on a random batch of N "
             "vectors through apply_many and report vectors/sec on "
             "stderr (backend follows --language: c, numpy or python; "
             "default: fastest available)",
    )
    arg_parser.add_argument(
        "--threads", type=int, metavar="N", default=1,
        help="run apply_many across N workers: the OpenMP batch driver "
             "for the C backend, sharded thread-pool dispatch otherwise "
             "(0 = one per CPU; default 1)",
    )
    arg_parser.add_argument(
        "--dispatch", action="store_true",
        help="with --batch: serve the vectors through the dynamic "
             "request batcher from concurrent clients and report its "
             "coalescing stats instead of timing apply_many directly",
    )
    arg_parser.add_argument(
        "--cflags", metavar="FLAGS", default=None,
        help="extra host C compiler flags for compiled backends, e.g. "
             "--cflags=-march=native (the '=' form is needed for "
             "flags starting with '-'; also: SPL_CFLAGS env variable)",
    )
    arg_parser.add_argument(
        "--search-fft", metavar="SIZES", default=None,
        help="run the small-size FFT search over the comma-separated "
             "sizes (e.g. 2,4,8) and print the winners",
    )
    arg_parser.add_argument(
        "--wisdom", metavar="FILE", default=None,
        help="persistent wisdom file: search winners are loaded from / "
             "saved to it, keyed by platform and options",
    )
    arg_parser.add_argument(
        "--jobs", type=int, metavar="N", default=1,
        help="measure up to N candidates concurrently (0 = one per CPU)",
    )
    arg_parser.add_argument(
        "--min-time", type=float, metavar="SECONDS", default=0.005,
        help="minimum timed batch duration per measurement repeat",
    )
    arg_parser.add_argument(
        "--max-candidates", type=int, metavar="N", default=None,
        help="cap the per-size candidate count during --search-fft",
    )
    arg_parser.add_argument(
        "--unroll-search", metavar="SIZES", default=None,
        help="sweep the -B unroll threshold over these comma-separated "
             "values as a second --search-fft dimension (each candidate "
             "is measured once per threshold; the winning threshold is "
             "recorded in wisdom)",
    )
    arg_parser.add_argument(
        "--measure-timeout", type=float, metavar="SECONDS", default=30.0,
        help="wall-clock limit per sandboxed candidate measurement "
             "during --search-fft; hung candidates are killed and "
             "quarantined (default 30)",
    )
    arg_parser.add_argument(
        "--no-sandbox", action="store_true",
        help="measure --search-fft candidates in-process instead of in "
             "isolated worker processes (faster, but a crashing or "
             "hanging candidate takes the search down with it)",
    )
    arg_parser.add_argument(
        "--search-workers", type=int, metavar="N", default=None,
        help="fan --search-fft measurements over N leased forked "
             "workers (crash/hang-tolerant distributed search; implies "
             "per-candidate isolation, so --no-sandbox does not apply)",
    )
    arg_parser.add_argument(
        "--search-journal", metavar="FILE", default=None,
        help="append completed distributed-search measurements to this "
             "checksummed journal; an interrupted run resumes from it "
             "(only with --search-workers)",
    )
    return arg_parser


def _run_search(args: argparse.Namespace) -> int:
    from repro.perfeval.sandbox import (
        Quarantine,
        SandboxPolicy,
        sandbox_supported,
    )
    from repro.search.dp import search_small_sizes
    from repro.wisdom.store import WisdomStore

    try:
        sizes = tuple(
            int(part) for part in args.search_fft.split(",") if part.strip()
        )
    except ValueError:
        print(f"spl-compile: bad --search-fft value {args.search_fft!r}",
              file=sys.stderr)
        return 2
    if not sizes:
        print("spl-compile: --search-fft needs at least one size",
              file=sys.stderr)
        return 2
    thresholds = None
    if args.unroll_search is not None:
        try:
            thresholds = tuple(
                int(part) for part in args.unroll_search.split(",")
                if part.strip()
            )
        except ValueError:
            print("spl-compile: bad --unroll-search value "
                  f"{args.unroll_search!r}", file=sys.stderr)
            return 2
        if not thresholds:
            print("spl-compile: --unroll-search needs at least one "
                  "threshold", file=sys.stderr)
            return 2
    wisdom = WisdomStore(args.wisdom) if args.wisdom else None
    sandbox = None
    quarantine = None
    if not args.no_sandbox and sandbox_supported():
        sandbox = SandboxPolicy(timeout=args.measure_timeout)
        quarantine = Quarantine()
    use_dist = bool(args.search_workers)
    if use_dist:
        from repro.search.queue import queue_supported

        if not queue_supported():
            print("spl-compile: --search-workers needs POSIX fork; "
                  "falling back to the serial search", file=sys.stderr)
            use_dist = False
    try:
        if use_dist:
            from repro.search.dist import distributed_search_small_sizes
            from repro.search.queue import QueuePolicy

            results = distributed_search_small_sizes(
                sizes,
                max_candidates=args.max_candidates,
                min_time=args.min_time,
                wisdom=wisdom,
                policy=QueuePolicy(
                    workers=args.search_workers,
                    lease_timeout_s=args.measure_timeout,
                ),
                journal_path=args.search_journal,
                quarantine=quarantine or Quarantine(),
                unroll_thresholds=thresholds,
            )
        else:
            results = search_small_sizes(
                sizes,
                max_candidates=args.max_candidates,
                min_time=args.min_time,
                wisdom=wisdom,
                jobs=args.jobs,
                sandbox=sandbox,
                quarantine=quarantine,
                unroll_thresholds=thresholds,
            )
    except SplError as exc:
        print(f"spl-compile: {exc}", file=sys.stderr)
        return 1
    for n in sorted(results):
        print(results[n].describe())
    if wisdom is not None and wisdom.save_errors:
        print(f"spl-compile: warning: cannot write wisdom file "
              f"{wisdom.path} (results not persisted)", file=sys.stderr)
    if args.stats and wisdom is not None:
        print(wisdom.describe(), file=sys.stderr)
    if args.stats and quarantine is not None and len(quarantine):
        print(quarantine.describe(), file=sys.stderr)
    return 0


def _time_dispatch(executable, args: argparse.Namespace):
    """Serve random vectors through a BatchDispatcher from concurrent
    clients for ~min_time; returns (vectors/sec, DispatchStats)."""
    import threading
    import time as _time

    import numpy as np

    from repro.runtime import BatchDispatcher

    rng = np.random.default_rng(0)
    n = executable.n
    clients = min(args.batch, 8)
    vectors = [rng.standard_normal(n) + 1j * rng.standard_normal(n)
               for _ in range(clients)]
    with BatchDispatcher(executable, max_batch=args.batch,
                         max_delay=0.0005,
                         threads=args.threads) as dispatcher:
        counts = [0] * clients
        stop = _time.monotonic() + max(args.min_time, 0.01)

        def client(i: int) -> None:
            while _time.monotonic() < stop:
                dispatcher.apply(vectors[i])
                counts[i] += 1

        start = _time.monotonic()
        workers = [threading.Thread(target=client, args=(i,))
                   for i in range(clients)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        elapsed = _time.monotonic() - start
        stats = dispatcher.stats
    return sum(counts) / elapsed, stats


def _run_batch(routines, args: argparse.Namespace) -> int:
    """Time ``apply_many`` over a random batch for every routine."""
    from repro.perfeval.runner import build_executable
    from repro.perfeval.timing import time_callable

    if args.batch < 1:
        print("spl-compile: --batch needs a positive batch size",
              file=sys.stderr)
        return 2
    prefer = {"c": "c", "cjit": "cjit", "numpy": "numpy",
              "python": "python"}.get(args.language, "c")
    cflags = tuple(shlex.split(args.cflags)) if args.cflags else ()
    for routine in routines:
        try:
            executable = build_executable(routine, prefer=prefer,
                                          cflags=cflags,
                                          threads=args.threads)
        except (SplError, ValueError) as exc:
            print(f"spl-compile: {routine.name}: {exc}", file=sys.stderr)
            return 1
        if args.dispatch:
            rate, stats = _time_dispatch(executable, args)
            print(
                f"; {routine.name}: n={routine.in_size} "
                f"batch={args.batch} threads={args.threads} "
                f"backend={executable.backend} dispatch {rate:.0f} "
                f"vectors/sec (requests={stats.requests} "
                f"batches={stats.batches} max_batch={stats.max_batch} "
                f"coalesced={stats.coalesced_requests})",
                file=sys.stderr,
            )
            continue
        closure = executable.timer_closure_many(args.batch,
                                                threads=args.threads)
        seconds = time_callable(closure, min_time=args.min_time)
        rate = args.batch / seconds
        print(
            f"; {routine.name}: n={routine.in_size} batch={args.batch} "
            f"threads={args.threads} backend={executable.backend} "
            f"{rate:.0f} vectors/sec",
            file=sys.stderr,
        )
    return 0


def _report(exc: SplError, source: str, filename: str) -> None:
    """Print one rendered diagnostic (caret snippet and all) to stderr."""
    print(f"spl-compile: {exc.render(source, filename=filename)}",
          file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    try:
        return _main(argv)
    except KeyboardInterrupt:
        print("spl-compile: interrupted", file=sys.stderr)
        return 130


def _main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    if args.search_fft is not None:
        return _run_search(args)
    if args.file is None:
        print("spl-compile: a source file (or --search-fft) is required",
              file=sys.stderr)
        return 2
    if args.file == "-":
        source = sys.stdin.read()
        filename = "<stdin>"
    else:
        try:
            with open(args.file, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            print(f"spl-compile: {exc}", file=sys.stderr)
            return 2
        filename = args.file
    options = CompilerOptions(
        language=args.language,
        datatype=args.datatype,
        codetype=args.codetype,
        unroll=args.unroll,
        unroll_threshold=args.unroll_threshold,
        optimize=args.optimize,
        peephole=args.peephole,
        automatic_storage=args.automatic,
        fusion=not args.no_fusion,
        validate_passes=args.validate_passes,
    )
    limits = DEFAULT_LIMITS.with_overrides(
        max_icode_statements=args.max_icode,
        max_unroll_statements=args.max_unroll,
        compile_deadline=args.compile_deadline,
    )
    compiler = SplCompiler(options, limits=limits)
    # Parse in recovery mode so one bad unit does not hide the errors
    # in the rest of the file; every diagnostic is reported at once.
    program = compiler.parse(source, recover=True)
    if program.errors:
        for exc in program.errors:
            _report(exc, source, filename)
        return 1
    compiler.defines.update(program.defines)
    routines = []
    failures = 0
    for unit in program.units:
        try:
            routines.append(compiler.compile_unit(unit))
        except SplError as exc:
            if exc.line is None and unit.line:
                exc.line = unit.line
            _report(exc, source, filename)
            failures += 1
    if failures:
        return 1
    if args.batch is not None:
        status = _run_batch(routines, args)
        if status:
            return status
    for routine in routines:
        print(routine.source)
        if args.dump_passes:
            print(routine.describe_passes(), file=sys.stderr)
        if args.stats:
            program = routine.program
            print(
                f"; {routine.name}: in={program.in_size} "
                f"out={program.out_size} flops={program.flop_count()} "
                f"temps={program.temp_elements()} "
                f"tables={program.table_elements()}",
                file=sys.stderr,
            )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
