"""Intermediate code generation (phase 2, Section 3.2).

Each formula is expanded recursively: the newest template whose pattern
matches (and whose condition holds) supplies the i-code; pattern
variables bound to sub-formulas are expanded in place with composed
strides and offsets.  The six implicit parameters of the paper
(``$in``, ``$out`` and their strides/offsets) are carried in
:class:`VecContext` objects.

Matrix literals — ``(matrix ...)``, ``(diagonal ...)``,
``(permutation ...)`` — have built-in code generation since a template
pattern cannot quantify over "any literal".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import nodes
from repro.core.errors import SplSemanticError, SplTemplateError
from repro.core.limits import CompileBudget
from repro.core.icode import (
    FConst,
    FVar,
    IExpr,
    Instr,
    Intrinsic,
    Loop,
    Op,
    Operand,
    Program,
    VEC_INPUT,
    VEC_OUTPUT,
    VEC_TEMP,
    VecInfo,
    VecRef,
    iter_ops,
)
from repro.core.templates import (
    TAssign,
    TCall,
    TIntrinsic,
    TLoop,
    TNumber,
    TOperand,
    TRAssign,
    TScalar,
    TStmt,
    TVecElem,
    TemplateEnv,
    TemplateTable,
    eval_texpr,
)

INPUT_VEC = "x"
OUTPUT_VEC = "y"


@dataclass(frozen=True)
class VecContext:
    """A view into a vector: ``element(k) = vec[offset + k*stride]``."""

    vec: str
    offset: IExpr
    stride: IExpr

    def ref(self, index: IExpr) -> VecRef:
        return VecRef(self.vec, self.offset + index * self.stride)

    def narrowed(self, offset: IExpr, stride: IExpr) -> "VecContext":
        return VecContext(
            self.vec,
            self.offset + offset * self.stride,
            stride * self.stride,
        )


class CodeGenerator:
    """Expands one formula into a complete i-code :class:`Program`."""

    def __init__(self, table: TemplateTable, *,
                 unroll_all: bool = False,
                 unroll_threshold: int | None = None,
                 budget: CompileBudget | None = None):
        self.table = table
        self.unroll_all = unroll_all
        self.unroll_threshold = unroll_threshold
        self.budget = budget or CompileBudget()
        self._loop_counter = 0
        self._scalar_counter = 0
        self._temp_counter = 0
        self._temps: dict[str, VecInfo] = {}
        self._expansion_stack: set[int] = set()
        self._depth = 0
        self._path: list[str] = []

    def generate(self, formula: nodes.Formula, name: str,
                 datatype: str = "complex", *,
                 strided: bool = False) -> Program:
        # Bound the AST depth *before* entering any recursive machinery
        # (size computation, matching, expansion) so a hostile nest is
        # diagnosed instead of overflowing the interpreter stack.
        self.budget.check_formula_depth(formula)
        in_size, out_size = self.table.sizes(formula)
        if strided:
            in_ctx = VecContext(INPUT_VEC, IExpr.var("iofs"),
                                IExpr.var("istride"))
            out_ctx = VecContext(OUTPUT_VEC, IExpr.var("oofs"),
                                 IExpr.var("ostride"))
        else:
            in_ctx = VecContext(INPUT_VEC, IExpr.const(0), IExpr.const(1))
            out_ctx = VecContext(OUTPUT_VEC, IExpr.const(0), IExpr.const(1))
        body = self._expand(formula, in_ctx, out_ctx, inherited_unroll=False)
        program = Program(
            name=name,
            in_size=in_size,
            out_size=out_size,
            datatype=datatype,
            body=body,
            strided=strided,
        )
        program.vectors[INPUT_VEC] = VecInfo(INPUT_VEC, in_size, VEC_INPUT,
                                             dtype=datatype)
        program.vectors[OUTPUT_VEC] = VecInfo(OUTPUT_VEC, out_size,
                                              VEC_OUTPUT, dtype=datatype)
        _size_temps(program, self._temps)
        for info in self._temps.values():
            info.dtype = datatype
            program.vectors[info.name] = info
        return program

    # -- expansion ---------------------------------------------------------

    def _expand(self, formula: nodes.Formula, in_ctx: VecContext,
                out_ctx: VecContext, inherited_unroll: bool) -> list[Instr]:
        construct = _describe(formula)
        self._depth += 1
        self._path.append(construct)
        try:
            self.budget.check_depth(self._depth, construct,
                                    self.formula_path())
            self.budget.charge_expansion(construct, self.formula_path())
            return self._expand_dispatch(formula, in_ctx, out_ctx,
                                         inherited_unroll, construct)
        finally:
            self._path.pop()
            self._depth -= 1

    def formula_path(self, last: int = 8) -> tuple[str, ...]:
        """The chain of enclosing constructs, innermost first."""
        return tuple(reversed(self._path[-last:]))

    def _expand_dispatch(self, formula: nodes.Formula, in_ctx: VecContext,
                         out_ctx: VecContext, inherited_unroll: bool,
                         construct: str) -> list[Instr]:
        unroll = formula.unroll if formula.unroll is not None \
            else inherited_unroll
        if isinstance(formula, nodes.DiagonalLit):
            return self._expand_diagonal(formula, in_ctx, out_ctx)
        if isinstance(formula, nodes.PermutationLit):
            return self._expand_permutation(formula, in_ctx, out_ctx)
        if isinstance(formula, nodes.MatrixLit):
            return self._expand_matrix(formula, in_ctx, out_ctx)
        found = self.table.find(formula)
        if found is None:
            raise SplTemplateError(
                f"no template matches {formula.to_spl()}",
                formula_path=self.formula_path(),
            )
        template, info = found
        if template.expansion is not None:
            # A search-generated macro template: compile the stored
            # formula in place of the matched one (same vector views).
            if id(template) in self._expansion_stack:
                raise SplTemplateError(
                    f"recursive expansion of template "
                    f"{template.describe()}",
                    formula_path=self.formula_path(),
                )
            self._expansion_stack.add(id(template))
            try:
                return self._expand(template.expansion, in_ctx, out_ctx,
                                    unroll)
            finally:
                self._expansion_stack.discard(id(template))
        in_size, out_size = self.table.sizes(formula)
        env = TemplateEnv(info["ints"])
        env.ints["in_size"] = in_size
        env.ints["out_size"] = out_size
        env.index_vars["in_size"] = IExpr.const(in_size)
        env.index_vars["out_size"] = IExpr.const(out_size)
        env.index_vars["in_stride"] = in_ctx.stride
        env.index_vars["out_stride"] = out_ctx.stride
        env.index_vars["in_offset"] = in_ctx.offset
        env.index_vars["out_offset"] = out_ctx.offset
        frame = _Frame(env=env, bindings=info["bindings"],
                       in_ctx=in_ctx, out_ctx=out_ctx,
                       unroll=unroll,
                       should_unroll=self._should_unroll(unroll, in_size))
        return self._expand_body(template.body, frame)

    def _should_unroll(self, unroll_flag: bool, in_size: int) -> bool:
        if unroll_flag or self.unroll_all:
            return True
        if self.unroll_threshold is not None:
            return in_size <= self.unroll_threshold
        return False

    def _expand_body(self, stmts: list[TStmt], frame: "_Frame") -> list[Instr]:
        result: list[Instr] = []
        for stmt in stmts:
            if isinstance(stmt, TLoop):
                result.extend(self._expand_loop(stmt, frame))
            elif isinstance(stmt, TRAssign):
                frame.env.index_vars[stmt.name] = eval_texpr(
                    stmt.value, frame.env
                )
            elif isinstance(stmt, TAssign):
                result.append(self._expand_assign(stmt, frame))
            elif isinstance(stmt, TCall):
                result.extend(self._expand_call(stmt, frame))
            else:
                raise SplTemplateError(f"malformed template statement {stmt}")
        return result

    def _expand_loop(self, stmt: TLoop, frame: "_Frame") -> list[Instr]:
        lo_expr = eval_texpr(stmt.lo, frame.env)
        hi_expr = eval_texpr(stmt.hi, frame.env)
        lo, hi = lo_expr.as_const(), hi_expr.as_const()
        if lo is None or hi is None:
            raise SplTemplateError(
                "loop bounds must be constant after pattern substitution"
            )
        count = hi - lo + 1
        if count <= 0:
            return []
        var = self._fresh_loop_var()
        self.budget.charge_statements(1, f"loop over ${stmt.var}",
                                      self.formula_path())
        saved = frame.env.index_vars.get(stmt.var)
        frame.env.index_vars[stmt.var] = IExpr.var(var) + lo
        body = self._expand_body(stmt.body, frame)
        if saved is None:
            frame.env.index_vars.pop(stmt.var, None)
        else:
            frame.env.index_vars[stmt.var] = saved
        return [Loop(var, count, body, unroll=frame.should_unroll)]

    def _expand_assign(self, stmt: TAssign, frame: "_Frame") -> Op:
        self.budget.charge_statements(1, "assignment", self.formula_path())
        dest = self._operand(stmt.dest, frame)
        if not isinstance(dest, (FVar, VecRef)):
            raise SplTemplateError("invalid assignment destination")
        a = self._operand(stmt.a, frame)
        b = self._operand(stmt.b, frame) if stmt.b is not None else None
        return Op(stmt.op, dest, a, b)

    def _operand(self, operand: TOperand, frame: "_Frame") -> Operand:
        if isinstance(operand, TScalar):
            return FVar(frame.scalar(operand.name, self))
        if isinstance(operand, TNumber):
            return FConst(operand.value)
        if isinstance(operand, TIntrinsic):
            args = tuple(eval_texpr(a, frame.env) for a in operand.args)
            return Intrinsic(operand.name.upper(), args)
        if isinstance(operand, TVecElem):
            index = eval_texpr(operand.index, frame.env)
            return frame.vec_context(operand.vec, self).ref(index)
        raise SplTemplateError(f"malformed template operand {operand}")

    def _expand_call(self, stmt: TCall, frame: "_Frame") -> list[Instr]:
        sub = frame.bindings.get(stmt.var)
        if not isinstance(sub, nodes.Formula):
            raise SplTemplateError(
                f"call through unbound formula variable {stmt.var}"
            )
        in_base = frame.vec_context(stmt.in_vec, self)
        out_base = frame.vec_context(stmt.out_vec, self)
        in_ctx = in_base.narrowed(
            eval_texpr(stmt.in_offset, frame.env),
            eval_texpr(stmt.in_stride, frame.env),
        )
        out_ctx = out_base.narrowed(
            eval_texpr(stmt.out_offset, frame.env),
            eval_texpr(stmt.out_stride, frame.env),
        )
        return self._expand(sub, in_ctx, out_ctx, frame.unroll)

    # -- built-in literal code generation ------------------------------------

    def _expand_diagonal(self, formula: nodes.DiagonalLit,
                         in_ctx: VecContext,
                         out_ctx: VecContext) -> list[Instr]:
        self.budget.charge_statements(len(formula.values),
                                      "diagonal literal",
                                      self.formula_path())
        body: list[Instr] = []
        for i, value in enumerate(formula.values):
            index = IExpr.const(i)
            body.append(Op("*", out_ctx.ref(index), FConst(value),
                           in_ctx.ref(index)))
        return body

    def _expand_permutation(self, formula: nodes.PermutationLit,
                            in_ctx: VecContext,
                            out_ctx: VecContext) -> list[Instr]:
        # Direct gather: $in and $out never alias in generated code
        # (see the F_2 template note in startup.spl).
        self.budget.charge_statements(len(formula.perm),
                                      "permutation literal",
                                      self.formula_path())
        body: list[Instr] = []
        for i, k in enumerate(formula.perm):
            body.append(Op("=", out_ctx.ref(IExpr.const(i)),
                           in_ctx.ref(IExpr.const(k - 1))))
        return body

    def _expand_matrix(self, formula: nodes.MatrixLit, in_ctx: VecContext,
                       out_ctx: VecContext) -> list[Instr]:
        self.budget.charge_statements(
            len(formula.rows) * len(formula.rows[0]), "matrix literal",
            self.formula_path(),
        )
        body: list[Instr] = []
        for i, row in enumerate(formula.rows):
            dest = out_ctx.ref(IExpr.const(i))
            terms = [(j, a) for j, a in enumerate(row) if a != 0]
            if not terms:
                body.append(Op("=", dest, FConst(0.0)))
                continue
            first_j, first_a = terms[0]
            first_src = in_ctx.ref(IExpr.const(first_j))
            if first_a == 1:
                body.append(Op("=", dest, first_src))
            else:
                body.append(Op("*", dest, FConst(first_a), first_src))
            for j, a in terms[1:]:
                src = in_ctx.ref(IExpr.const(j))
                if a == 1:
                    body.append(Op("+", dest, dest, src))
                else:
                    scalar = FVar(self._fresh_scalar())
                    body.append(Op("*", scalar, FConst(a), src))
                    body.append(Op("+", dest, dest, scalar))
        return body

    # -- fresh-name helpers ---------------------------------------------------

    def _fresh_loop_var(self) -> str:
        name = f"i{self._loop_counter}"
        self._loop_counter += 1
        return name

    def _fresh_scalar(self) -> str:
        name = f"f{self._scalar_counter}"
        self._scalar_counter += 1
        return name

    def _fresh_temp(self) -> str:
        name = f"t{self._temp_counter}"
        self._temp_counter += 1
        self._temps[name] = VecInfo(name, 0, VEC_TEMP)
        return name


def _describe(formula: nodes.Formula) -> str:
    """A constant-size label for one formula node (no recursion)."""
    if isinstance(formula, nodes.Param):
        return formula.to_spl()
    if isinstance(formula, nodes.DiagonalLit):
        return f"(diagonal …)[{len(formula.values)}]"
    if isinstance(formula, nodes.PermutationLit):
        return f"(permutation …)[{len(formula.perm)}]"
    if isinstance(formula, nodes.MatrixLit):
        return f"(matrix …)[{len(formula.rows)}x{len(formula.rows[0])}]"
    name = getattr(formula, "op_name", "") or type(formula).__name__.lower()
    return f"({name} …)"


@dataclass
class _Frame:
    """Per-template-instantiation state: local name mappings."""

    env: TemplateEnv
    bindings: dict
    in_ctx: VecContext
    out_ctx: VecContext
    unroll: bool
    should_unroll: bool

    def __post_init__(self) -> None:
        self._scalars: dict[str, str] = {}
        self._temp_names: dict[str, str] = {}

    def scalar(self, template_name: str, gen: CodeGenerator) -> str:
        name = self._scalars.get(template_name)
        if name is None:
            name = gen._fresh_scalar()
            self._scalars[template_name] = name
        return name

    def vec_context(self, template_vec: str, gen: CodeGenerator) -> VecContext:
        if template_vec == "in":
            return self.in_ctx
        if template_vec == "out":
            return self.out_ctx
        name = self._temp_names.get(template_vec)
        if name is None:
            name = gen._fresh_temp()
            self._temp_names[template_vec] = name
        return VecContext(name, IExpr.const(0), IExpr.const(1))


def _size_temps(program: Program, temps: dict[str, VecInfo]) -> None:
    """Infer temp vector sizes by bounding every subscript."""
    if not temps:
        return
    maxima = {name: -1 for name in temps}

    def visit(body: list[Instr], ranges: dict[str, tuple[int, int]]) -> None:
        for inst in body:
            if isinstance(inst, Loop):
                inner = dict(ranges)
                inner[inst.var] = (0, inst.count - 1)
                visit(inst.body, inner)
            elif isinstance(inst, Op):
                for item in (inst.dest, *inst.operands()):
                    if isinstance(item, VecRef) and item.vec in maxima:
                        lo, hi = item.index.interval(ranges)
                        if lo < 0:
                            raise SplSemanticError(
                                f"negative subscript on temporary "
                                f"{item.vec}: {item.index}"
                            )
                        maxima[item.vec] = max(maxima[item.vec], hi)

    visit(program.body, {})
    for name, info in temps.items():
        info.size = maxima[name] + 1
