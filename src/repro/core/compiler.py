"""The SPL compiler driver: the five phases of Section 3 in order.

1. parsing,
2. intermediate code generation,
3. intermediate code restructuring (unrolling + scalarization,
   intrinsic evaluation, type transformation),
4. optimization (value numbering + DCE, optional peephole),
5. target code generation (Fortran / C / Python).

The optimization level knob mirrors the three code versions of the
paper's Figure 2 experiment:

* ``"none"``    — version (1): no optimization;
* ``"scalars"`` — version (2): temporary vectors replaced by scalars;
* ``"default"`` — version (3): scalars + the default value-numbering
  optimizations.
"""

from __future__ import annotations

import importlib.resources
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

from repro.core import parser
from repro.core.backend_c import emit_c
from repro.core.backend_fortran import emit_fortran
from repro.core.backend_numpy import compile_numpy, emit_numpy
from repro.core.backend_python import compile_python, emit_python
from repro.core.codegen import CodeGenerator
from repro.core.errors import SplError, SplSemanticError
from repro.core.fusion import forward_copy_stages, fuse_conformable_stages
from repro.core.icode import Program
from repro.core.intrinsics import evaluate_intrinsics
from repro.core.limits import CompileBudget, CompileLimits, DEFAULT_LIMITS
from repro.core.nodes import Formula
from repro.core.optimizer import PassPipeline, PassRecord, optimize
from repro.core.parser import FormulaUnit, ParsedProgram
from repro.core.peephole import (
    avoid_unary_minus,
    prune_dead_temps,
    reuse_temp_arrays,
)
from repro.core.templates import TemplateTable
from repro.core.typetrans import complex_to_real
from repro.core.unroll import scalarize_temps, unroll_loops
from repro.wisdom import keys as wisdom_keys

OPT_LEVELS = ("none", "scalars", "default")


@dataclass(frozen=True)
class CompilerOptions:
    """Knobs corresponding to the paper's command-line options."""

    language: str | None = None  # None: honor each unit's #language
    datatype: str | None = None  # None: honor each unit's #datatype
    codetype: str | None = None
    unroll: bool = False  # unroll every loop (straight-line code)
    unroll_threshold: int | None = None  # the paper's "-B <size>"
    optimize: str = "default"
    peephole: bool = False  # SPARC-style unary-minus rewriting
    automatic_storage: bool = False  # Fortran 'automatic' declarations
    # Cross-stage loop fusion + scratch liveness reuse (only active at
    # optimize="default"); off reproduces the paper's stage-at-a-time
    # code exactly, which is also the before-side of the benchmarks.
    fusion: bool = True
    # Per-pass translation validation: after every optimizer pass,
    # re-derive the matrix the i-code denotes and fail typed
    # (SPL-E300) if any pass changed it.
    validate_passes: bool = False

    def __post_init__(self) -> None:
        if self.optimize not in OPT_LEVELS:
            raise SplSemanticError(
                f"optimize must be one of {OPT_LEVELS}, got {self.optimize!r}"
            )


@dataclass
class CompiledRoutine:
    """The result of compiling one SPL formula."""

    name: str
    formula: Formula
    program: Program
    source: str
    language: str
    passes: list[PassRecord] = field(default_factory=list)
    _callable: Callable | None = field(default=None, repr=False)

    @property
    def in_size(self) -> int:
        return self.program.in_size

    @property
    def out_size(self) -> int:
        return self.program.out_size

    @property
    def flop_count(self) -> int:
        return self.program.flop_count()

    @property
    def scratch_bytes(self) -> int:
        """Temp-array bytes the compiled program allocates per call."""
        return self.program.scratch_bytes()

    @property
    def scratch_bytes_before(self) -> int:
        """Scratch the program allocated before the optimizer ran."""
        if self.passes:
            return self.passes[0].scratch_in
        return self.program.scratch_bytes()

    @property
    def temps_eliminated(self) -> int:
        """Temp arrays removed by fusion + liveness-based reuse."""
        if not self.passes:
            return 0
        return self.passes[0].temps_in - self.passes[-1].temps_out

    def pass_summary(self) -> list[dict]:
        """JSON-ready per-pass records for stats/benchmarks."""
        return [record.as_dict() for record in self.passes]

    def describe_passes(self) -> str:
        """Human-readable pipeline dump (the CLI's ``--dump-passes``)."""
        lines = [f"; pass pipeline for {self.name} "
                 f"({len(self.passes)} passes)"]
        lines.extend(record.describe() for record in self.passes)
        lines.append(
            f"; scratch {self.scratch_bytes_before} -> "
            f"{self.scratch_bytes} bytes, "
            f"{self.temps_eliminated} temp arrays eliminated"
        )
        return "\n".join(lines)

    def callable(self) -> Callable:
        """An executable ``fn(y, x)`` for the routine's target language.

        Python-language (and Fortran/C, which cannot be executed
        in-process) routines get the Python backend's scalar callable;
        ``language="numpy"`` routines get the batch callable operating
        on 2-D ``(B, len)`` arrays.
        """
        if self._callable is None:
            if self.language == "numpy":
                self._callable = compile_numpy(self.program)
            else:
                self._callable = compile_python(self.program)
        return self._callable

    def run(self, x: Sequence) -> list:
        """Apply the routine to a logical input vector.

        Accepts/returns logical (complex, if the datatype is complex)
        element vectors, hiding the interleaved re/im representation.
        """
        width = self.program.element_width
        if len(x) != self.in_size:
            raise SplSemanticError(
                f"{self.name} expects {self.in_size} elements, got {len(x)}"
            )
        if width == 2:
            buf = []
            for value in x:
                value = complex(value)
                buf.extend((value.real, value.imag))
        else:
            buf = list(x)
        if self.language == "numpy":
            y = self._run_numpy(buf)
        else:
            y = [0.0] * (self.out_size * width)
            self.callable()(y, buf)
        if width == 2:
            return [complex(y[2 * k], y[2 * k + 1])
                    for k in range(self.out_size)]
        return list(y)

    def _run_numpy(self, buf: list) -> list:
        """Run the batch backend on a single vector (a B=1 batch)."""
        import numpy as np

        complex_native = (self.program.element_width == 1
                          and self.program.datatype == "complex")
        dtype = complex if complex_native else float
        x2 = np.array([buf], dtype=dtype)
        y2 = np.zeros((1, self.out_size * self.program.element_width),
                      dtype=dtype)
        self.callable()(y2, x2)
        return y2[0].tolist()


class SplCompiler:
    """A compiler session: start-up templates plus accumulated state.

    Templates and ``define``d names persist across :meth:`compile_text`
    calls, mirroring how the paper's compiler reads a start-up file and
    then the user program.
    """

    def __init__(self, options: CompilerOptions | None = None,
                 limits: CompileLimits | None = None):
        self.options = options or CompilerOptions()
        self.limits = limits or DEFAULT_LIMITS
        self.templates = TemplateTable()
        self.defines: dict[str, Formula] = {}
        # In-process wisdom: compile_formula results memoized per session.
        self._compile_memo: dict[tuple, CompiledRoutine] = {}
        self.compile_cache_hits = 0
        self.compile_cache_misses = 0
        self._load_startup()

    def _load_startup(self) -> None:
        source = (
            importlib.resources.files("repro.core")
            .joinpath("startup.spl")
            .read_text()
        )
        parser.parse_program(source, templates=self.templates)

    # -- public API ----------------------------------------------------------

    def parse(self, source: str, *, recover: bool = False) -> ParsedProgram:
        """Parse a program against this session's templates/defines.

        With ``recover=True``, syntax errors are collected in
        ``ParsedProgram.errors`` (resynchronizing at top-level
        S-expression boundaries) instead of raising on the first one.
        """
        return parser.parse_program(
            source, templates=self.templates, defines=self.defines,
            recover=recover, max_depth=self.limits.max_formula_depth,
        )

    def add_definitions(self, source: str) -> None:
        """Parse a program only for its templates and defines."""
        program = self.parse(source)
        self.defines.update(program.defines)
        if program.units:
            raise SplSemanticError(
                "add_definitions expects only templates and defines"
            )

    def compile_text(self, source: str) -> list[CompiledRoutine]:
        """Compile every formula in an SPL program."""
        program = self.parse(source)
        return self.compile_parsed(program)

    def compile_parsed(self, program: ParsedProgram) -> list[CompiledRoutine]:
        """Compile every unit of an already-parsed program."""
        self.defines.update(program.defines)
        return [self.compile_unit(unit) for unit in program.units]

    def compile_unit(self, unit: FormulaUnit, *,
                     limits: CompileLimits | None = None) -> CompiledRoutine:
        """Compile a single parsed unit under its directive context."""
        return self._compile_unit(unit, limits=limits)

    def compile_formula(self, formula: Formula | str, name: str = "spl_0",
                        *, datatype: str | None = None,
                        language: str | None = None,
                        strided: bool = False,
                        vectorize: int = 1,
                        limits: CompileLimits | None = None
                        ) -> CompiledRoutine:
        """Compile a single formula (AST or SPL text).

        ``vectorize=m`` applies Section 3.5's vectorization: "adding an
        outer loop to the code so the computation changes from A to
        A (x) I_m" — the routine then processes m interleaved signals
        at once.

        Explicit ``datatype=``/``language=`` arguments take precedence
        over the session's :class:`CompilerOptions` (which in turn
        override per-unit ``#datatype``/``#language`` directives in
        :meth:`compile_text`).

        Results are memoized per session, keyed by the formula's SPL
        text plus every code-shaping knob; a repeat call returns the
        *same* :class:`CompiledRoutine` (carrying the first call's
        ``name``).  Registering templates invalidates the memo.  See
        :meth:`compile_cache_stats` / :meth:`clear_compile_cache`.
        """
        limits = limits or self.limits
        if isinstance(formula, str):
            formula = parser.parse_formula_text(
                formula, self.defines, max_depth=limits.max_formula_depth
            )
        if vectorize < 1:
            raise SplSemanticError("vectorize factor must be >= 1")
        if vectorize > 1:
            from repro.core import nodes

            formula = nodes.Tensor(left=formula,
                                   right=nodes.identity(vectorize))
        # Depth-check iteratively before to_spl() below recurses over a
        # possibly hostile programmatically-built AST.
        CompileBudget(limits).check_formula_depth(formula)
        key = wisdom_keys.compile_key(
            formula.to_spl(), self.options,
            datatype=datatype, language=language,
            strided=strided, vectorize=vectorize,
            template_version=self.templates.version,
            limits_fingerprint=limits.fingerprint(),
        )
        cached = self._compile_memo.get(key)
        if cached is not None:
            self.compile_cache_hits += 1
            return cached
        self.compile_cache_misses += 1
        unit = FormulaUnit(
            formula=formula,
            name=name,
            datatype=datatype or self.options.datatype or "complex",
            codetype=self.options.codetype or datatype
            or self.options.datatype or "complex",
            language=language or self.options.language or "fortran",
        )
        routine = self._compile_unit(unit, strided=strided, resolved=True,
                                     limits=limits)
        self._compile_memo[key] = routine
        return routine

    def compile_cache_stats(self) -> dict[str, int]:
        """Hit/miss/size counters for the in-process compile memo."""
        return {
            "hits": self.compile_cache_hits,
            "misses": self.compile_cache_misses,
            "entries": len(self._compile_memo),
        }

    def clear_compile_cache(self) -> None:
        self._compile_memo.clear()

    # -- the pipeline ----------------------------------------------------------

    def _compile_unit(self, unit: FormulaUnit, *, strided: bool = False,
                      resolved: bool = False,
                      limits: CompileLimits | None = None) -> CompiledRoutine:
        opts = self.options
        limits = limits or self.limits
        # One budget covers the unit's whole pipeline: the deadline
        # clock starts here and every phase charges against it.
        budget = CompileBudget(limits, what=f"compiling {unit.name}")
        budget.check_formula_depth(unit.formula)
        if resolved:
            # compile_formula already applied explicit-argument-over-
            # session-option precedence; do not let session defaults
            # override an explicit per-call choice again.
            language = unit.language
            datatype = unit.datatype
            codetype = unit.codetype
        else:
            language = opts.language or unit.language
            datatype = opts.datatype or unit.datatype
            codetype = opts.codetype or unit.codetype
            if opts.datatype:
                codetype = opts.codetype or opts.datatype

        # Phase 2: intermediate code generation.
        generator = CodeGenerator(
            self.templates,
            unroll_all=opts.unroll,
            unroll_threshold=opts.unroll_threshold,
            budget=budget,
        )
        program = generator.generate(
            unit.formula, unit.name, datatype, strided=strided
        )

        # Phases 3 and 4 run as a recorded pass pipeline; with
        # validate_passes on, the denoted matrix is re-derived after
        # every pass and compilation aborts typed on any change.
        pipeline = PassPipeline(program, validate=opts.validate_passes)
        pipeline.run("unroll", lambda p: unroll_loops(p, budget))
        if opts.optimize in ("scalars", "default"):
            budget.check_deadline("scalarization")
            pipeline.run("scalarize", scalarize_temps)
        pipeline.run("intrinsics",
                     lambda p: evaluate_intrinsics(p, budget))
        wants_real = codetype == "real" or language in ("c", "cjit")
        # The numpy backend, like the Python one, runs complex natively.
        if datatype == "complex" and wants_real:
            budget.check_deadline("type transformation")
            pipeline.run("typetrans", complex_to_real)

        if opts.optimize == "default":
            budget.check_deadline("optimization")
            pipeline.run("optimize", optimize)
            if opts.fusion:
                pipeline.run(
                    "fuse-copies",
                    lambda p: forward_copy_stages(p, budget),
                    detail=_fusion_detail,
                )
                pipeline.run(
                    "fuse-loops",
                    lambda p: fuse_conformable_stages(p, budget),
                    detail=_fusion_detail,
                )
                # Fusion leaves dead stores/temps behind by design;
                # clean them up, then pack the survivors into shared
                # liveness slots.
                pipeline.run("post-fuse", optimize)
                pipeline.run(
                    "reuse-scratch",
                    _reuse_scratch,
                    detail=lambda n: f"{n} temp arrays merged" if n else "",
                )
        if opts.peephole:
            pipeline.run("peephole", avoid_unary_minus)

        # Phase 5 below emits text proportional to the (already budgeted)
        # statement count; one last deadline check before it runs.
        budget.check_deadline("target code generation")

        # Phase 5: target code generation.  "cjit" is the C language
        # with an in-process execution plan: the machine-code emitter
        # (repro.perfeval.jit) lowers the *program*, not the source,
        # so the C text is kept for inspection and for the gcc-tier
        # background upgrade.
        if language in ("c", "cjit"):
            source = emit_c(program)
        elif language == "fortran":
            source = emit_fortran(
                program, automatic_storage=opts.automatic_storage
            )
        elif language == "python":
            source = emit_python(program)
        elif language == "numpy":
            source = emit_numpy(program)
        else:
            raise SplSemanticError(f"unknown target language {language!r}")

        return CompiledRoutine(
            name=unit.name,
            formula=unit.formula,
            program=program,
            source=source,
            language=language,
            passes=pipeline.records,
        )


def _reuse_scratch(program: Program) -> int:
    prune_dead_temps(program)
    return reuse_temp_arrays(program)


def _fusion_detail(stats) -> str:
    parts = []
    if stats.reads_forwarded:
        parts.append(f"{stats.reads_forwarded} reads forwarded")
    if stats.stages_removed:
        parts.append(f"{stats.stages_removed} stages removed")
    if stats.loops_fused:
        parts.append(f"{stats.loops_fused} nests fused")
    return ", ".join(parts)


def compile_text(source: str,
                 options: CompilerOptions | None = None
                 ) -> list[CompiledRoutine]:
    """One-shot convenience wrapper around :class:`SplCompiler`."""
    return SplCompiler(options).compile_text(source)
