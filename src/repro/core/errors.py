"""Exception hierarchy for the SPL compiler."""

from __future__ import annotations


class SplError(Exception):
    """Base class for every error raised by the SPL compiler."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class SplSyntaxError(SplError):
    """Raised when an SPL program cannot be tokenized or parsed."""


class SplNameError(SplError):
    """Raised for references to undefined symbols or unknown directives."""


class SplSemanticError(SplError):
    """Raised when a formula is structurally valid but meaningless.

    Examples: composing matrices with mismatched sizes, a permutation
    that is not a bijection, or a parameterized matrix with parameters
    that violate its template's condition.
    """


class SplTemplateError(SplError):
    """Raised when no template matches a formula, or a template is ill-formed."""
