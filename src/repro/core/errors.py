"""Exception hierarchy and structured diagnostics for the SPL compiler.

Every compiler error carries:

* a bare ``message`` (no location baked in — formatting happens only in
  ``__str__``/``render``, so wrapping or re-raising never duplicates a
  ``line N:`` prefix);
* an optional source span: 1-based ``line`` and ``col``;
* a stable error ``code`` (``SPL-Exxx``, catalogued in
  ``docs/robustness.md``) so tools and tests can match errors without
  parsing prose;
* for errors raised during formula expansion, a ``formula_path`` — the
  chain of enclosing constructs leading to the offending node.

:meth:`SplError.render` produces a human-facing diagnostic with a caret
snippet when the source text is available; the CLI prints exactly that
instead of a traceback.
"""

from __future__ import annotations

from typing import Sequence


class SplError(Exception):
    """Base class for every error raised by the SPL compiler."""

    #: Stable machine-matchable error code; subclasses override.
    default_code = "SPL-E000"

    def __init__(self, message: str, line: int | None = None, *,
                 col: int | None = None, code: str | None = None,
                 formula_path: Sequence[str] | None = None):
        super().__init__(message)
        self.message = message
        self.line = line
        self.col = col
        self.code = code or self.default_code
        self.formula_path = tuple(formula_path or ())

    @property
    def location(self) -> str:
        """``"line 3, col 7"``, ``"line 3"``, or ``""``."""
        if self.line is None:
            return ""
        if self.col is None:
            return f"line {self.line}"
        return f"line {self.line}, col {self.col}"

    def __str__(self) -> str:
        location = self.location
        if location:
            return f"{location}: {self.message}"
        return self.message

    def render(self, source: str | None = None,
               filename: str | None = None) -> str:
        """A multi-line diagnostic with an optional caret snippet.

        ``source`` is the program text the error was raised for; when
        given (and the error has a line), the offending line is shown
        with a caret under the error column.
        """
        where = filename or "<spl>"
        head = f"{where}: error {self.code}"
        location = self.location
        if location:
            head += f" at {location}"
        lines = [f"{head}: {self.message}"]
        snippet = self._snippet(source)
        if snippet:
            lines.extend(snippet)
        for step in self.formula_path:
            lines.append(f"    in {step}")
        return "\n".join(lines)

    #: Widest snippet line shown; longer source lines (e.g. a one-line
    #: recursion bomb) are windowed around the error column.
    SNIPPET_WIDTH = 76

    def _snippet(self, source: str | None) -> list[str]:
        if source is None or self.line is None:
            return []
        source_lines = source.split("\n")
        if not 1 <= self.line <= len(source_lines):
            return []
        text = source_lines[self.line - 1].rstrip("\n")
        col = self.col if self.col is not None and self.col >= 1 else None
        width = self.SNIPPET_WIDTH
        if len(text) > width:
            anchor = (col - 1) if col is not None else 0
            start = max(0, min(anchor - width // 2, len(text) - width))
            window = text[start:start + width]
            if start > 0:
                window = "..." + window[3:]
            if start + width < len(text):
                window = window[:-3] + "..."
            text = window
            if col is not None:
                col = col - start
        prefix = f"  {self.line} | "
        out = [f"{prefix}{text}"]
        if col is not None:
            pad = " " * (len(prefix) - 2) + "| " + " " * (col - 1)
            out.append(f"{pad}^")
        return out


class SplSyntaxError(SplError):
    """Raised when an SPL program cannot be tokenized or parsed."""

    default_code = "SPL-E100"


class SplNameError(SplError):
    """Raised for references to undefined symbols or unknown directives."""

    default_code = "SPL-E101"


class SplSemanticError(SplError):
    """Raised when a formula is structurally valid but meaningless.

    Examples: composing matrices with mismatched sizes, a permutation
    that is not a bijection, or a parameterized matrix with parameters
    that violate its template's condition.
    """

    default_code = "SPL-E102"


class SplTemplateError(SplError):
    """Raised when no template matches a formula, or a template is ill-formed."""

    default_code = "SPL-E103"


class SplValidationError(SplError):
    """Translation validation failed: a compiler pass changed semantics.

    Raised by the per-pass oracle (:mod:`repro.core.validate`) when the
    dense matrix denoted by the i-code after a pass differs from the
    matrix before it.  This is never the user's fault — it means a
    compiler pass miscompiled the program — so callers (the fuzzer, the
    CLI) must report it as a compiler defect, not reject the input.
    ``pass_name`` identifies the offending pass.
    """

    default_code = "SPL-E300"

    def __init__(self, message: str, line: int | None = None, *,
                 col: int | None = None, code: str | None = None,
                 formula_path: Sequence[str] | None = None,
                 pass_name: str | None = None,
                 max_error: float | None = None):
        super().__init__(message, line, col=col, code=code,
                         formula_path=formula_path)
        self.pass_name = pass_name
        self.max_error = max_error


class SplResourceError(SplError):
    """A configurable compile-time resource limit was exceeded.

    Raised by the resource-governance layer (:mod:`repro.core.limits`)
    when a compilation would blow an explicit bound — template-expansion
    depth, i-code statement budget, unroll explosion, twiddle-table
    bytes, or the wall-clock deadline — instead of hanging, OOMing or
    overflowing the Python stack.  ``limit_name``/``limit``/``actual``
    identify the bound numerically; the message names the offending
    construct.
    """

    default_code = "SPL-E200"

    def __init__(self, message: str, line: int | None = None, *,
                 col: int | None = None, code: str | None = None,
                 formula_path: Sequence[str] | None = None,
                 limit_name: str | None = None,
                 limit: float | int | None = None,
                 actual: float | int | None = None):
        super().__init__(message, line, col=col, code=code,
                         formula_path=formula_path)
        self.limit_name = limit_name
        self.limit = limit
        self.actual = actual
