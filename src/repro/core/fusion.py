"""Cross-stage loop fusion for compose chains.

The compose template lowers ``(compose A B)`` to two loop nests with a
full temp vector between them: ``B`` writes every element of ``$t``,
then ``A`` reads it back.  A k-stage plan therefore streams k-1
intermediate vectors through memory once per stage.  This module fuses
those stages at the i-code level, in two passes:

``forward_copy_stages``
    A stage that only *copies* (a stride permutation such as ``L`` or
    ``J``, or a scatter of constants) defines a map from each temp
    element to its source operand.  The pass enumerates that map, then
    rewrites every later read ``t(h)`` to the source directly,
    re-fitting an affine subscript (coefficients may be symbolic
    stride parameters) and verifying the fit exactly at every point of
    the read's iteration domain.  Once no reads remain, the stage and
    the temp vector are deleted outright.

``fuse_conformable_stages``
    Two adjacent perfect nests with identical loop-count vectors, where
    the producer writes exactly one temp and (after renaming the
    consumer's indices onto the producer's) every consumer read of that
    temp matches a producer store syntactically, merge into one nest.
    Values flow through fresh scalars; the original stores are kept for
    any later readers and dead-code elimination removes them when the
    temp dies.

Both passes are *verified* rather than trusted: legality is established
by exact enumeration of the index streams (charged against the compile
budget via :meth:`CompileBudget.charge_fusion`), and the surrounding
pipeline re-derives the program's denoted matrix after each pass when
``validate_passes`` is on (see :mod:`repro.core.validate`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Iterator, Mapping

from repro.core.icode import (
    Comment,
    FConst,
    FVar,
    IExpr,
    Instr,
    Loop,
    Op,
    Operand,
    Program,
    VEC_TEMP,
    VecRef,
    iter_ops,
)
from repro.core.limits import CompileBudget


@dataclass
class FusionStats:
    """What a fusion pass did, for pass records and plan stats."""

    reads_forwarded: int = 0
    stages_removed: int = 0
    loops_fused: int = 0
    temps_bypassed: list[str] = field(default_factory=list)

    def changed(self) -> bool:
        return bool(self.reads_forwarded or self.stages_removed
                    or self.loops_fused)


class _Bail(Exception):
    """Internal: the candidate is not (provably) legal; leave it alone."""


# ---------------------------------------------------------------------------
# Shared analysis helpers.
# ---------------------------------------------------------------------------


def _vec_writes(body: list[Instr]) -> set[str]:
    return {op.dest.vec for op in iter_ops(body)
            if isinstance(op.dest, VecRef)}


def _vec_reads(body: list[Instr]) -> set[str]:
    names: set[str] = set()
    for op in iter_ops(body):
        for operand in op.operands():
            if isinstance(operand, VecRef):
                names.add(operand.vec)
    return names


def _scalar_names(body: list[Instr]) -> set[str]:
    names: set[str] = set()
    for op in iter_ops(body):
        for item in (op.dest, *op.operands()):
            if isinstance(item, FVar):
                names.add(item.name)
    return names


def _loop_vars(body: list[Instr]) -> set[str]:
    names: set[str] = set()
    stack = list(body)
    while stack:
        inst = stack.pop()
        if isinstance(inst, Loop):
            names.add(inst.var)
            stack.extend(inst.body)
    return names


def _write_positions(program: Program) -> dict[str, set[int]]:
    """Vector name -> set of top-level instruction indexes writing it."""
    positions: dict[str, set[int]] = {}
    for idx, inst in enumerate(program.body):
        for name in _vec_writes([inst]):
            positions.setdefault(name, set()).add(idx)
    return positions


def _domain_points(
    order: list[str], counts: Mapping[str, int]
) -> Iterator[dict[str, int]]:
    """Every assignment of the given variables to their ranges."""
    ranges = [range(counts[name]) for name in order]
    for values in product(*ranges):
        yield dict(zip(order, values))


def _fresh_scalars(program: Program) -> Iterator[FVar]:
    used = _scalar_names(program.body)
    counter = 0
    while True:
        name = f"f{counter}"
        counter += 1
        if name not in used:
            used.add(name)
            yield FVar(name)


# ---------------------------------------------------------------------------
# Pass 1: forward the sources of pure copy stages into their readers.
# ---------------------------------------------------------------------------


def forward_copy_stages(program: Program,
                        budget: CompileBudget) -> FusionStats:
    """Eliminate stride-permutation stages by forwarding their sources.

    Works region by region: the top-level body first, then every loop
    body (so permutation stages nested inside tensor loops fuse too —
    there, the outer loop indices simply stay symbolic in the
    forwarded subscripts).
    """
    stats = FusionStats()
    changed = True
    while changed:
        changed = False
        for region, top_idx in _regions(program):
            for start, end, temp in _copy_stages(region, program):
                if _forward_one_stage(program, region, top_idx, start, end,
                                      temp, budget, stats):
                    changed = True
                    break  # indexes shifted; re-analyze
            if changed:
                break
    return stats


def _regions(program: Program) -> Iterator[tuple[list[Instr], int | None]]:
    """Every instruction-list scope: the top level, then loop bodies.

    Yields ``(body, top_idx)`` where ``top_idx`` is the index of the
    enclosing top-level instruction (None for the top level itself).
    """
    yield program.body, None
    for idx, inst in enumerate(program.body):
        stack = [inst]
        while stack:
            node = stack.pop()
            if isinstance(node, Loop):
                yield node.body, idx
                stack.extend(node.body)


def _copy_stages(body: list[Instr],
                 program: Program) -> list[tuple[int, int, str]]:
    """Maximal runs in ``body`` that only copy into a single temp.

    Returns ``(start, end_exclusive, temp_name)`` for each run where
    every contained ``Op`` is ``temp(...) = other_vec(...)`` or
    ``temp(...) = const``.  Legality (single writer, no earlier reads)
    is established by the caller.
    """
    stages: list[tuple[int, int, str]] = []
    idx = 0
    while idx < len(body):
        temp = _copy_target(body[idx])
        if temp is None or program.vectors.get(temp) is None \
                or program.vectors[temp].kind != VEC_TEMP:
            idx += 1
            continue
        end = idx + 1
        while end < len(body) and _copy_target(body[end]) == temp:
            end += 1
        stages.append((idx, end, temp))
        idx = end
    return stages


def _copy_target(inst: Instr) -> str | None:
    """The single temp this instruction copies into, or None."""
    if isinstance(inst, Comment):
        return None
    target: str | None = None
    for op in iter_ops([inst]):
        if op.op != "=" or not isinstance(op.dest, VecRef):
            return None
        if not isinstance(op.a, (VecRef, FConst)):
            return None
        if isinstance(op.a, VecRef) and op.a.vec == op.dest.vec:
            return None
        if target is None:
            target = op.dest.vec
        elif op.dest.vec != target:
            return None
    return target


def _count_vec_ops(body: list[Instr], vec: str) -> tuple[int, int]:
    """``(ops referencing vec, ops writing vec)`` within ``body``."""
    refs = writes = 0
    for op in iter_ops(body):
        items = (op.dest, *op.operands())
        if any(isinstance(i, VecRef) and i.vec == vec for i in items):
            refs += 1
        if isinstance(op.dest, VecRef) and op.dest.vec == vec:
            writes += 1
    return refs, writes


def _source_stable(program: Program, region: list[Instr],
                   top_idx: int | None, start: int, vec: str,
                   top_writes: dict[str, set[int]]) -> bool:
    """Whether ``vec`` is provably unchanged between stage and readers.

    True when every write of ``vec`` executes before the copy stage:
    at an earlier top-level position, or (for a nested region) earlier
    within the same region — so a read forwarded from the stage's
    source observes the same value the stage would have copied.
    """
    positions = top_writes.get(vec, set())
    if top_idx is None:
        return all(pos < start for pos in positions)
    if any(pos > top_idx for pos in positions):
        # Writes after the enclosing loop cannot affect reads inside
        # it, but a position beyond top_idx inside *this* sweep means
        # we cannot tell; stay conservative.
        return False
    if top_idx in positions:
        _, inside_top = _count_vec_ops([program.body[top_idx]], vec)
        _, before_stage = _count_vec_ops(region[:start], vec)
        return inside_top == before_stage
    return True


def _forward_one_stage(program: Program, region: list[Instr],
                       top_idx: int | None, start: int, end: int, temp: str,
                       budget: CompileBudget, stats: FusionStats) -> bool:
    stage = region[start:end]
    # The temp must live entirely in this region (same reference count
    # as the whole program) and be written only by this stage.
    refs_region, writes_region = _count_vec_ops(region, temp)
    refs_global, _ = _count_vec_ops(program.body, temp)
    if refs_global != refs_region:
        return False
    _, writes_stage = _count_vec_ops(stage, temp)
    if writes_region != writes_stage:
        return False
    # Reads of the temp before its defining stage would observe zeros
    # (or, nested in a loop, the previous iteration's values); bail.
    if temp in _vec_reads(region[:start]):
        return False
    try:
        table = _enumerate_copies(stage, temp, budget)
    except _Bail:
        return False
    top_writes = _write_positions(program)

    def stable(vec: str) -> bool:
        return _source_stable(program, region, top_idx, start, vec,
                              top_writes)

    forwarded = 0
    for idx in range(end, len(region)):
        forwarded += _rewrite_reads(region[idx], temp, table, stable, budget)
    if forwarded == 0:
        return False
    stats.reads_forwarded += forwarded
    if not any(temp in _vec_reads([inst]) for inst in program.body):
        del region[start:end]
        program.vectors.pop(temp, None)
        stats.stages_removed += 1
        stats.temps_bypassed.append(temp)
    return True


def _enumerate_copies(instrs: list[Instr], temp: str,
                      budget: CompileBudget) -> dict[int, Operand]:
    """Concrete dest index -> source operand (with loop vars bound)."""
    table: dict[int, Operand] = {}

    def walk(body: list[Instr], bindings: dict[str, int]) -> None:
        for inst in body:
            if isinstance(inst, Comment):
                continue
            if isinstance(inst, Loop):
                for k in range(inst.count):
                    bindings[inst.var] = k
                    walk(inst.body, bindings)
                del bindings[inst.var]
                continue
            budget.charge_fusion(1, f"copy stage for ${temp}")
            dest_index = inst.dest.index.subst(bindings).as_const()
            if dest_index is None:
                raise _Bail
            source = inst.a
            if isinstance(source, VecRef):
                source = VecRef(source.vec, source.index.subst(bindings))
            # Later stores win, matching execution order.
            table[dest_index] = source

    walk(instrs, {})
    return table


def _rewrite_reads(inst: Instr, temp: str, table: dict[int, Operand],
                   stable, budget: CompileBudget) -> int:
    """Rewrite reads of ``temp`` within one instruction (recursively)."""
    forwarded = 0
    cache: dict[tuple, Operand | None] = {}

    def fit(index: IExpr, counts: dict[str, int]) -> Operand | None:
        key = (index, tuple(sorted(counts.items())))
        if key not in cache:
            cache[key] = _fit_source(index, table, counts, stable, temp,
                                     budget)
        return cache[key]

    def visit(body: list[Instr], counts: dict[str, int]) -> None:
        nonlocal forwarded
        for item in body:
            if isinstance(item, Loop):
                counts[item.var] = item.count
                visit(item.body, counts)
                del counts[item.var]
            elif isinstance(item, Op):
                if isinstance(item.a, VecRef) and item.a.vec == temp:
                    replacement = fit(item.a.index, counts)
                    if replacement is not None:
                        item.a = replacement
                        forwarded += 1
                if isinstance(item.b, VecRef) and item.b.vec == temp:
                    replacement = fit(item.b.index, counts)
                    if replacement is not None:
                        item.b = replacement
                        forwarded += 1

    visit([inst], {})
    return forwarded


def _fit_source(index: IExpr, table: dict[int, Operand],
                counts: dict[str, int], stable, temp: str,
                budget: CompileBudget) -> Operand | None:
    """The forwarded operand for a read ``temp(index)``, or None.

    Enumerates the read's iteration domain, looks up each point's
    source, and (for vector sources) interpolates an affine subscript
    which is then *verified exactly* at every point — soundness never
    rests on the interpolation.
    """
    variables = sorted(index.free_vars())
    if any(name not in counts for name in variables):
        return None  # subscript depends on something besides loop indices
    points = list(_domain_points(variables, counts))
    budget.charge_fusion(len(points), f"forwarding reads of ${temp}")
    sources: list[Operand] = []
    for point in points:
        element = index.subst(point).as_const()
        if element is None or element not in table:
            return None
        sources.append(table[element])
    if all(isinstance(s, FConst) for s in sources):
        first = sources[0]
        if all(s == first for s in sources):
            return first
        return None
    if not all(isinstance(s, VecRef) for s in sources):
        return None
    vec = sources[0].vec
    if any(s.vec != vec for s in sources):
        return None
    # The source vector must be unchanged between the copy stage and
    # this read: every write of it provably precedes the stage.
    if not stable(vec):
        return None
    origin = sources[0].index  # points[0] is the all-zeros assignment
    fitted = origin
    for name in variables:
        if counts[name] < 2:
            continue
        unit = {v: (1 if v == name else 0) for v in variables}
        position = points.index(unit)
        delta = sources[position].index - origin
        fitted = fitted + delta * IExpr.var(name)
    for point, source in zip(points, sources):
        if fitted.subst(point) != source.index:
            return None
    return VecRef(vec, fitted)


# ---------------------------------------------------------------------------
# Pass 2: fuse adjacent conformable nests, forwarding through scalars.
# ---------------------------------------------------------------------------


def fuse_conformable_stages(program: Program,
                            budget: CompileBudget) -> FusionStats:
    """Merge adjacent identically-shaped nests linked by one temp."""
    stats = FusionStats()
    fresh = _fresh_scalars(program)
    changed = True
    while changed:
        changed = False
        body = program.body
        for idx in range(len(body)):
            nxt = idx + 1
            while nxt < len(body) and isinstance(body[nxt], Comment):
                nxt += 1
            if nxt >= len(body):
                break
            producer, consumer = body[idx], body[nxt]
            if not (isinstance(producer, Loop) and isinstance(consumer, Loop)):
                continue
            fused = _try_fuse(program, producer, consumer, budget, fresh,
                              stats)
            if fused is not None:
                body[idx] = fused
                del body[nxt]
                changed = True
                break
    return stats


def _perfect_nest(loop: Loop) -> tuple[list[str], list[int],
                                       list[Instr]] | None:
    """``(vars, counts, innermost_body)`` for a perfectly nested loop."""
    variables, counts = [], []
    current: Instr = loop
    while isinstance(current, Loop):
        variables.append(current.var)
        counts.append(current.count)
        inner = [i for i in current.body if not isinstance(i, Comment)]
        if len(inner) == 1 and isinstance(inner[0], Loop):
            current = inner[0]
            continue
        if any(isinstance(i, Loop) for i in inner):
            return None
        return variables, counts, inner
    return None


def _try_fuse(program: Program, producer: Loop, consumer: Loop,
              budget: CompileBudget, fresh: Iterator[FVar],
              stats: FusionStats) -> Loop | None:
    nest_p = _perfect_nest(producer)
    nest_c = _perfect_nest(consumer)
    if nest_p is None or nest_c is None:
        return None
    vars_p, counts_p, body_p = nest_p
    vars_c, counts_c, body_c = nest_c
    if counts_p != counts_c:
        return None
    # The producer must write exactly one temp vector.
    dests = {op.dest.vec for op in iter_ops(body_p)
             if isinstance(op.dest, VecRef)}
    if len(dests) != 1:
        return None
    temp = dests.pop()
    info = program.vectors.get(temp)
    if info is None or info.kind != VEC_TEMP:
        return None
    if temp in _vec_reads(body_p):
        return None
    # ... and only there, in the whole program.
    writers = _write_positions(program)
    producer_idx = next(i for i, inst in enumerate(program.body)
                        if inst is producer)
    if writers.get(temp, set()) != {producer_idx}:
        return None
    # Rename the consumer's loop indices onto the producer's.
    if set(vars_p) & (_loop_vars([consumer]) | _loop_vars(body_c)
                      | set(vars_c)) and vars_p != vars_c:
        return None
    renaming = {old: IExpr.var(new) for old, new in zip(vars_c, vars_p)}
    # Alias freedom at vector granularity: the consumer must not write
    # the temp, anything the producer reads, or the temp's twin reads.
    reads_p = _vec_reads(body_p)
    writes_c = _vec_writes(body_c)
    if writes_c & (reads_p | {temp}):
        return None
    if _scalar_names(body_p) & _scalar_names(body_c):
        return None
    store_exprs = {op.dest.index for op in iter_ops(body_p)
                   if isinstance(op.dest, VecRef)}
    # Every consumer read of the temp must be a producer store, verbatim.
    consumer_reads: set[IExpr] = set()
    for op in iter_ops(body_c):
        for operand in op.operands():
            if isinstance(operand, VecRef) and operand.vec == temp:
                renamed = operand.index.subst(renaming)
                if renamed not in store_exprs:
                    return None
                consumer_reads.add(renamed)
    if not consumer_reads:
        return None
    # The store map must be injective across the whole iteration space,
    # otherwise a forwarded scalar could expose a value from the wrong
    # iteration.  Verified by exact enumeration.
    seen: set[int] = set()
    counts = dict(zip(vars_p, counts_p))
    for point in _domain_points(vars_p, counts):
        for expr in store_exprs:
            budget.charge_fusion(1, f"fusing stages through ${temp}")
            element = expr.subst(point).as_const()
            if element is None or element in seen:
                return None
            seen.add(element)
    # Legal: build the fused innermost body.
    forwards: dict[IExpr, FVar] = {}
    fused_body: list[Instr] = []
    for inst in body_p:
        if isinstance(inst, Op) and isinstance(inst.dest, VecRef) \
                and inst.dest.index in consumer_reads:
            scalar = forwards.setdefault(inst.dest.index, next(fresh))
            fused_body.append(Op(inst.op, scalar, inst.a, inst.b))
            fused_body.append(Op("=", inst.dest, scalar))
        else:
            fused_body.append(inst)

    def forward(operand: Operand) -> Operand:
        if isinstance(operand, VecRef):
            renamed = operand.index.subst(renaming)
            if operand.vec == temp:
                return forwards[renamed]
            return VecRef(operand.vec, renamed)
        return operand

    for inst in body_c:
        if isinstance(inst, Comment):
            fused_body.append(inst)
            continue
        dest = forward(inst.dest)
        a = forward(inst.a)
        b = forward(inst.b) if inst.b is not None else None
        fused_body.append(Op(inst.op, dest, a, b))
    nest: list[Instr] = fused_body
    for var, count in zip(reversed(vars_p), reversed(counts_p)):
        nest = [Loop(var, count, nest)]
    stats.loops_fused += 1
    stats.temps_bypassed.append(temp)
    return nest[0]
