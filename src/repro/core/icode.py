"""Intermediate code (i-code) for the SPL compiler.

Section 3.2 of the paper: "I-code instructions are Fortran-style do-loop
headers, end-do statements, or four-tuples containing an operator and up
to three operands."

Representation choices:

* Integer expressions (vector subscripts, intrinsic arguments) are kept
  in a canonical multivariate-polynomial form (:class:`IExpr`) over loop
  indices and symbolic stride/offset parameters.  This makes constant
  folding, substitution during loop unrolling, and affine analysis for
  the optimizer all trivial.
* The paper's integer scalars (``$r0 = $i0 * $i1``) are substituted away
  during template expansion — they are pure functions of loop indices,
  so their uses are replaced by the defining polynomial.  No semantic
  difference is observable because i-code has no control flow other
  than counted loops.
* Floating point / complex scalars (``$f0``) are :class:`FVar` operands.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping

from repro.core.errors import SplSemanticError
from repro.core.scalars import Number

# ---------------------------------------------------------------------------
# Integer polynomial expressions.
# ---------------------------------------------------------------------------

Monomial = tuple[str, ...]  # sorted tuple of variable names (with repetition)
Terms = tuple[tuple[Monomial, int], ...]


@dataclass(frozen=True)
class IExpr:
    """An integer-valued polynomial over named integer variables."""

    terms: Terms = ()

    # -- construction ------------------------------------------------------

    @staticmethod
    def const(value: int) -> "IExpr":
        if value == 0:
            return IExpr(())
        return IExpr((((), int(value)),))

    @staticmethod
    def var(name: str) -> "IExpr":
        return IExpr((((name,), 1),))

    @staticmethod
    def _from_dict(terms: Mapping[Monomial, int]) -> "IExpr":
        cleaned = tuple(
            sorted((mono, coeff) for mono, coeff in terms.items() if coeff)
        )
        return IExpr(cleaned)

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other: "IExpr | int") -> "IExpr":
        other = _coerce(other)
        combined: dict[Monomial, int] = dict(self.terms)
        for mono, coeff in other.terms:
            combined[mono] = combined.get(mono, 0) + coeff
        return IExpr._from_dict(combined)

    def __sub__(self, other: "IExpr | int") -> "IExpr":
        return self + (-_coerce(other))

    def __neg__(self) -> "IExpr":
        return IExpr(tuple((mono, -coeff) for mono, coeff in self.terms))

    def __mul__(self, other: "IExpr | int") -> "IExpr":
        other = _coerce(other)
        product: dict[Monomial, int] = {}
        for mono_a, coeff_a in self.terms:
            for mono_b, coeff_b in other.terms:
                mono = tuple(sorted(mono_a + mono_b))
                product[mono] = product.get(mono, 0) + coeff_a * coeff_b
        return IExpr._from_dict(product)

    __radd__ = __add__
    __rmul__ = __mul__

    def __rsub__(self, other: "IExpr | int") -> "IExpr":
        return _coerce(other) - self

    # -- queries -------------------------------------------------------------

    def is_const(self) -> bool:
        return all(mono == () for mono, _ in self.terms)

    def as_const(self) -> int | None:
        if not self.terms:
            return 0
        if self.is_const():
            return self.terms[0][1]
        return None

    def const_part(self) -> int:
        for mono, coeff in self.terms:
            if mono == ():
                return coeff
        return 0

    def free_vars(self) -> frozenset[str]:
        names: set[str] = set()
        for mono, _ in self.terms:
            names.update(mono)
        return frozenset(names)

    def as_affine(self) -> tuple[dict[str, int], int] | None:
        """Return ``(coeffs, const)`` if the polynomial is affine, else None."""
        coeffs: dict[str, int] = {}
        const = 0
        for mono, coeff in self.terms:
            if mono == ():
                const = coeff
            elif len(mono) == 1:
                coeffs[mono[0]] = coeffs.get(mono[0], 0) + coeff
            else:
                return None
        return coeffs, const

    def subst(self, bindings: Mapping[str, "IExpr | int"]) -> "IExpr":
        """Substitute variables (missing names are left untouched)."""
        result = IExpr.const(0)
        for mono, coeff in self.terms:
            term = IExpr.const(coeff)
            for name in mono:
                replacement = bindings.get(name)
                if replacement is None:
                    term = term * IExpr.var(name)
                else:
                    term = term * _coerce(replacement)
            result = result + term
        return result

    def interval(self, ranges: Mapping[str, tuple[int, int]]) -> tuple[int, int]:
        """Min/max value given inclusive variable ranges (all bounds >= 0)."""
        lo_total, hi_total = 0, 0
        for mono, coeff in self.terms:
            lo_prod, hi_prod = 1, 1
            for name in mono:
                if name not in ranges:
                    raise SplSemanticError(
                        f"cannot bound index expression: unknown range for "
                        f"variable {name!r}"
                    )
                var_lo, var_hi = ranges[name]
                if var_lo < 0:
                    raise SplSemanticError(
                        f"interval analysis requires non-negative {name!r}"
                    )
                lo_prod *= var_lo
                hi_prod *= var_hi
            term_lo, term_hi = coeff * lo_prod, coeff * hi_prod
            if term_lo > term_hi:
                term_lo, term_hi = term_hi, term_lo
            lo_total += term_lo
            hi_total += term_hi
        return lo_total, hi_total

    def __str__(self) -> str:
        if not self.terms:
            return "0"
        parts: list[str] = []
        # Render variable terms first and the constant last ("4*i0 + 1"),
        # matching the paper's listings.
        ordered = sorted(self.terms, key=lambda item: (item[0] == (), item[0]))
        for mono, coeff in ordered:
            names = "*".join(mono)
            if mono == ():
                text = str(coeff)
            elif coeff == 1:
                text = names
            elif coeff == -1:
                text = f"-{names}"
            else:
                text = f"{coeff}*{names}"
            parts.append(text)
        rendered = parts[0]
        for part in parts[1:]:
            rendered += f" - {part[1:]}" if part.startswith("-") else f" + {part}"
        return rendered


def _coerce(value: "IExpr | int") -> IExpr:
    if isinstance(value, IExpr):
        return value
    return IExpr.const(value)


ZERO = IExpr.const(0)
ONE = IExpr.const(1)


# ---------------------------------------------------------------------------
# Operands.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FVar:
    """A floating-point (or complex, before type transformation) scalar."""

    name: str

    def __str__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class FConst:
    """A numeric constant operand."""

    value: Number

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class VecRef:
    """A reference ``vec[index]`` with a polynomial subscript."""

    vec: str
    index: IExpr

    def __str__(self) -> str:
        return f"${self.vec}({self.index})"


@dataclass(frozen=True)
class Intrinsic:
    """A call to a parameterized scalar function such as ``W(n, k)``.

    Arguments are integer expressions; intrinsic invocations only
    survive until the intrinsic-evaluation pass (Section 3.3.2), which
    replaces them with constants or table references.
    """

    name: str
    args: tuple[IExpr, ...]

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.name}({inner})"


Operand = FVar | FConst | VecRef | Intrinsic
Location = FVar | VecRef


# ---------------------------------------------------------------------------
# Instructions.
# ---------------------------------------------------------------------------

BINARY_OPS = ("+", "-", "*", "/")
UNARY_OPS = ("=", "neg")


@dataclass
class Op:
    """A four-tuple instruction: ``dest = a (op) b`` or ``dest = (op) a``."""

    op: str
    dest: Location
    a: Operand
    b: Operand | None = None

    def __post_init__(self) -> None:
        if self.op in BINARY_OPS:
            if self.b is None:
                raise SplSemanticError(f"operator {self.op!r} needs two operands")
        elif self.op in UNARY_OPS:
            if self.b is not None:
                raise SplSemanticError(f"operator {self.op!r} takes one operand")
        else:
            raise SplSemanticError(f"unknown i-code operator {self.op!r}")

    def operands(self) -> tuple[Operand, ...]:
        return (self.a,) if self.b is None else (self.a, self.b)

    def __str__(self) -> str:
        if self.op == "=":
            return f"{self.dest} = {self.a}"
        if self.op == "neg":
            return f"{self.dest} = -{self.a}"
        return f"{self.dest} = {self.a} {self.op} {self.b}"


@dataclass
class Loop:
    """A counted loop ``do var = 0, count-1`` over ``body``."""

    var: str
    count: int
    body: list["Instr"]
    unroll: bool = False

    def __str__(self) -> str:
        inner = "\n".join(f"  {line}" for inst in self.body
                          for line in str(inst).split("\n"))
        return f"do ${self.var} = 0, {self.count - 1}\n{inner}\nend"


@dataclass
class Comment:
    """A comment carried through to the generated code for readability."""

    text: str

    def __str__(self) -> str:
        return f"; {self.text}"


Instr = Op | Loop | Comment


# ---------------------------------------------------------------------------
# The program container produced by code generation.
# ---------------------------------------------------------------------------

VEC_INPUT = "in"
VEC_OUTPUT = "out"
VEC_TEMP = "temp"


@dataclass
class VecInfo:
    """Metadata for one vector (array) used by a program.

    ``dtype`` is the element type; the empty string means "the
    program's element type" (a real double, or a complex double before
    type transformation).  Scratch-reuse passes must never merge
    vectors whose dtypes differ.
    """

    name: str
    size: int
    kind: str  # VEC_INPUT, VEC_OUTPUT or VEC_TEMP
    dtype: str = ""


@dataclass
class Program:
    """A complete i-code program for one SPL formula.

    ``in_size``/``out_size`` are logical element counts; when
    ``datatype`` is complex and the program has been lowered to real
    arithmetic, each logical element occupies two array slots and
    ``element_width`` is 2.
    """

    name: str
    in_size: int
    out_size: int
    datatype: str  # "real" or "complex"
    body: list[Instr] = field(default_factory=list)
    vectors: dict[str, VecInfo] = field(default_factory=dict)
    tables: dict[str, tuple[Number, ...]] = field(default_factory=dict)
    element_width: int = 1
    # True when the program exposes symbolic istride/ostride/iofs/oofs
    # parameters (codelet-style entry point, Section 3.5).
    strided: bool = False

    def input_name(self) -> str:
        return next(v.name for v in self.vectors.values()
                    if v.kind == VEC_INPUT)

    def output_name(self) -> str:
        return next(v.name for v in self.vectors.values()
                    if v.kind == VEC_OUTPUT)

    def temp_vectors(self) -> list[VecInfo]:
        return [v for v in self.vectors.values() if v.kind == VEC_TEMP]

    def scalar_names(self) -> list[str]:
        names: dict[str, None] = {}
        for op in iter_ops(self.body):
            for item in (op.dest, *op.operands()):
                if isinstance(item, FVar):
                    names.setdefault(item.name)
        return list(names)

    def is_straight_line(self) -> bool:
        """True when no loops remain — the codelet form produced by
        full unrolling, which the SIMD batch driver and the in-process
        JIT both key on."""
        return not any(isinstance(inst, Loop) for inst in self.body)

    def flop_count(self) -> int:
        """Arithmetic operations executed per call (loops multiplied out)."""
        return _count_flops(self.body, 1)

    def temp_elements(self) -> int:
        return sum(v.size for v in self.temp_vectors())

    def element_bytes(self) -> int:
        """Bytes per physical array slot (16 for unlowered complex)."""
        if self.datatype == "complex" and self.element_width == 1:
            return 16
        return 8

    def scratch_bytes(self) -> int:
        """Total temp-array storage the program allocates, in bytes."""
        return self.temp_elements() * self.element_bytes()

    def table_elements(self) -> int:
        return sum(len(t) for t in self.tables.values())

    def __str__(self) -> str:
        lines = [f"; program {self.name}: in={self.in_size} "
                 f"out={self.out_size} datatype={self.datatype}"]
        lines.extend(str(inst) for inst in self.body)
        return "\n".join(lines)


def iter_ops(body: Iterable[Instr]) -> Iterator[Op]:
    """Yield every :class:`Op` in ``body``, descending into loops."""
    for inst in body:
        if isinstance(inst, Op):
            yield inst
        elif isinstance(inst, Loop):
            yield from iter_ops(inst.body)


def iter_instrs(body: Iterable[Instr]) -> Iterator[Instr]:
    """Yield every instruction, descending into loops (pre-order)."""
    for inst in body:
        yield inst
        if isinstance(inst, Loop):
            yield from iter_instrs(inst.body)


def count_statements(body: Iterable[Instr]) -> int:
    """Static instruction count (loops count as one plus their body)."""
    total = 0
    for inst in body:
        if isinstance(inst, Op):
            total += 1
        elif isinstance(inst, Loop):
            total += 1 + count_statements(inst.body)
    return total


def count_dynamic_statements(body: Iterable[Instr]) -> int:
    """Executed instruction count (loop bodies multiplied by trip
    count) — the cost one interpreter run over the program pays."""
    total = 0
    for inst in body:
        if isinstance(inst, Op):
            total += 1
        elif isinstance(inst, Loop):
            total += inst.count * count_dynamic_statements(inst.body)
    return total


def _count_flops(body: Iterable[Instr], multiplier: int) -> int:
    total = 0
    for inst in body:
        if isinstance(inst, Op):
            if inst.op in ("+", "-", "*", "/", "neg"):
                total += multiplier
        elif isinstance(inst, Loop):
            total += _count_flops(inst.body, multiplier * inst.count)
    return total


def map_operands(body: list[Instr],
                 fn: Callable[[Operand], Operand]) -> list[Instr]:
    """Rebuild ``body`` applying ``fn`` to every operand and destination."""
    result: list[Instr] = []
    for inst in body:
        if isinstance(inst, Op):
            dest = fn(inst.dest)
            if not isinstance(dest, (FVar, VecRef)):
                raise SplSemanticError(
                    f"operand mapping produced invalid destination {dest}"
                )
            a = fn(inst.a)
            b = fn(inst.b) if inst.b is not None else None
            result.append(Op(inst.op, dest, a, b))
        elif isinstance(inst, Loop):
            result.append(
                Loop(inst.var, inst.count, map_operands(inst.body, fn),
                     unroll=inst.unroll)
            )
        else:
            result.append(inst)
    return result


def subst_indices(body: list[Instr],
                  bindings: Mapping[str, IExpr | int]) -> list[Instr]:
    """Substitute integer variables in all subscripts/intrinsic args."""

    def rewrite(operand: Operand) -> Operand:
        if isinstance(operand, VecRef):
            return VecRef(operand.vec, operand.index.subst(bindings))
        if isinstance(operand, Intrinsic):
            return Intrinsic(
                operand.name,
                tuple(arg.subst(bindings) for arg in operand.args),
            )
        return operand

    return map_operands(body, rewrite)


def clone_body(body: list[Instr]) -> list[Instr]:
    """Deep-copy a list of instructions (IExpr/operands are immutable)."""
    result: list[Instr] = []
    for inst in body:
        if isinstance(inst, Op):
            result.append(Op(inst.op, inst.dest, inst.a, inst.b))
        elif isinstance(inst, Loop):
            result.append(Loop(inst.var, inst.count, clone_body(inst.body),
                               unroll=inst.unroll))
        else:
            result.append(Comment(inst.text))
    return result


def rename_program(program: Program, name: str) -> Program:
    return dataclasses.replace(program, name=name)
