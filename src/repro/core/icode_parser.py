"""Parsers for patterns, conditions and the i-code mini-language.

These are the pieces of the SPL grammar that only occur inside
``(template pattern condition i-code)`` forms.  The program-level
parser (:mod:`repro.core.parser`) delegates to this module.

The i-code mini-language is line-oriented (one statement per line):

* ``do $i0 = lo, hi`` ... ``end`` — Fortran-style inclusive loop;
* ``$r0 = <int expr>`` — integer scalar definition;
* ``$f0 = <operand> [op <operand>]`` / ``$out(e) = ...`` — four-tuples;
* ``A_($in, $t0, in_ofs, out_ofs, in_stride, out_stride)`` — recursive
  expansion of a bound formula pattern variable.

Float operands are scalar variables, vector elements, intrinsic calls
(``W(n_, $r0)``), or scalar constants (numbers, ``pi``, ``sqrt(2)``,
complex pairs ``(0.7, -0.7)``).
"""

from __future__ import annotations

from repro.core import lexer, scalars
from repro.core.errors import SplSyntaxError
from repro.core.lexer import Token, TokenStream
from repro.core.pattern import (
    PatFormula,
    PatInt,
    PatOp,
    PatParam,
    Pattern,
    is_formula_var,
    is_int_var,
)
from repro.core.templates import (
    CondAnd,
    CondCompare,
    CondNot,
    CondOr,
    Condition,
    TAssign,
    TBinop,
    TCall,
    TConst,
    TExpr,
    TIndexVar,
    TIntrinsic,
    TLoop,
    TNeg,
    TNumber,
    TOperand,
    TPatVar,
    TProperty,
    TRAssign,
    TScalar,
    TStmt,
    TVecElem,
)

_PATTERN_OPS = ("compose", "tensor", "direct-sum")
_INTRINSIC_NAMES = ("w", "wh", "dc2", "dc4")
_SCALAR_FUNCS = ("sqrt", "cos", "sin", "tan", "exp", "log")
_SCALAR_CONSTS = ("pi", "e")
_RESERVED_TEXPR = ("in_size", "out_size", "in_stride", "out_stride",
                   "in_offset", "out_offset")


# ---------------------------------------------------------------------------
# Patterns.
# ---------------------------------------------------------------------------


def parse_pattern(stream: TokenStream) -> Pattern:
    """Parse a template pattern such as ``(compose (I n_) B_)``."""
    token = stream.next(skip_newlines=True)
    if token.kind == lexer.NAME:
        if is_formula_var(token.value):
            return PatFormula(token.value)
        raise SplSyntaxError(
            f"expected a pattern, found bare name {token.value!r}",
            line=token.line,
        )
    if token.kind != lexer.LPAREN:
        raise SplSyntaxError(
            f"expected a pattern, found {token.value!r}", line=token.line
        )
    head = stream.expect(lexer.NAME, skip_newlines=True)
    name = head.value
    if name.lower() in _PATTERN_OPS or _is_direct_sum(name, stream):
        op = _canonical_op(name, stream)
        children: list[Pattern] = []
        while stream.peek(skip_newlines=True).kind != lexer.RPAREN:
            children.append(parse_pattern(stream))
        stream.expect(lexer.RPAREN, skip_newlines=True)
        if len(children) < 2:
            raise SplSyntaxError(
                f"pattern ({op} ...) needs at least two children",
                line=head.line,
            )
        result: Pattern = children[-1]
        for child in reversed(children[:-1]):
            result = PatOp(op, (child, result))
        return result
    # A parameterized-matrix pattern: (NAME arg ...).
    args: list[int | PatInt] = []
    while True:
        token = stream.peek(skip_newlines=True)
        if token.kind == lexer.RPAREN:
            stream.next(skip_newlines=True)
            break
        if token.kind == lexer.NUMBER:
            stream.next(skip_newlines=True)
            if any(c in token.value for c in ".eE"):
                raise SplSyntaxError(
                    "pattern parameters must be integers", line=token.line
                )
            args.append(int(token.value))
        elif token.kind == lexer.NAME and is_int_var(token.value):
            stream.next(skip_newlines=True)
            args.append(PatInt(token.value))
        else:
            raise SplSyntaxError(
                f"invalid pattern parameter {token.value!r}", line=token.line
            )
    return PatParam(name.upper(), tuple(args))


def _is_direct_sum(name: str, stream: TokenStream) -> bool:
    # "direct-sum" lexes as NAME(direct) OP(-) NAME(sum); peek for that.
    if name.lower() != "direct":
        return False
    return (
        stream.peek().kind == lexer.OP
        and stream.peek().value == "-"
    )


def _canonical_op(name: str, stream: TokenStream) -> str:
    if name.lower() in ("compose", "tensor"):
        return name.lower()
    stream.expect(lexer.OP, "-")
    tail = stream.expect(lexer.NAME)
    if tail.value.lower() != "sum":
        raise SplSyntaxError(
            f"unknown operation direct-{tail.value}", line=tail.line
        )
    return "direct-sum"


# ---------------------------------------------------------------------------
# Template integer expressions.
# ---------------------------------------------------------------------------


def parse_texpr(stream: TokenStream) -> TExpr:
    return _texpr_sum(stream)


def _texpr_sum(stream: TokenStream) -> TExpr:
    value = _texpr_term(stream)
    while True:
        token = stream.peek()
        if token.kind == lexer.OP and token.value in "+-":
            stream.next()
            rhs = _texpr_term(stream)
            value = TBinop(token.value, value, rhs)
        else:
            return value


def _texpr_term(stream: TokenStream) -> TExpr:
    value = _texpr_factor(stream)
    while True:
        token = stream.peek()
        if token.kind == lexer.OP and token.value in "*/":
            stream.next()
            rhs = _texpr_factor(stream)
            value = TBinop(token.value, value, rhs)
        else:
            return value


def _texpr_factor(stream: TokenStream) -> TExpr:
    token = stream.peek()
    if token.kind == lexer.OP and token.value in "+-":
        stream.next()
        inner = _texpr_factor(stream)
        return TNeg(inner) if token.value == "-" else inner
    return _texpr_primary(stream)


def _texpr_primary(stream: TokenStream) -> TExpr:
    token = stream.next()
    if token.kind == lexer.NUMBER:
        if any(c in token.value for c in ".eE"):
            raise SplSyntaxError(
                "integer expression contains a float literal", line=token.line
            )
        return TConst(int(token.value))
    if token.kind == lexer.DOLLAR:
        name = token.value[1:]
        if name in _RESERVED_TEXPR or name[0] in "ir":
            return TIndexVar(name)
        raise SplSyntaxError(
            f"{token.value} is not an integer variable", line=token.line
        )
    if token.kind == lexer.NAME:
        if is_int_var(token.value):
            return TPatVar(token.value)
        if is_formula_var(token.value):
            stream.expect(lexer.DOT)
            attr = stream.expect(lexer.NAME)
            if attr.value not in ("in_size", "out_size"):
                raise SplSyntaxError(
                    f"unknown property .{attr.value}", line=attr.line
                )
            return TProperty(token.value, attr.value)
        raise SplSyntaxError(
            f"unexpected name {token.value!r} in integer expression",
            line=token.line,
        )
    if token.kind == lexer.LPAREN:
        inner = _texpr_sum(stream)
        stream.expect(lexer.RPAREN)
        return inner
    raise SplSyntaxError(
        f"expected an integer expression, found {token.value!r}",
        line=token.line,
    )


# ---------------------------------------------------------------------------
# Conditions.
# ---------------------------------------------------------------------------


def parse_condition(stream: TokenStream) -> Condition:
    """Parse a bracketed condition ``[ m_ == 2*n_ && n_ > 0 ]``."""
    stream.expect(lexer.LBRACKET, skip_newlines=True)
    cond = _cond_or(stream)
    stream.expect(lexer.RBRACKET, skip_newlines=True)
    return cond


def _cond_or(stream: TokenStream) -> Condition:
    value = _cond_and(stream)
    while stream.match(lexer.OP, "||", skip_newlines=True):
        value = CondOr(value, _cond_and(stream))
    return value


def _cond_and(stream: TokenStream) -> Condition:
    value = _cond_not(stream)
    while stream.match(lexer.OP, "&&", skip_newlines=True):
        value = CondAnd(value, _cond_not(stream))
    return value


def _cond_not(stream: TokenStream) -> Condition:
    if stream.match(lexer.OP, "!", skip_newlines=True):
        return CondNot(_cond_not(stream))
    saved = stream.position
    if stream.match(lexer.LPAREN, skip_newlines=True):
        # Could be a parenthesized condition or a parenthesized integer
        # expression starting a comparison; try condition first.
        try:
            inner = _cond_or(stream)
            stream.expect(lexer.RPAREN, skip_newlines=True)
            return inner
        except SplSyntaxError:
            stream.seek(saved)
    return _cond_compare(stream)


def _cond_compare(stream: TokenStream) -> Condition:
    lhs = parse_texpr(stream)
    token = stream.next()
    if token.kind != lexer.OP or token.value not in (
        "==", "!=", "<", "<=", ">", ">=",
    ):
        raise SplSyntaxError(
            f"expected a comparison operator, found {token.value!r}",
            line=token.line,
        )
    rhs = parse_texpr(stream)
    return CondCompare(token.value, lhs, rhs)


# ---------------------------------------------------------------------------
# I-code statement sequences.
# ---------------------------------------------------------------------------


def parse_icode_block(stream: TokenStream) -> list[TStmt]:
    """Parse a parenthesized i-code block ``( stmt \\n stmt ... )``."""
    stream.expect(lexer.LPAREN, skip_newlines=True)
    stack: list[list[TStmt]] = [[]]
    loops: list[TLoop] = []
    while True:
        token = stream.peek(skip_newlines=True)
        if token.kind == lexer.RPAREN:
            stream.next(skip_newlines=True)
            break
        if token.kind == lexer.EOF:
            raise SplSyntaxError("unterminated i-code block", line=token.line)
        stmt = _parse_statement(stream)
        if stmt is None:  # "end"
            if not loops:
                raise SplSyntaxError("'end' without matching 'do'",
                                     line=token.line)
            loops.pop()
            stack.pop()
            continue
        stack[-1].append(stmt)
        if isinstance(stmt, TLoop):
            loops.append(stmt)
            stack.append(stmt.body)
    if loops:
        raise SplSyntaxError("unterminated 'do' loop in i-code")
    return stack[0]


def _parse_statement(stream: TokenStream) -> TStmt | None:
    token = stream.peek(skip_newlines=True)
    if token.kind == lexer.NAME and token.value.lower() == "do":
        return _parse_do(stream)
    if token.kind == lexer.NAME and token.value.lower() == "end":
        stream.next(skip_newlines=True)
        _expect_end_of_statement(stream)
        # The paper also writes "end do"; accept an optional trailing 'do'.
        return None
    if token.kind == lexer.NAME and is_formula_var(token.value):
        return _parse_call(stream)
    if token.kind == lexer.DOLLAR:
        return _parse_assignment(stream)
    raise SplSyntaxError(
        f"unexpected {token.value!r} at start of i-code statement",
        line=token.line,
    )


def _parse_do(stream: TokenStream) -> TLoop:
    stream.next(skip_newlines=True)  # 'do'
    var = stream.expect(lexer.DOLLAR)
    name = var.value[1:]
    if not name.startswith("i"):
        raise SplSyntaxError(
            f"loop variable must be an $i variable, got {var.value}",
            line=var.line,
        )
    stream.expect(lexer.OP, "=")
    lo = parse_texpr(stream)
    stream.match(lexer.COMMA)
    hi = parse_texpr(stream)
    _expect_end_of_statement(stream)
    return TLoop(var=name, lo=lo, hi=hi)


def _parse_call(stream: TokenStream) -> TCall:
    head = stream.next(skip_newlines=True)
    stream.expect(lexer.LPAREN)
    in_vec = _parse_vec_name(stream)
    stream.match(lexer.COMMA)
    out_vec = _parse_vec_name(stream)
    exprs: list[TExpr] = []
    for _ in range(4):
        stream.match(lexer.COMMA)
        exprs.append(parse_texpr(stream))
    stream.expect(lexer.RPAREN)
    _expect_end_of_statement(stream)
    return TCall(
        var=head.value,
        in_vec=in_vec,
        out_vec=out_vec,
        in_offset=exprs[0],
        out_offset=exprs[1],
        in_stride=exprs[2],
        out_stride=exprs[3],
    )


def _parse_vec_name(stream: TokenStream) -> str:
    token = stream.expect(lexer.DOLLAR)
    name = token.value[1:]
    if name in ("in", "out") or name.startswith("t"):
        return name
    raise SplSyntaxError(
        f"expected a vector ($in, $out or $tN), found {token.value}",
        line=token.line,
    )


def _parse_assignment(stream: TokenStream) -> TStmt:
    token = stream.next(skip_newlines=True)
    name = token.value[1:]
    if name.startswith("r"):
        stream.expect(lexer.OP, "=")
        value = parse_texpr(stream)
        _expect_end_of_statement(stream)
        return TRAssign(name=name, value=value)
    dest: TScalar | TVecElem
    if name.startswith("f"):
        dest = TScalar(name)
    elif name in ("in", "out") or name.startswith("t"):
        stream.expect(lexer.LPAREN)
        index = parse_texpr(stream)
        stream.expect(lexer.RPAREN)
        dest = TVecElem(name, index)
    else:
        raise SplSyntaxError(
            f"cannot assign to {token.value}", line=token.line
        )
    stream.expect(lexer.OP, "=")
    return _parse_rhs(stream, dest)


def _parse_rhs(stream: TokenStream, dest: TScalar | TVecElem) -> TAssign:
    token = stream.peek()
    if token.kind == lexer.OP and token.value == "-":
        stream.next()
        operand = _parse_operand(stream)
        follow = stream.peek()
        if follow.kind == lexer.OP and follow.value in "+-*/":
            # "-a op b": fold the sign into a constant when possible,
            # otherwise this is not a four-tuple.
            if isinstance(operand, TNumber):
                stream.next()
                b = _parse_operand(stream)
                _expect_end_of_statement(stream)
                return TAssign(follow.value, dest,
                               TNumber(-operand.value), b)
            raise SplSyntaxError(
                "i-code statements are four-tuples: at most one operator "
                "per statement",
                line=follow.line,
            )
        _expect_end_of_statement(stream)
        return TAssign("neg", dest, operand)
    a = _parse_operand(stream)
    follow = stream.peek()
    if follow.kind == lexer.OP and follow.value in "+-*/":
        stream.next()
        b = _parse_operand(stream)
        _expect_end_of_statement(stream)
        return TAssign(follow.value, dest, a, b)
    _expect_end_of_statement(stream)
    return TAssign("=", dest, a)


def _parse_operand(stream: TokenStream) -> TOperand:
    token = stream.peek()
    if token.kind == lexer.DOLLAR:
        stream.next()
        name = token.value[1:]
        if name.startswith("f"):
            return TScalar(name)
        if name in ("in", "out") or name.startswith("t"):
            stream.expect(lexer.LPAREN)
            index = parse_texpr(stream)
            stream.expect(lexer.RPAREN)
            return TVecElem(name, index)
        raise SplSyntaxError(
            f"{token.value} cannot be a floating-point operand",
            line=token.line,
        )
    if token.kind == lexer.NAME:
        name = token.value.lower()
        if name in _INTRINSIC_NAMES:
            stream.next()
            return _parse_intrinsic(name.upper(), stream)
        if name in _SCALAR_FUNCS or name in _SCALAR_CONSTS:
            return TNumber(scalars.parse_scalar(stream))
        raise SplSyntaxError(
            f"unknown operand {token.value!r}", line=token.line
        )
    if token.kind == lexer.NUMBER:
        stream.next()
        return TNumber(_number_value(token))
    if token.kind == lexer.LPAREN:
        # A parenthesized scalar constant or a complex pair; a trailing
        # operator belongs to the four-tuple, so parse a primary only.
        return TNumber(scalars.parse_scalar_primary(stream))
    if token.kind == lexer.OP and token.value == "-":
        stream.next()
        inner = _parse_operand(stream)
        if isinstance(inner, TNumber):
            return TNumber(-inner.value)
        raise SplSyntaxError(
            "unary minus in operand position applies to constants only",
            line=token.line,
        )
    raise SplSyntaxError(
        f"expected an operand, found {token.value!r}", line=token.line
    )


def _parse_intrinsic(name: str, stream: TokenStream) -> TIntrinsic:
    stream.expect(lexer.LPAREN)
    args = [parse_texpr(stream)]
    while True:
        if stream.match(lexer.COMMA):
            args.append(parse_texpr(stream))
            continue
        if stream.peek().kind == lexer.RPAREN:
            break
        args.append(parse_texpr(stream))
    stream.expect(lexer.RPAREN)
    return TIntrinsic(name, tuple(args))


def _number_value(token: Token):
    if any(c in token.value for c in ".eE"):
        return float(token.value)
    return int(token.value)


def _expect_end_of_statement(stream: TokenStream) -> None:
    token = stream.peek()
    if token.kind in (lexer.NEWLINE, lexer.RPAREN, lexer.EOF):
        return
    # Accept Fortran's "end do" — 'do' directly after 'end'.
    if token.kind == lexer.NAME and token.value.lower() == "do":
        stream.next()
        return
    raise SplSyntaxError(
        f"unexpected {token.value!r} at end of i-code statement",
        line=token.line,
    )
