"""A direct interpreter for i-code programs.

The interpreter is the reference executor: every backend (Python, C,
Fortran text) must agree with it, and it in turn is validated against
the dense matrix semantics of :mod:`repro.formulas`.  It runs at any
stage of the pipeline — intrinsics may still be symbolic and the
program may or may not have been lowered to real arithmetic.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.errors import SplSemanticError
from repro.core.icode import (
    FConst,
    FVar,
    IExpr,
    Instr,
    Intrinsic,
    Loop,
    Op,
    Operand,
    Program,
    VecRef,
)
from repro.core.intrinsics import INTRINSICS
from repro.core.scalars import Number


def run_program(program: Program, x: Sequence[Number], *,
                istride: int = 1, ostride: int = 1,
                iofs: int = 0, oofs: int = 0) -> list[Number]:
    """Execute ``program`` on input ``x`` and return the output vector.

    ``x`` must have exactly ``in_size * element_width`` entries (i.e.
    interleaved re/im pairs after the complex-to-real lowering).  The
    stride/offset keywords only apply to ``strided`` programs.
    """
    width = program.element_width
    if program.strided:
        expected = (iofs + (program.in_size - 1) * istride + 1) * width
        out_len = (oofs + (program.out_size - 1) * ostride + 1) * width
    else:
        expected = program.in_size * width
        out_len = program.out_size * width
    if len(x) < expected:
        raise SplSemanticError(
            f"program {program.name} expects at least {expected} input "
            f"elements, got {len(x)}"
        )
    vectors: dict[str, list[Number]] = {}
    for info in program.vectors.values():
        if info.kind == "in":
            vectors[info.name] = list(x)
        elif info.kind == "out":
            vectors[info.name] = [0.0] * out_len
        else:
            vectors[info.name] = [0.0] * info.size
    for name, values in program.tables.items():
        vectors[name] = list(values)
    scalars: dict[str, Number] = {}
    bindings: dict[str, int] = {}
    if program.strided:
        bindings.update(istride=istride, ostride=ostride,
                        iofs=iofs, oofs=oofs)
    _run_block(program.body, vectors, scalars, bindings)
    return vectors[program.output_name()]


def _run_block(body: list[Instr], vectors: dict, scalars: dict,
               bindings: dict[str, int]) -> None:
    for inst in body:
        if isinstance(inst, Loop):
            for k in range(inst.count):
                bindings[inst.var] = k
                _run_block(inst.body, vectors, scalars, bindings)
            bindings.pop(inst.var, None)
        elif isinstance(inst, Op):
            _run_op(inst, vectors, scalars, bindings)


def _index(expr: IExpr, bindings: dict[str, int]) -> int:
    value = expr.subst(bindings).as_const()
    if value is None:
        missing = sorted(expr.free_vars() - bindings.keys())
        raise SplSemanticError(
            f"unbound index variables {missing} in {expr}"
        )
    return value


def _load(operand: Operand, vectors: dict, scalars: dict,
          bindings: dict[str, int]) -> Number:
    if isinstance(operand, FConst):
        return operand.value
    if isinstance(operand, FVar):
        if operand.name not in scalars:
            raise SplSemanticError(f"read of unset scalar ${operand.name}")
        return scalars[operand.name]
    if isinstance(operand, VecRef):
        vec = vectors.get(operand.vec)
        if vec is None:
            raise SplSemanticError(f"unknown vector ${operand.vec}")
        index = _index(operand.index, bindings)
        if not 0 <= index < len(vec):
            raise SplSemanticError(
                f"subscript {index} out of range for ${operand.vec} "
                f"(size {len(vec)})"
            )
        return vec[index]
    if isinstance(operand, Intrinsic):
        fn = INTRINSICS.get(operand.name.upper())
        if fn is None:
            raise SplSemanticError(f"unknown intrinsic {operand.name}")
        args = [_index(arg, bindings) for arg in operand.args]
        return fn(*args)
    raise SplSemanticError(f"cannot evaluate operand {operand!r}")


def _store(dest, value: Number, vectors: dict, scalars: dict,
           bindings: dict[str, int]) -> None:
    if isinstance(dest, FVar):
        scalars[dest.name] = value
        return
    vec = vectors.get(dest.vec)
    if vec is None:
        raise SplSemanticError(f"unknown vector ${dest.vec}")
    index = _index(dest.index, bindings)
    if not 0 <= index < len(vec):
        raise SplSemanticError(
            f"subscript {index} out of range for ${dest.vec} "
            f"(size {len(vec)})"
        )
    vec[index] = value


def _run_op(op: Op, vectors: dict, scalars: dict,
            bindings: dict[str, int]) -> None:
    a = _load(op.a, vectors, scalars, bindings)
    if op.op == "=":
        value = a
    elif op.op == "neg":
        value = -a
    else:
        b = _load(op.b, vectors, scalars, bindings)
        if op.op == "+":
            value = a + b
        elif op.op == "-":
            value = a - b
        elif op.op == "*":
            value = a * b
        elif op.op == "/":
            value = a / b
        else:
            raise SplSemanticError(f"unknown operator {op.op!r}")
    _store(op.dest, value, vectors, scalars, bindings)
