"""Intrinsic functions and their compile-time evaluation (Section 3.3.2).

"All intrinsic functions are evaluated at compile-time.  If all the
parameters of an intrinsic function are constant, the intrinsic function
invocation is replaced by its value.  If one or more of the parameters
are loop indices and the others are constant, then the compiler
evaluates the intrinsic function for all possible values of the loop
indices, places these values in a table, and replaces the intrinsic
function invocation with a reference to the table accessed through the
loop indices."

Tables are stored in ``Program.tables`` and referenced through ordinary
:class:`~repro.core.icode.VecRef` operands on vectors named ``d0``,
``d1``, ...; backends emit them as constant data.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable

from repro.core.errors import SplSemanticError
from repro.core.icode import (
    FConst,
    IExpr,
    Instr,
    Intrinsic,
    Loop,
    Op,
    Operand,
    Program,
    VecRef,
)
from repro.core.limits import CompileBudget
from repro.core.scalars import Number, omega, simplify_number


def _walsh(i: int, j: int) -> int:
    return -1 if bin(i & j).count("1") % 2 else 1


def _dct2(n: int, k: int, j: int) -> float:
    return math.cos(math.pi * k * (2 * j + 1) / (2 * n))


def _dct4(n: int, k: int, j: int) -> float:
    return math.cos(math.pi * (2 * k + 1) * (2 * j + 1) / (4 * n))


INTRINSICS: dict[str, Callable[..., Number]] = {
    "W": omega,
    "WH": _walsh,
    "DC2": _dct2,
    "DC4": _dct4,
}


def register_intrinsic(name: str, fn: Callable[..., Number]) -> None:
    """Register a new parameterized scalar function for templates."""
    INTRINSICS[name.upper()] = fn


def evaluate_intrinsics(program: Program,
                        budget: CompileBudget | None = None) -> Program:
    """Replace every intrinsic invocation with a constant or table lookup.

    Table sizes are pre-checked against the budget's
    ``max_table_bytes`` (from the index-space dimensions, before any
    value is computed), so an oversized twiddle table is rejected
    instead of materialized.
    """
    builder = _TableBuilder(program, budget or CompileBudget())
    program.body = builder.rewrite(program.body, {})
    return program


class _TableBuilder:
    def __init__(self, program: Program, budget: CompileBudget):
        self.program = program
        self.budget = budget
        self._by_content: dict[tuple, str] = {
            values: name for name, values in program.tables.items()
        }

    def rewrite(self, body: list[Instr], ranges: dict[str, int]) -> list[Instr]:
        result: list[Instr] = []
        for inst in body:
            if isinstance(inst, Loop):
                inner = dict(ranges)
                inner[inst.var] = inst.count
                result.append(
                    Loop(inst.var, inst.count,
                         self.rewrite(inst.body, inner), unroll=inst.unroll)
                )
            elif isinstance(inst, Op):
                a = self._rewrite_operand(inst.a, ranges)
                b = (
                    self._rewrite_operand(inst.b, ranges)
                    if inst.b is not None else None
                )
                result.append(Op(inst.op, inst.dest, a, b))
            else:
                result.append(inst)
        return result

    def _rewrite_operand(self, operand: Operand,
                         ranges: dict[str, int]) -> Operand:
        if not isinstance(operand, Intrinsic):
            return operand
        fn = INTRINSICS.get(operand.name.upper())
        if fn is None:
            raise SplSemanticError(f"unknown intrinsic {operand.name!r}")
        const_args = [arg.as_const() for arg in operand.args]
        if all(value is not None for value in const_args):
            return FConst(simplify_number(fn(*const_args)))
        return self._tabulate(operand, fn, ranges)

    def _tabulate(self, operand: Intrinsic, fn: Callable[..., Number],
                  ranges: dict[str, int]) -> VecRef:
        free: list[str] = []
        for arg in operand.args:
            for name in sorted(arg.free_vars()):
                if name not in free:
                    free.append(name)
        # Order variables outermost-first, following loop nesting order.
        ordered = [name for name in ranges if name in free]
        missing = [name for name in free if name not in ranges]
        if missing:
            raise SplSemanticError(
                f"intrinsic {operand.name} argument uses variables "
                f"{missing} that are not loop indices"
            )
        dims = [ranges[name] for name in ordered]
        elements = 1
        for dim in dims:
            elements *= dim
        self.budget.check_table(self.program.table_elements() + elements,
                                f"intrinsic {operand.name}")
        values: list[Number] = []
        for point in itertools.product(*(range(d) for d in dims)):
            if len(values) % 4096 == 4095:
                self.budget.check_deadline("intrinsic table construction")
            bindings = {
                name: IExpr.const(v) for name, v in zip(ordered, point)
            }
            args = []
            for arg in operand.args:
                value = arg.subst(bindings).as_const()
                assert value is not None
                args.append(value)
            values.append(simplify_number(fn(*args)))
        index = IExpr.const(0)
        stride = 1
        for name, dim in zip(reversed(ordered), reversed(dims)):
            index = index + IExpr.var(name) * stride
            stride *= dim
        name = self._intern_table(tuple(values))
        return VecRef(name, index)

    def _intern_table(self, values: tuple) -> str:
        existing = self._by_content.get(values)
        if existing is not None:
            return existing
        name = f"d{len(self.program.tables)}"
        self.program.tables[name] = values
        self._by_content[values] = name
        return name
