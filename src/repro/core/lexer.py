"""Tokenizer for the SPL language.

SPL source is Cambridge Polish notation (S-expressions) with three
lexical extensions described in Section 2.2 of the paper:

* lines whose first non-blank character is ``#`` are compiler directives
  and are delivered as single :data:`DIRECTIVE` tokens;
* everything between ``;`` and the end of the line is a comment;
* scalar constant expressions (``sqrt(2)``, ``(cos(2*pi/3.0),sin(2*pi/3.0))``)
  use infix operators, so arithmetic/relational operators are tokens too.

Newlines are preserved as tokens because the i-code mini-language inside
``(template ...)`` forms is line-oriented; the formula parser simply
skips them.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from repro.core.errors import SplSyntaxError

# Token kinds.
LPAREN = "LPAREN"
RPAREN = "RPAREN"
LBRACKET = "LBRACKET"
RBRACKET = "RBRACKET"
COMMA = "COMMA"
DOT = "DOT"
NAME = "NAME"  # identifiers, including pattern variables ending in '_'
DOLLAR = "DOLLAR"  # $in, $out, $i0, $f3, $in_stride, ...
NUMBER = "NUMBER"  # integer or floating point literal
OP = "OP"  # + - * / = == != <= >= < > && || !
DIRECTIVE = "DIRECTIVE"  # whole '#...' line, value excludes the '#'
NEWLINE = "NEWLINE"
EOF = "EOF"


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source span for error reporting.

    ``line`` and ``col`` are 1-based; ``col`` is 0 only for synthetic
    tokens constructed without a source position.
    """

    kind: str
    value: str
    line: int
    col: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Token({self.kind}, {self.value!r}, "
                f"line={self.line}, col={self.col})")


_TOKEN_RE = re.compile(
    r"""
    (?P<number>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?)
  | (?P<dollar>\$[A-Za-z_][A-Za-z0-9_]*)
  | (?P<name>[A-Za-z][A-Za-z0-9_]*)
  | (?P<op>==|!=|<=|>=|&&|\|\||[+\-*/=<>!])
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<lbracket>\[)
  | (?P<rbracket>\])
  | (?P<comma>,)
  | (?P<dot>\.)
  | (?P<ws>[ \t\r]+)
    """,
    re.VERBOSE,
)

_GROUP_TO_KIND = {
    "number": NUMBER,
    "dollar": DOLLAR,
    "name": NAME,
    "op": OP,
    "lparen": LPAREN,
    "rparen": RPAREN,
    "lbracket": LBRACKET,
    "rbracket": RBRACKET,
    "comma": COMMA,
    "dot": DOT,
}


def tokenize(source: str) -> list[Token]:
    """Tokenize SPL source text into a list of tokens ending with EOF."""
    return list(_iter_tokens(source))


def _iter_tokens(source: str) -> Iterator[Token]:
    lines = source.split("\n")
    for lineno, raw_line in enumerate(lines, start=1):
        # Strip comments first; a ';' cannot occur inside any other token.
        line = raw_line.split(";", 1)[0]
        stripped = line.lstrip()
        if stripped.startswith("#"):
            col = len(line) - len(stripped) + 1
            yield Token(DIRECTIVE, stripped[1:].strip(), lineno, col)
            yield Token(NEWLINE, "\n", lineno, len(line) + 1)
            continue
        pos = 0
        emitted = False
        while pos < len(line):
            match = _TOKEN_RE.match(line, pos)
            if match is None:
                raise SplSyntaxError(
                    f"unexpected character {line[pos]!r}",
                    line=lineno, col=pos + 1,
                )
            start = pos
            pos = match.end()
            group = match.lastgroup
            if group == "ws":
                continue
            yield Token(_GROUP_TO_KIND[group], match.group(), lineno,
                        start + 1)
            emitted = True
        if emitted or stripped:
            yield Token(NEWLINE, "\n", lineno, len(line) + 1)
    yield Token(EOF, "", len(lines), len(lines[-1]) + 1 if lines else 1)


class TokenStream:
    """Cursor over a token list with one-token lookahead helpers."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    @property
    def position(self) -> int:
        return self._pos

    def seek(self, position: int) -> None:
        self._pos = position

    def peek(self, skip_newlines: bool = False) -> Token:
        pos = self._pos
        if skip_newlines:
            while self._tokens[pos].kind == NEWLINE:
                pos += 1
        return self._tokens[pos]

    def next(self, skip_newlines: bool = False) -> Token:
        if skip_newlines:
            while self._tokens[self._pos].kind == NEWLINE:
                self._pos += 1
        token = self._tokens[self._pos]
        if token.kind != EOF:
            self._pos += 1
        return token

    def expect(self, kind: str, value: str | None = None,
               skip_newlines: bool = False) -> Token:
        token = self.next(skip_newlines=skip_newlines)
        if token.kind != kind or (value is not None and token.value != value):
            want = kind if value is None else f"{kind} {value!r}"
            raise SplSyntaxError(
                f"expected {want}, found {token.kind} {token.value!r}",
                line=token.line, col=token.col or None,
            )
        return token

    def match(self, kind: str, value: str | None = None,
              skip_newlines: bool = False) -> Token | None:
        saved = self._pos
        token = self.next(skip_newlines=skip_newlines)
        if token.kind == kind and (value is None or token.value == value):
            return token
        self._pos = saved
        return None

    def at_eof(self) -> bool:
        return self.peek(skip_newlines=True).kind == EOF
