"""Compile-time resource governance.

The compile pipeline (template expansion, unrolling, intrinsic-table
construction) runs algorithms whose cost is decided by the *input
program*: a recursion bomb, an ``#unroll`` of a large formula or an
oversized twiddle table can hang the compiler, exhaust memory, or blow
Python's recursion limit.  :class:`CompileLimits` makes every such
bound explicit and configurable, and :class:`CompileBudget` is the
per-compilation ledger that enforces them, raising a typed
:class:`~repro.core.errors.SplResourceError` that names the limit, the
offending construct and the formula path to it.

Design rules:

* limits are checked *before* the expensive step (an unroll explosion
  is computed arithmetically from loop bounds, never discovered
  mid-OOM);
* depth limits are set so that the guarded recursion can never reach
  Python's interpreter recursion limit — a hostile nest yields a
  diagnosis, not ``RecursionError``;
* the limits are part of the compile cache key
  (:func:`repro.wisdom.keys.compile_key`), so changing a limit never
  replays a plan cached under a different budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Sequence

from repro.core.errors import SplResourceError

#: Error codes for the individual limits (see docs/robustness.md).
CODE_DEPTH = "SPL-E201"
CODE_EXPANSIONS = "SPL-E202"
CODE_ICODE = "SPL-E203"
CODE_UNROLL = "SPL-E204"
CODE_TABLE = "SPL-E205"
CODE_DEADLINE = "SPL-E206"

#: Bytes per stored table element (complex128: two float64 words).
TABLE_ELEMENT_BYTES = 16


@dataclass(frozen=True)
class CompileLimits:
    """Explicit bounds on one formula compilation.

    ``max_formula_depth`` bounds both source-level S-expression nesting
    and AST depth; ``max_template_depth`` bounds the template-expansion
    stack (a little deeper, since expansion templates can interpose).
    Both defaults keep the guarded recursion far below Python's
    interpreter stack limit.  ``compile_deadline`` is wall-clock
    seconds for the whole pipeline of one unit; ``None`` disables it.
    """

    max_formula_depth: int = 100
    max_template_depth: int = 160
    max_expansions: int = 100_000
    max_icode_statements: int = 500_000
    max_unroll_statements: int = 250_000
    max_table_bytes: int = 16 * 2**20
    compile_deadline: float | None = 60.0

    def fingerprint(self) -> str:
        """Stable rendering for cache keys (wisdom/compile memo)."""
        deadline = "none" if self.compile_deadline is None \
            else f"{self.compile_deadline:g}"
        return (
            f"depth={self.max_formula_depth};"
            f"tdepth={self.max_template_depth};"
            f"exp={self.max_expansions};"
            f"icode={self.max_icode_statements};"
            f"unroll={self.max_unroll_statements};"
            f"table={self.max_table_bytes};"
            f"deadline={deadline}"
        )

    def with_overrides(self, **kwargs) -> "CompileLimits":
        """A copy with the given fields replaced (``None`` = keep)."""
        fields = {k: v for k, v in kwargs.items() if v is not None}
        return replace(self, **fields) if fields else self


DEFAULT_LIMITS = CompileLimits()


def formula_depth(formula) -> int:
    """AST depth of a formula, computed iteratively.

    Uses an explicit stack so that even a pathologically deep AST
    (built programmatically, bypassing the parser's nesting guard) can
    be measured without recursion.
    """
    deepest = 0
    stack = [(formula, 1)]
    while stack:
        node, depth = stack.pop()
        if depth > deepest:
            deepest = depth
        for child in node.children():
            stack.append((child, depth + 1))
    return deepest


class CompileBudget:
    """The per-compilation ledger enforcing a :class:`CompileLimits`.

    One budget covers one unit through the whole pipeline; the deadline
    clock starts at construction.  All ``charge_*`` methods also check
    the deadline, so any phase that charges regularly cannot run away.
    """

    def __init__(self, limits: CompileLimits | None = None, *,
                 what: str = "compilation"):
        self.limits = limits or DEFAULT_LIMITS
        self.what = what
        self.expansions = 0
        self.statements = 0
        self.started = time.monotonic()
        deadline = self.limits.compile_deadline
        self.deadline = None if deadline is None else self.started + deadline

    # -- deadline ----------------------------------------------------------

    def check_deadline(self, phase: str | None = None,
                       path: Sequence[str] | None = None) -> None:
        if self.deadline is not None and time.monotonic() > self.deadline:
            elapsed = time.monotonic() - self.started
            where = f" during {phase}" if phase else ""
            raise SplResourceError(
                f"{self.what} exceeded the compile deadline of "
                f"{self.limits.compile_deadline:g}s{where} "
                f"({elapsed:.1f}s elapsed); raise compile_deadline "
                f"(--compile-deadline) for very large formulas",
                code=CODE_DEADLINE, formula_path=path,
                limit_name="compile_deadline",
                limit=self.limits.compile_deadline, actual=elapsed,
            )

    # -- counted resources -------------------------------------------------

    def charge_expansion(self, construct: str,
                         path: Sequence[str] | None = None) -> None:
        self.expansions += 1
        if self.expansions > self.limits.max_expansions:
            raise SplResourceError(
                f"template expansion of {construct} exceeded "
                f"max_expansions={self.limits.max_expansions}",
                code=CODE_EXPANSIONS, formula_path=path,
                limit_name="max_expansions",
                limit=self.limits.max_expansions, actual=self.expansions,
            )
        # Expansion is the pipeline's inner loop: piggyback the clock.
        if self.expansions % 64 == 0:
            self.check_deadline("template expansion", path)

    def check_depth(self, depth: int, construct: str,
                    path: Sequence[str] | None = None) -> None:
        if depth > self.limits.max_template_depth:
            raise SplResourceError(
                f"template expansion of {construct} exceeded "
                f"max_template_depth={self.limits.max_template_depth}; "
                f"the formula nests too deeply",
                code=CODE_DEPTH, formula_path=path,
                limit_name="max_template_depth",
                limit=self.limits.max_template_depth, actual=depth,
            )

    def charge_statements(self, count: int, construct: str,
                          path: Sequence[str] | None = None) -> None:
        self.statements += count
        if self.statements > self.limits.max_icode_statements:
            raise SplResourceError(
                f"generated i-code for {construct} exceeded "
                f"max_icode_statements={self.limits.max_icode_statements} "
                f"(--max-icode)",
                code=CODE_ICODE, formula_path=path,
                limit_name="max_icode_statements",
                limit=self.limits.max_icode_statements,
                actual=self.statements,
            )

    def charge_fusion(self, count: int, construct: str,
                      path: Sequence[str] | None = None) -> None:
        """Charge fusion-analysis work (enumerated iteration points).

        Loop fusion enumerates producer/consumer index streams; that
        work scales with the iteration domain, so it draws from the
        same i-code statement budget as code generation — a
        pathological fusion candidate fails typed (``SPL-E203``)
        instead of hanging the compiler mid-pass.
        """
        self.charge_statements(count, construct, path)
        if self.statements % 4096 == 0:
            self.check_deadline("loop fusion", path)

    def check_unroll(self, expanded: int, construct: str,
                     path: Sequence[str] | None = None) -> None:
        """Pre-check an unroll expansion computed from loop bounds."""
        if expanded > self.limits.max_unroll_statements:
            raise SplResourceError(
                f"unrolling {construct} would produce {expanded} "
                f"statements, exceeding max_unroll_statements="
                f"{self.limits.max_unroll_statements} (--max-unroll); "
                f"compile without #unroll or raise the limit",
                code=CODE_UNROLL, formula_path=path,
                limit_name="max_unroll_statements",
                limit=self.limits.max_unroll_statements, actual=expanded,
            )

    def check_table(self, elements: int, construct: str,
                    path: Sequence[str] | None = None) -> None:
        """Pre-check an intrinsic table size before materializing it."""
        nbytes = elements * TABLE_ELEMENT_BYTES
        if nbytes > self.limits.max_table_bytes:
            raise SplResourceError(
                f"intrinsic table for {construct} would need {elements} "
                f"entries ({nbytes} bytes), exceeding max_table_bytes="
                f"{self.limits.max_table_bytes}",
                code=CODE_TABLE, formula_path=path,
                limit_name="max_table_bytes",
                limit=self.limits.max_table_bytes, actual=nbytes,
            )

    def check_formula_depth(self, formula, *, source: str = "formula") -> None:
        """Iteratively bound a formula's AST depth before any recursion."""
        depth = formula_depth(formula)
        if depth > self.limits.max_formula_depth:
            raise SplResourceError(
                f"{source} nests {depth} levels deep, exceeding "
                f"max_formula_depth={self.limits.max_formula_depth}",
                code=CODE_DEPTH,
                limit_name="max_formula_depth",
                limit=self.limits.max_formula_depth, actual=depth,
            )
