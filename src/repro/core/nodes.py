"""Formula AST node types.

An SPL formula denotes a (structured) matrix; the compiler turns it into
a subroutine computing the matrix-vector product ``y = M x``.  The AST
is binary: n-ary ``compose``/``tensor``/``direct-sum`` forms are
associated right-to-left by the parser (Section 3.1 of the paper).

Each node carries an optional ``unroll`` flag recording the state of the
``#unroll`` directive at the point the formula was written; ``None``
means "inherit from the enclosing formula".
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.core.errors import SplSemanticError
from repro.core.scalars import Number

SizeResolver = Callable[["Param"], tuple[int, int]]


@dataclass(frozen=True)
class Formula:
    """Base class for all formula nodes."""

    unroll: bool | None = field(default=None, compare=False, kw_only=True)

    def children(self) -> tuple["Formula", ...]:
        return ()

    def size(self, resolver: SizeResolver) -> tuple[int, int]:
        """Return ``(in_size, out_size)`` of the matrix this node denotes."""
        raise NotImplementedError

    def to_spl(self) -> str:
        """Render this formula back to SPL source text."""
        raise NotImplementedError

    def with_unroll(self, unroll: bool | None) -> "Formula":
        return dataclasses.replace(self, unroll=unroll)

    def walk(self) -> Iterator["Formula"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def __str__(self) -> str:
        return self.to_spl()


@dataclass(frozen=True)
class Param(Formula):
    """A parameterized matrix such as ``(I 4)``, ``(F 8)``, ``(L 16 4)``.

    ``name`` is case-insensitive in SPL source and stored upper-cased.
    New parameterized matrices may be introduced by templates, in which
    case their sizes are inferred from the template's i-code.
    """

    name: str = ""
    params: tuple[int, ...] = ()

    def size(self, resolver: SizeResolver) -> tuple[int, int]:
        return resolver(self)

    def to_spl(self) -> str:
        inner = " ".join(str(p) for p in self.params)
        return f"({self.name} {inner})" if inner else f"({self.name})"


@dataclass(frozen=True)
class MatrixLit(Formula):
    """A general matrix given element-wise: ``(matrix (r11 r12) (r21 r22))``."""

    rows: tuple[tuple[Number, ...], ...] = ()

    def __post_init__(self) -> None:
        if not self.rows or not self.rows[0]:
            raise SplSemanticError("matrix literal must be non-empty")
        width = len(self.rows[0])
        if any(len(row) != width for row in self.rows):
            raise SplSemanticError("matrix literal rows differ in length")

    def size(self, resolver: SizeResolver) -> tuple[int, int]:
        return len(self.rows[0]), len(self.rows)

    def to_spl(self) -> str:
        rows = " ".join(
            "(" + " ".join(_scalar_text(v) for v in row) + ")"
            for row in self.rows
        )
        return f"(matrix {rows})"


@dataclass(frozen=True)
class DiagonalLit(Formula):
    """A diagonal matrix: ``(diagonal (d1 ... dn))``."""

    values: tuple[Number, ...] = ()

    def __post_init__(self) -> None:
        if not self.values:
            raise SplSemanticError("diagonal literal must be non-empty")

    def size(self, resolver: SizeResolver) -> tuple[int, int]:
        n = len(self.values)
        return n, n

    def to_spl(self) -> str:
        inner = " ".join(_scalar_text(v) for v in self.values)
        return f"(diagonal ({inner}))"


@dataclass(frozen=True)
class PermutationLit(Formula):
    """A permutation matrix ``(permutation (k1 ... kn))``.

    The row description is 1-based, as in the paper: the generated code
    computes ``y[i] = x[k_{i+1} - 1]``.
    """

    perm: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        n = len(self.perm)
        if sorted(self.perm) != list(range(1, n + 1)):
            raise SplSemanticError(
                f"(permutation {self.perm}) is not a permutation of 1..{n}"
            )

    def size(self, resolver: SizeResolver) -> tuple[int, int]:
        n = len(self.perm)
        return n, n

    def to_spl(self) -> str:
        inner = " ".join(str(k) for k in self.perm)
        return f"(permutation ({inner}))"


@dataclass(frozen=True)
class _Binary(Formula):
    left: Formula = None  # type: ignore[assignment]
    right: Formula = None  # type: ignore[assignment]

    op_name = ""

    def children(self) -> tuple[Formula, ...]:
        return (self.left, self.right)

    def to_spl(self) -> str:
        return f"({self.op_name} {self.left.to_spl()} {self.right.to_spl()})"


@dataclass(frozen=True)
class Compose(_Binary):
    """Matrix product: ``(compose A B)`` denotes ``A B`` (B applied first)."""

    op_name = "compose"

    def size(self, resolver: SizeResolver) -> tuple[int, int]:
        left_in, left_out = self.left.size(resolver)
        right_in, right_out = self.right.size(resolver)
        if left_in != right_out:
            raise SplSemanticError(
                f"compose size mismatch: {self.left.to_spl()} expects input "
                f"of size {left_in} but {self.right.to_spl()} produces "
                f"{right_out}"
            )
        return right_in, left_out


@dataclass(frozen=True)
class Tensor(_Binary):
    """Tensor (Kronecker) product ``A (x) B``."""

    op_name = "tensor"

    def size(self, resolver: SizeResolver) -> tuple[int, int]:
        left_in, left_out = self.left.size(resolver)
        right_in, right_out = self.right.size(resolver)
        return left_in * right_in, left_out * right_out


@dataclass(frozen=True)
class DirectSum(_Binary):
    """Direct sum ``A (+) B``: block-diagonal stacking."""

    op_name = "direct-sum"

    def size(self, resolver: SizeResolver) -> tuple[int, int]:
        left_in, left_out = self.left.size(resolver)
        right_in, right_out = self.right.size(resolver)
        return left_in + right_in, left_out + right_out


def _fold_right(cls, operands: list[Formula]) -> Formula:
    if not operands:
        raise SplSemanticError(f"{cls.op_name} needs at least one operand")
    result = operands[-1]
    for operand in reversed(operands[:-1]):
        result = cls(left=operand, right=result)
    return result


def compose(*operands: Formula) -> Formula:
    """Right-associated n-ary matrix product."""
    return _fold_right(Compose, list(operands))


def tensor(*operands: Formula) -> Formula:
    """Right-associated n-ary tensor product."""
    return _fold_right(Tensor, list(operands))


def direct_sum(*operands: Formula) -> Formula:
    """Right-associated n-ary direct sum."""
    return _fold_right(DirectSum, list(operands))


def identity(n: int) -> Param:
    return Param(name="I", params=(n,))


def fourier(n: int) -> Param:
    return Param(name="F", params=(n,))


def stride(mn: int, s: int) -> Param:
    return Param(name="L", params=(mn, s))


def twiddle(mn: int, s: int) -> Param:
    return Param(name="T", params=(mn, s))


def reversal(n: int) -> Param:
    """The ``(J n)`` reversal permutation (used by DCT factorizations)."""
    return Param(name="J", params=(n,))


def default_param_sizes(param: Param) -> tuple[int, int]:
    """Size rules for the predefined parameterized matrices.

    Raises :class:`SplSemanticError` for unknown names; the compiler
    falls back to template-based size inference in that case.
    """
    name, params = param.name, param.params
    if name in ("I", "F", "J", "WHT", "DCT2", "DCT4") and len(params) == 1:
        n = params[0]
        if n <= 0:
            raise SplSemanticError(f"({name} {n}): size must be positive")
        if name == "WHT" and n & (n - 1):
            raise SplSemanticError(f"(WHT {n}): size must be a power of two")
        return n, n
    if name in ("L", "T") and len(params) == 2:
        mn, s = params
        if mn <= 0 or s <= 0 or mn % s != 0:
            raise SplSemanticError(
                f"({name} {mn} {s}): second parameter must divide the first"
            )
        return mn, mn
    raise SplSemanticError(
        f"unknown parameterized matrix ({param.name} "
        f"{' '.join(str(p) for p in param.params)})"
    )


def _scalar_text(value: Number) -> str:
    if isinstance(value, complex):
        return f"({value.real!r},{value.imag!r})"
    return repr(value)
