"""Default compiler optimizations (Section 3.4).

"The SPL compiler applies constant folding, copy propagation, common
subexpression elimination, and dead code elimination.  These default
optimizations are applied in a single pass using a value numbering
algorithm.  Both scalar variables and array elements are handled."

The value-numbering pass is forward, per straight-line region; loop
bodies are processed with a state purged of anything the loop itself
may overwrite, which keeps the pass sound for the looped code generated
for large transforms while remaining maximally effective on the fully
unrolled straight-line code where the paper applies it (Figure 2).

Dead code elimination is a backward liveness pass; inside loops a
location read anywhere in the body is treated as live across
iterations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core.icode import (
    FConst,
    FVar,
    IExpr,
    Instr,
    Loop,
    Op,
    Operand,
    Program,
    VEC_OUTPUT,
    VecRef,
    count_dynamic_statements,
    count_statements,
    iter_ops,
)
from repro.core.scalars import Number

# Location keys: ("s", name) for scalars, ("v", vec, index IExpr) for
# array elements.
LocKey = tuple


def optimize(program: Program) -> Program:
    """Run value numbering, forward substitution and DCE, in place."""
    vn = _ValueNumbering(program)
    program.body = vn.run(program.body, _State())
    program.body = _eliminate_dead_code(program)
    program.body = _forward_substitute(program.body)
    program.body = _eliminate_dead_code(program)
    return program


def _loc_key(loc: FVar | VecRef) -> LocKey:
    if isinstance(loc, FVar):
        return ("s", loc.name)
    return ("v", loc.vec, loc.index)


def _may_alias(key_a: LocKey, key_b: LocKey) -> bool:
    """Whether two distinct array-element keys may denote the same cell."""
    if key_a[0] != "v" or key_b[0] != "v":
        return False
    if key_a[1] != key_b[1]:
        return False
    difference = (key_a[2] - key_b[2]).as_const()
    return difference is None or difference == 0


@dataclass
class _State:
    """Value-numbering state for one straight-line region."""

    loc2vn: dict[LocKey, int] = field(default_factory=dict)
    vn2const: dict[int, Number] = field(default_factory=dict)
    expr2vn: dict[tuple, int] = field(default_factory=dict)
    vn2holders: dict[int, list[LocKey]] = field(default_factory=dict)
    # Index: vec name -> the array-element keys currently tracked, so a
    # write only inspects keys of the same vector.
    vec_keys: dict[str, set[LocKey]] = field(default_factory=dict)

    def track(self, key: LocKey) -> None:
        if key[0] == "v":
            self.vec_keys.setdefault(key[1], set()).add(key)

    def untrack(self, key: LocKey) -> None:
        if key[0] == "v":
            keys = self.vec_keys.get(key[1])
            if keys is not None:
                keys.discard(key)

    def purge(self, killed_scalars: set[str], killed_vecs: set[str]) -> "_State":
        """A copy with everything the given names may touch removed."""

        def survives(key: LocKey) -> bool:
            if key[0] == "s":
                return key[1] not in killed_scalars
            return key[1] not in killed_vecs

        loc2vn = {k: v for k, v in self.loc2vn.items() if survives(k)}
        vn2holders = {
            vn: [h for h in holders if survives(h) and loc2vn.get(h) == vn]
            for vn, holders in self.vn2holders.items()
        }
        surviving_vns = set(loc2vn.values()) | set(self.vn2const)
        expr2vn = {
            expr: vn
            for expr, vn in self.expr2vn.items()
            if vn in surviving_vns
            and all(operand in surviving_vns
                    for operand in expr[1:] if isinstance(operand, int))
        }
        vec_keys: dict[str, set[LocKey]] = {}
        for key in loc2vn:
            if key[0] == "v":
                vec_keys.setdefault(key[1], set()).add(key)
        return _State(loc2vn, dict(self.vn2const), expr2vn, vn2holders,
                      vec_keys)


class _ValueNumbering:
    _COMMUTATIVE = ("+", "*")

    def __init__(self, program: Program):
        self.program = program
        self._counter = itertools.count()
        self._const_vns: dict[Number, int] = {}

    # -- vn helpers ----------------------------------------------------------

    def _fresh_vn(self) -> int:
        return next(self._counter)

    def _const_vn(self, state: _State, value: Number) -> int:
        vn = self._const_vns.get(value)
        if vn is None:
            vn = self._fresh_vn()
            self._const_vns[value] = vn
        state.vn2const.setdefault(vn, value)
        return vn

    def _operand_vn(self, state: _State, operand: Operand) -> int:
        if isinstance(operand, FConst):
            return self._const_vn(state, operand.value)
        key = _loc_key(operand)
        vn = state.loc2vn.get(key)
        if vn is None:
            vn = self._fresh_vn()
            state.loc2vn[key] = vn
            state.vn2holders.setdefault(vn, []).append(key)
            state.track(key)
        return vn

    def _best_operand(self, state: _State, operand: Operand, vn: int) -> Operand:
        """Rewrite an operand to the best location holding the same value.

        Preference: a known constant, then the oldest still-valid holder
        (which propagates copies back to their original source), then
        the operand itself.
        """
        if vn in state.vn2const:
            return FConst(state.vn2const[vn])
        for holder in state.vn2holders.get(vn, ()):
            if state.loc2vn.get(holder) == vn:
                if holder[0] == "s":
                    return FVar(holder[1])
                return VecRef(holder[1], holder[2])
        return operand

    # -- writes --------------------------------------------------------------

    def _kill_dest(self, state: _State, dest_key: LocKey) -> None:
        old_vn = state.loc2vn.pop(dest_key, None)
        state.untrack(dest_key)
        if old_vn is not None:
            holders = state.vn2holders.get(old_vn)
            if holders and dest_key in holders:
                holders.remove(dest_key)
        if dest_key[0] == "v":
            for key in list(state.vec_keys.get(dest_key[1], ())):
                if key != dest_key and _may_alias(key, dest_key):
                    vn = state.loc2vn.pop(key)
                    state.untrack(key)
                    holders = state.vn2holders.get(vn)
                    if holders and key in holders:
                        holders.remove(key)

    def _record_dest(self, state: _State, dest_key: LocKey, vn: int) -> None:
        state.loc2vn[dest_key] = vn
        state.vn2holders.setdefault(vn, []).append(dest_key)
        state.track(dest_key)

    # -- the pass --------------------------------------------------------------

    def run(self, body: list[Instr], state: _State) -> list[Instr]:
        result: list[Instr] = []
        for inst in body:
            if isinstance(inst, Loop):
                killed_scalars, killed_vecs = _written_names(inst.body)
                inner_state = state.purge(killed_scalars, killed_vecs)
                new_body = self.run(inst.body, inner_state)
                result.append(Loop(inst.var, inst.count, new_body,
                                   unroll=inst.unroll))
                purged = state.purge(killed_scalars, killed_vecs)
                state.loc2vn = purged.loc2vn
                state.vn2const = purged.vn2const
                state.expr2vn = purged.expr2vn
                state.vn2holders = purged.vn2holders
                state.vec_keys = purged.vec_keys
            elif isinstance(inst, Op):
                rewritten = self._visit_op(state, inst)
                if rewritten is not None:
                    result.append(rewritten)
            else:
                result.append(inst)
        return result

    def _visit_op(self, state: _State, op: Op) -> Op | None:
        a_vn = self._operand_vn(state, op.a)
        a = self._best_operand(state, op.a, a_vn)
        b = b_vn = None
        if op.b is not None:
            b_vn = self._operand_vn(state, op.b)
            b = self._best_operand(state, op.b, b_vn)
        opcode, a, a_vn, b, b_vn = self._simplify(state, op.op, a, a_vn,
                                                  b, b_vn)
        dest_key = _loc_key(op.dest)

        if opcode == "=":
            # Copy propagation: dest joins the source's class.
            if state.loc2vn.get(dest_key) == a_vn:
                return None  # self-copy: dest already holds the value
            self._kill_dest(state, dest_key)
            self._record_dest(state, dest_key, a_vn)
            return Op("=", op.dest, a)

        expr_key = self._expr_key(opcode, a_vn, b_vn)
        existing = state.expr2vn.get(expr_key)
        if existing is not None:
            holder_operand = self._holder_operand(state, existing)
            if holder_operand is not None:
                if state.loc2vn.get(dest_key) == existing:
                    return None
                self._kill_dest(state, dest_key)
                self._record_dest(state, dest_key, existing)
                return Op("=", op.dest, holder_operand)
        vn = self._fresh_vn()
        state.expr2vn[expr_key] = vn
        self._kill_dest(state, dest_key)
        self._record_dest(state, dest_key, vn)
        return Op(opcode, op.dest, a, b)

    def _holder_operand(self, state: _State, vn: int) -> Operand | None:
        if vn in state.vn2const:
            return FConst(state.vn2const[vn])
        for holder in state.vn2holders.get(vn, ()):
            if state.loc2vn.get(holder) == vn:
                if holder[0] == "s":
                    return FVar(holder[1])
                return VecRef(holder[1], holder[2])
        return None

    def _expr_key(self, opcode: str, a_vn: int, b_vn: int | None) -> tuple:
        if b_vn is not None and opcode in self._COMMUTATIVE:
            lo, hi = sorted((a_vn, b_vn))
            return (opcode, lo, hi)
        return (opcode, a_vn, b_vn)

    def _simplify(self, state: _State, opcode: str, a: Operand, a_vn: int,
                  b: Operand | None, b_vn: int | None):
        """Constant folding and algebraic identities.

        Returns a possibly new ``(opcode, a, a_vn, b, b_vn)``; an
        opcode of "=" means the operation reduced to a copy.
        """
        a_const = state.vn2const.get(a_vn) if a_vn in state.vn2const else None
        b_const = state.vn2const.get(b_vn) if b_vn in state.vn2const else None

        def const(value: Number):
            vn = self._const_vn(state, value)
            return "=", FConst(value), vn, None, None

        if opcode == "neg":
            if a_const is not None:
                return const(-a_const)
            return opcode, a, a_vn, None, None
        if opcode == "=":
            return opcode, a, a_vn, None, None

        if a_const is not None and b_const is not None:
            if opcode == "+":
                return const(a_const + b_const)
            if opcode == "-":
                return const(a_const - b_const)
            if opcode == "*":
                return const(a_const * b_const)
            if opcode == "/":
                return const(a_const / b_const)

        if opcode == "+":
            if a_const == 0:
                return "=", b, b_vn, None, None
            if b_const == 0:
                return "=", a, a_vn, None, None
        elif opcode == "-":
            if b_const == 0:
                return "=", a, a_vn, None, None
            if a_const == 0:
                return "neg", b, b_vn, None, None
            if a_vn == b_vn:
                return const(0.0)
        elif opcode == "*":
            if a_const == 1:
                return "=", b, b_vn, None, None
            if b_const == 1:
                return "=", a, a_vn, None, None
            if a_const == 0 or b_const == 0:
                return const(0.0)
            if a_const == -1:
                return "neg", b, b_vn, None, None
            if b_const == -1:
                return "neg", a, a_vn, None, None
        elif opcode == "/":
            if b_const == 1:
                return "=", a, a_vn, None, None
        return opcode, a, a_vn, b, b_vn


def _written_names(body: list[Instr]) -> tuple[set[str], set[str]]:
    scalars: set[str] = set()
    vecs: set[str] = set()
    for op in iter_ops(body):
        if isinstance(op.dest, FVar):
            scalars.add(op.dest.name)
        else:
            vecs.add(op.dest.vec)
    return scalars, vecs


# ---------------------------------------------------------------------------
# Forward substitution.
# ---------------------------------------------------------------------------


def _forward_substitute(body: list[Instr]) -> list[Instr]:
    """Fold single-use scalar definitions into the copy that reads them.

    Turns the common template pattern ``f0 = a + b; y(k) = f0`` into
    ``y(k) = a + b`` (when ``f0`` is used exactly once, in the same
    block, with no intervening write to ``a``, ``b`` or ``f0``), which
    is the shape the paper's listings show.  The trailing DCE pass then
    removes the dead definition.
    """
    uses: dict[str, int] = {}
    for op in iter_ops(body):
        for operand in op.operands():
            if isinstance(operand, FVar):
                uses[operand.name] = uses.get(operand.name, 0) + 1
    return _fs_block(body, uses)


def _fs_block(body: list[Instr], uses: dict[str, int]) -> list[Instr]:
    result: list[Instr] = []
    # scalar name -> (index in result, defining Op)
    defs: dict[str, tuple[int, Op]] = {}
    # Dependency indexes so invalidation is O(affected), not O(defs):
    # scalar name -> def names reading it; vec name -> def name -> indices.
    dep_scalars: dict[str, set[str]] = {}
    dep_vecs: dict[str, dict[str, list]] = {}

    def drop(name: str) -> None:
        defs.pop(name, None)

    def register(name: str, index: int, op: Op) -> None:
        defs[name] = (index, op)
        dep_scalars.setdefault(name, set()).add(name)
        for operand in op.operands():
            if isinstance(operand, FVar):
                dep_scalars.setdefault(operand.name, set()).add(name)
            elif isinstance(operand, VecRef):
                dep_vecs.setdefault(operand.vec, {}).setdefault(
                    name, []).append(operand.index)

    def invalidate(written: FVar | VecRef) -> None:
        if isinstance(written, FVar):
            for name in dep_scalars.get(written.name, ()):
                drop(name)
            drop(written.name)
            return
        for name, indices in dep_vecs.get(written.vec, {}).items():
            if name not in defs:
                continue
            for index in indices:
                difference = (index - written.index).as_const()
                if difference is None or difference == 0:
                    drop(name)
                    break

    for inst in body:
        if isinstance(inst, Loop):
            result.append(Loop(inst.var, inst.count,
                               _fs_block(inst.body, uses),
                               unroll=inst.unroll))
            written_scalars, written_vecs = _written_names(inst.body)
            for scalar in written_scalars:
                for name in dep_scalars.get(scalar, ()):
                    drop(name)
                drop(scalar)
            for vec in written_vecs:
                for name in dep_vecs.get(vec, {}):
                    drop(name)
            continue
        if not isinstance(inst, Op):
            result.append(inst)
            continue
        if (
            inst.op == "="
            and isinstance(inst.a, FVar)
            and uses.get(inst.a.name, 0) == 1
            and inst.a.name in defs
        ):
            _, def_op = defs.pop(inst.a.name)
            # Rebuild the expression at the *copy's* position (operand
            # validity between def and use is guaranteed by invalidate);
            # the now-dead definition is removed by the trailing DCE.
            merged = Op(def_op.op, inst.dest, def_op.a, def_op.b)
            invalidate(inst.dest)
            result.append(merged)
            if isinstance(inst.dest, FVar):
                register(inst.dest.name, len(result) - 1, merged)
            continue
        invalidate(inst.dest)
        result.append(inst)
        if isinstance(inst.dest, FVar) and inst.op != "=":
            register(inst.dest.name, len(result) - 1, inst)
    return result


# ---------------------------------------------------------------------------
# Dead code elimination.
# ---------------------------------------------------------------------------


class _Liveness:
    """Tracks live locations during the backward DCE walk.

    Output-vector elements are live-by-default (they are the result),
    so for them we track the *dead* set — constant indices whose
    current value is provably overwritten before anyone reads it.
    Temporary-vector elements are dead-by-default, so for them we track
    the live set (None meaning "all live", after a symbolic read).
    """

    def __init__(self, output_vecs: set[str]):
        self.output_vecs = output_vecs
        self.scalars: set[str] = set()
        # temp vec -> set of live constant indices; None means "all".
        self.vec_elems: dict[str, set[int] | None] = {}
        # output vec -> set of dead constant indices.
        self.dead_out: dict[str, set[int]] = {}

    def copy(self) -> "_Liveness":
        clone = _Liveness(self.output_vecs)
        clone.scalars = set(self.scalars)
        clone.vec_elems = {
            vec: None if elems is None else set(elems)
            for vec, elems in self.vec_elems.items()
        }
        clone.dead_out = {vec: set(dead)
                          for vec, dead in self.dead_out.items()}
        return clone

    def merge(self, other: "_Liveness") -> None:
        """Union of liveness (= intersection of output dead sets)."""
        self.scalars |= other.scalars
        for vec, elems in other.vec_elems.items():
            if elems is None or self.vec_elems.get(vec, set()) is None:
                self.vec_elems[vec] = None
            else:
                self.vec_elems.setdefault(vec, set()).update(elems)
        for vec in list(self.dead_out):
            self.dead_out[vec] &= other.dead_out.get(vec, set())

    def is_live(self, loc: FVar | VecRef) -> bool:
        if isinstance(loc, FVar):
            return loc.name in self.scalars
        if loc.vec in self.output_vecs:
            index = loc.index.as_const()
            if index is None:
                return True
            return index not in self.dead_out.get(loc.vec, set())
        elems = self.vec_elems.get(loc.vec)
        if elems is None:
            return loc.vec in self.vec_elems
        index = loc.index.as_const()
        return index is None or index in elems

    def kill(self, loc: FVar | VecRef) -> None:
        if isinstance(loc, FVar):
            self.scalars.discard(loc.name)
            return
        index = loc.index.as_const()
        if loc.vec in self.output_vecs:
            if index is not None:
                self.dead_out.setdefault(loc.vec, set()).add(index)
            return
        elems = self.vec_elems.get(loc.vec)
        if index is not None and elems is not None:
            elems.discard(index)

    def use(self, operand: Operand) -> None:
        if isinstance(operand, FVar):
            self.scalars.add(operand.name)
            return
        if not isinstance(operand, VecRef):
            return
        index = operand.index.as_const()
        if operand.vec in self.output_vecs:
            dead = self.dead_out.get(operand.vec)
            if dead:
                if index is None:
                    dead.clear()
                else:
                    dead.discard(index)
            return
        elems = self.vec_elems.get(operand.vec, set())
        if index is None or elems is None:
            self.vec_elems[operand.vec] = None
        else:
            elems.add(index)
            self.vec_elems[operand.vec] = elems


def _eliminate_dead_code(program: Program) -> list[Instr]:
    output_vecs = {
        info.name for info in program.vectors.values()
        if info.kind == VEC_OUTPUT
    }
    live = _Liveness(output_vecs)
    body, _ = _dce_block(program.body, live)
    return body


def _dce_block(body: list[Instr],
               live: _Liveness) -> tuple[list[Instr], _Liveness]:
    kept_reversed: list[Instr] = []
    for inst in reversed(body):
        if isinstance(inst, Op):
            if not live.is_live(inst.dest):
                continue
            live.kill(inst.dest)
            for operand in inst.operands():
                live.use(operand)
            kept_reversed.append(inst)
        elif isinstance(inst, Loop):
            # Anything read inside the loop may be live across
            # iterations, so seed the body's live-in with its own reads.
            loop_live = live.copy()
            for op in iter_ops(inst.body):
                for operand in op.operands():
                    loop_live.use(operand)
            new_body, after = _dce_block(inst.body, loop_live)
            live.merge(after)
            if new_body:
                kept_reversed.append(
                    Loop(inst.var, inst.count, new_body, unroll=inst.unroll)
                )
        else:
            kept_reversed.append(inst)
    return list(reversed(kept_reversed)), live


# ---------------------------------------------------------------------------
# The pass pipeline: named passes with size/time records and an
# optional per-pass translation-validation oracle.
# ---------------------------------------------------------------------------


@dataclass
class PassRecord:
    """What one optimizer pass did to the program.

    Sizes are static i-code statement counts; ``scratch_in``/``out``
    are temp-array bytes; ``micros`` is the pass's own wall-clock cost
    (validation time excluded, so records stay comparable whether or
    not the oracle is on); ``validated`` says the translation-
    validation oracle checked this pass's output.
    """

    name: str
    icode_in: int
    icode_out: int
    temps_in: int
    temps_out: int
    scratch_in: int
    scratch_out: int
    micros: int
    validated: bool = False
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "icode_in": self.icode_in,
            "icode_out": self.icode_out,
            "temps_in": self.temps_in,
            "temps_out": self.temps_out,
            "scratch_in": self.scratch_in,
            "scratch_out": self.scratch_out,
            "micros": self.micros,
            "validated": self.validated,
            "detail": self.detail,
        }

    def describe(self) -> str:
        text = (
            f"{self.name:<14} icode {self.icode_in:>7} -> "
            f"{self.icode_out:>7}  temps {self.temps_in:>3} -> "
            f"{self.temps_out:>3}  scratch {self.scratch_in:>9} -> "
            f"{self.scratch_out:>9} B  {self.micros:>7} us"
        )
        if self.validated:
            text += "  [validated]"
        if self.detail:
            text += f"  ({self.detail})"
        return text


#: Per-pass validation is skipped when ``in_size * statements``
#: exceeds this: above it one signature derivation takes minutes, and
#: resource bombs must be rejected by the limits checks promptly, not
#: after an interpreter marathon.
VALIDATE_COST_CAP = 2_000_000


class PassPipeline:
    """Runs named passes over one program, recording each one.

    With ``validate=True`` the pipeline snapshots the dense matrix the
    program denotes (via :func:`repro.core.validate.program_signature`)
    before the first pass and re-derives it after every pass, raising
    :class:`~repro.core.errors.SplValidationError` the moment a pass
    changes the denotation — compilation aborts with a typed error
    instead of emitting miscompiled code.

    Deriving one signature costs roughly ``in_size`` interpreter runs
    over the whole program, so validation is capped: programs whose
    ``in_size * statements`` product exceeds
    :data:`VALIDATE_COST_CAP` skip it (their records show
    ``validated=False``) rather than stalling compilation for minutes
    — which would also keep resource-limit bombs from being rejected
    promptly.  The fuzz corpus and the test programs sit far below
    the cap.
    """

    def __init__(self, program: Program, *, validate: bool = False):
        self.program = program
        cost = program.in_size \
            * max(1, count_dynamic_statements(program.body))
        self.validate = validate and cost <= VALIDATE_COST_CAP
        self.records: list[PassRecord] = []
        self._signature = None
        if self.validate:
            from repro.core import validate as _validate

            self._signature = _validate.program_signature(program)

    def run(self, name: str, pass_fn, *, detail=None) -> None:
        """Execute ``pass_fn(program)``, recording sizes and timing.

        ``detail`` renders the pass's return value into the record's
        detail string; by default non-trivial returns (ints, stats
        objects) are stringified.
        """
        import time as _time

        program = self.program
        icode_in = count_statements(program.body)
        temps_in = len(program.temp_vectors())
        scratch_in = program.scratch_bytes()
        started = _time.perf_counter()
        result = pass_fn(program)
        micros = int((_time.perf_counter() - started) * 1e6)
        validated = False
        if self.validate:
            from repro.core import validate as _validate

            self._signature = _validate.check_pass(
                program, self._signature, name
            )
            validated = True
        text = ""
        if detail is not None:
            text = detail(result)
        elif isinstance(result, (int, str)) and not isinstance(result, bool):
            if result != 0 and result != "":
                text = str(result)
        self.records.append(PassRecord(
            name=name,
            icode_in=icode_in,
            icode_out=count_statements(program.body),
            temps_in=temps_in,
            temps_out=len(program.temp_vectors()),
            scratch_in=scratch_in,
            scratch_out=program.scratch_bytes(),
            micros=micros,
            validated=validated,
            detail=text,
        ))
