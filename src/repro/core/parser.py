"""Program-level parser for SPL (phase 1 of the compiler, Section 3.1).

An SPL program is a sequence of:

* compiler directives — lines starting with ``#``;
* ``(define name formula)`` — name assignment;
* ``(template pattern [condition] (i-code))`` — template definition;
* bare formulas — each becomes one generated subroutine.

Formulas are returned as closed ASTs: references to ``define``d names
are substituted at parse time (the defined subtree keeps the ``#unroll``
state that was active when it was defined, which is how the paper's
``I64F2`` example selectively unrolls an inner formula).

Robustness: formula nesting is bounded (a ``(((((...`` bomb yields a
typed :class:`~repro.core.errors.SplResourceError`, never a Python
``RecursionError``), and ``parse_program(recover=True)`` resynchronizes
at top-level S-expression boundaries after an error so one file can
report every diagnostic, not just the first.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import icode_parser, lexer, scalars
from repro.core.errors import (
    SplError,
    SplNameError,
    SplResourceError,
    SplSyntaxError,
)
from repro.core.lexer import TokenStream
from repro.core.limits import CODE_DEPTH, DEFAULT_LIMITS
from repro.core.nodes import (
    Compose,
    DiagonalLit,
    DirectSum,
    Formula,
    MatrixLit,
    Param,
    PermutationLit,
    Tensor,
)
from repro.core.templates import Template, TemplateTable

_OPERATOR_CLASSES = {
    "compose": Compose,
    "tensor": Tensor,
    "direct-sum": DirectSum,
}

_LITERAL_HEADS = ("matrix", "diagonal", "permutation")

DATATYPES = ("real", "complex")
LANGUAGES = ("c", "cjit", "fortran", "python", "numpy")


@dataclass
class DirectiveState:
    """The directive context in effect at some point of the program."""

    subname: str | None = None
    datatype: str = "complex"
    codetype: str | None = None  # None: follow datatype
    language: str = "fortran"
    unroll: bool = False


@dataclass
class FormulaUnit:
    """One top-level formula together with its directive context."""

    formula: Formula
    name: str
    datatype: str
    codetype: str
    language: str
    line: int = 0  # source line of the formula's first token


@dataclass
class ParsedProgram:
    units: list[FormulaUnit] = field(default_factory=list)
    defines: dict[str, Formula] = field(default_factory=dict)
    templates: list[Template] = field(default_factory=list)
    #: Diagnostics collected in ``recover`` mode (empty otherwise —
    #: without recovery the first error raises).
    errors: list[SplError] = field(default_factory=list)


@dataclass
class _ParseContext:
    """Shared knobs threaded through the recursive-descent routines."""

    defines: dict[str, Formula]
    max_depth: int

    def check_depth(self, depth: int, token: lexer.Token) -> None:
        if depth > self.max_depth:
            raise SplResourceError(
                f"formula nesting exceeds max_formula_depth="
                f"{self.max_depth} levels",
                line=token.line, col=token.col or None, code=CODE_DEPTH,
                limit_name="max_formula_depth",
                limit=self.max_depth, actual=depth,
            )


def parse_program(source: str,
                  templates: TemplateTable | None = None,
                  defines: dict[str, Formula] | None = None, *,
                  recover: bool = False,
                  max_depth: int | None = None) -> ParsedProgram:
    """Parse a whole SPL program.

    Templates are appended to ``templates`` (if given) as they are
    parsed, so formulas later in the same program can use them.

    With ``recover=True``, an error does not raise: it is recorded in
    ``ParsedProgram.errors`` and parsing resynchronizes at the next
    top-level S-expression (or directive line), so a single run reports
    every independent diagnostic in the file.
    """
    program = ParsedProgram(defines=dict(defines or {}))
    try:
        stream = TokenStream(lexer.tokenize(source))
    except SplError as exc:
        if not recover:
            raise
        program.errors.append(exc)
        return program
    context = _ParseContext(
        defines=program.defines,
        max_depth=max_depth or DEFAULT_LIMITS.max_formula_depth,
    )
    state = DirectiveState()
    counter = 0
    while not stream.at_eof():
        token = stream.peek(skip_newlines=True)
        try:
            if token.kind == lexer.DIRECTIVE:
                stream.next(skip_newlines=True)
                _apply_directive(token.value, state, token.line)
                continue
            item = _parse_item(stream, context, state)
        except SplError as exc:
            if not recover:
                raise
            program.errors.append(exc)
            _resynchronize(stream, token)
            continue
        if item is None:
            continue
        if isinstance(item, Template):
            program.templates.append(item)
            if templates is not None:
                templates.add(item)
            continue
        name = state.subname or f"spl_{counter}"
        state.subname = None
        counter += 1
        program.units.append(
            FormulaUnit(
                formula=item,
                name=name,
                datatype=state.datatype,
                codetype=state.codetype or state.datatype,
                language=state.language,
                line=token.line,
            )
        )
    return program


def _resynchronize(stream: TokenStream, failed: lexer.Token) -> None:
    """Skip past the item that failed to parse.

    Recovery boundary: if the failed item opened with ``(``, skip its
    whole balanced S-expression (or to EOF if unbalanced); otherwise
    skip to the end of the current line.  Afterwards the stream is at a
    top-level position again and parsing can continue.
    """
    # The error may have consumed an arbitrary amount of the stream;
    # scanning forward from the current position is always safe because
    # tokens before it already failed to form an item.
    if failed.kind != lexer.LPAREN:
        while True:
            token = stream.next()
            if token.kind in (lexer.NEWLINE, lexer.EOF):
                return
    depth = 0
    started = False
    while True:
        token = stream.next()
        if token.kind == lexer.EOF:
            return
        if token.kind == lexer.LPAREN:
            depth += 1
            started = True
        elif token.kind == lexer.RPAREN:
            depth -= 1
            if started and depth <= 0:
                return
        elif started and depth <= 0 and token.kind == lexer.NEWLINE:
            return


def parse_formula_text(source: str,
                       defines: dict[str, Formula] | None = None, *,
                       max_depth: int | None = None) -> Formula:
    """Parse a single formula from text (convenience for tests/tools)."""
    stream = TokenStream(lexer.tokenize(source))
    context = _ParseContext(
        defines=dict(defines or {}),
        max_depth=max_depth or DEFAULT_LIMITS.max_formula_depth,
    )
    formula = _parse_formula(stream, context, DirectiveState())
    trailing = stream.peek(skip_newlines=True)
    if trailing.kind != lexer.EOF:
        raise SplSyntaxError(
            f"unexpected {trailing.value!r} after formula",
            line=trailing.line, col=trailing.col or None,
        )
    return formula


def _apply_directive(text: str, state: DirectiveState, line: int) -> None:
    parts = text.split()
    if not parts:
        raise SplSyntaxError("empty compiler directive", line=line)
    head, args = parts[0].lower(), parts[1:]
    if head == "subname":
        if len(args) != 1:
            raise SplSyntaxError("#subname takes one argument", line=line)
        state.subname = args[0]
    elif head == "datatype":
        value = _one_of(args, DATATYPES, "#datatype", line)
        state.datatype = value
    elif head == "codetype":
        value = _one_of(args, DATATYPES, "#codetype", line)
        state.codetype = value
    elif head == "language":
        value = _one_of(args, LANGUAGES, "#language", line)
        state.language = value
    elif head == "unroll":
        value = _one_of(args, ("on", "off"), "#unroll", line)
        state.unroll = value == "on"
    else:
        raise SplNameError(f"unknown compiler directive #{head}", line=line)


def _one_of(args: list[str], allowed: tuple[str, ...], what: str,
            line: int) -> str:
    if len(args) != 1 or args[0].lower() not in allowed:
        raise SplSyntaxError(
            f"{what} takes one of {', '.join(allowed)}", line=line
        )
    return args[0].lower()


def _parse_item(stream: TokenStream, context: _ParseContext,
                state: DirectiveState):
    token = stream.peek(skip_newlines=True)
    if token.kind != lexer.LPAREN:
        # A bare name can be a formula by itself.
        if token.kind == lexer.NAME:
            return _parse_formula(stream, context, state)
        raise SplSyntaxError(
            f"expected a formula or definition, found {token.value!r}",
            line=token.line, col=token.col or None,
        )
    saved = stream.position
    stream.next(skip_newlines=True)
    head = stream.peek(skip_newlines=True)
    if head.kind == lexer.NAME and head.value.lower() == "define":
        stream.next(skip_newlines=True)
        name = stream.expect(lexer.NAME, skip_newlines=True)
        formula = _parse_formula(stream, context, state)
        stream.expect(lexer.RPAREN, skip_newlines=True)
        context.defines[name.value] = formula.with_unroll(
            True if state.unroll else formula.unroll
        )
        return None
    if head.kind == lexer.NAME and head.value.lower() == "template":
        stream.next(skip_newlines=True)
        template = _parse_template(stream)
        stream.expect(lexer.RPAREN, skip_newlines=True)
        return template
    stream.seek(saved)
    return _parse_formula(stream, context, state)


def _parse_template(stream: TokenStream) -> Template:
    pattern = icode_parser.parse_pattern(stream)
    condition = None
    if stream.peek(skip_newlines=True).kind == lexer.LBRACKET:
        condition = icode_parser.parse_condition(stream)
    body = icode_parser.parse_icode_block(stream)
    return Template(pattern=pattern, condition=condition, body=body)


def _parse_formula(stream: TokenStream, context: _ParseContext,
                   state: DirectiveState) -> Formula:
    formula = _parse_formula_inner(stream, context, 0)
    if state.unroll and formula.unroll is None:
        formula = formula.with_unroll(True)
    return formula


def _parse_formula_inner(stream: TokenStream, context: _ParseContext,
                         depth: int) -> Formula:
    token = stream.next(skip_newlines=True)
    context.check_depth(depth, token)
    if token.kind == lexer.NAME:
        if token.value in context.defines:
            return context.defines[token.value]
        raise SplNameError(f"undefined symbol {token.value!r}",
                           line=token.line, col=token.col or None)
    if token.kind != lexer.LPAREN:
        raise SplSyntaxError(
            f"expected a formula, found {token.value!r}",
            line=token.line, col=token.col or None,
        )
    head = stream.expect(lexer.NAME, skip_newlines=True)
    name = head.value
    lowered = name.lower()
    if lowered == "direct" and stream.peek().kind == lexer.OP \
            and stream.peek().value == "-":
        stream.next()
        tail = stream.expect(lexer.NAME)
        if tail.value.lower() != "sum":
            raise SplSyntaxError(
                f"unknown operation direct-{tail.value}",
                line=tail.line, col=tail.col or None,
            )
        lowered = "direct-sum"
    if lowered in _OPERATOR_CLASSES:
        return _parse_operator(lowered, head, stream, context, depth)
    if lowered in _LITERAL_HEADS:
        return _parse_literal(lowered, stream)
    return _parse_param(name, stream, context, depth)


def _parse_operator(op: str, head: lexer.Token, stream: TokenStream,
                    context: _ParseContext, depth: int) -> Formula:
    cls = _OPERATOR_CLASSES[op]
    children: list[Formula] = []
    while stream.peek(skip_newlines=True).kind != lexer.RPAREN:
        children.append(_parse_formula_inner(stream, context, depth + 1))
    stream.expect(lexer.RPAREN, skip_newlines=True)
    if len(children) < 2:
        raise SplSyntaxError(f"({op} ...) needs at least two operands",
                             line=head.line, col=head.col or None)
    result = children[-1]
    for child in reversed(children[:-1]):
        result = cls(left=child, right=result)
    return result


def _parse_literal(kind: str, stream: TokenStream) -> Formula:
    if kind == "matrix":
        rows = []
        while stream.peek(skip_newlines=True).kind == lexer.LPAREN:
            rows.append(_parse_scalar_row(stream))
        stream.expect(lexer.RPAREN, skip_newlines=True)
        return MatrixLit(rows=tuple(rows))
    if kind == "diagonal":
        values = _parse_scalar_row(stream)
        stream.expect(lexer.RPAREN, skip_newlines=True)
        return DiagonalLit(values=values)
    # permutation
    stream.expect(lexer.LPAREN, skip_newlines=True)
    entries = []
    while stream.peek(skip_newlines=True).kind == lexer.NUMBER:
        entries.append(int(stream.next(skip_newlines=True).value))
    stream.expect(lexer.RPAREN, skip_newlines=True)
    stream.expect(lexer.RPAREN, skip_newlines=True)
    return PermutationLit(perm=tuple(entries))


def _parse_scalar_row(stream: TokenStream) -> tuple:
    stream.expect(lexer.LPAREN, skip_newlines=True)
    values = []
    while stream.peek(skip_newlines=True).kind != lexer.RPAREN:
        # Skip newlines between elements inside a literal row.
        while stream.match(lexer.NEWLINE):
            pass
        values.append(scalars.parse_scalar_element(stream))
    stream.expect(lexer.RPAREN, skip_newlines=True)
    return tuple(values)


def _parse_param(name: str, stream: TokenStream, context: _ParseContext,
                 depth: int) -> Formula:
    params: list[int] = []
    children: list[Formula] = []
    while True:
        token = stream.peek(skip_newlines=True)
        if token.kind == lexer.RPAREN:
            stream.next(skip_newlines=True)
            break
        if token.kind == lexer.NUMBER:
            stream.next(skip_newlines=True)
            if any(c in token.value for c in ".eE"):
                raise SplSyntaxError(
                    "parameters of a parameterized matrix must be integers",
                    line=token.line, col=token.col or None,
                )
            params.append(int(token.value))
        elif token.kind in (lexer.NAME, lexer.LPAREN) and not params:
            # Formula arguments: a user-defined operation such as the
            # template-introduced (vec A m). Only supported for
            # templates; here they can only be defined names.
            children.append(_parse_formula_inner(stream, context, depth + 1))
        else:
            raise SplSyntaxError(
                f"invalid parameter {token.value!r} for ({name} ...)",
                line=token.line, col=token.col or None,
            )
    if children:
        raise SplSyntaxError(
            f"({name} ...) with formula arguments is not a predefined "
            "operation"
        )
    return Param(name=name.upper(), params=tuple(params))
