"""Program-level parser for SPL (phase 1 of the compiler, Section 3.1).

An SPL program is a sequence of:

* compiler directives — lines starting with ``#``;
* ``(define name formula)`` — name assignment;
* ``(template pattern [condition] (i-code))`` — template definition;
* bare formulas — each becomes one generated subroutine.

Formulas are returned as closed ASTs: references to ``define``d names
are substituted at parse time (the defined subtree keeps the ``#unroll``
state that was active when it was defined, which is how the paper's
``I64F2`` example selectively unrolls an inner formula).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core import icode_parser, lexer, scalars
from repro.core.errors import SplNameError, SplSyntaxError
from repro.core.lexer import TokenStream
from repro.core.nodes import (
    Compose,
    DiagonalLit,
    DirectSum,
    Formula,
    MatrixLit,
    Param,
    PermutationLit,
    Tensor,
)
from repro.core.templates import Template, TemplateTable

_OPERATOR_CLASSES = {
    "compose": Compose,
    "tensor": Tensor,
    "direct-sum": DirectSum,
}

_LITERAL_HEADS = ("matrix", "diagonal", "permutation")

DATATYPES = ("real", "complex")
LANGUAGES = ("c", "fortran", "python", "numpy")


@dataclass
class DirectiveState:
    """The directive context in effect at some point of the program."""

    subname: str | None = None
    datatype: str = "complex"
    codetype: str | None = None  # None: follow datatype
    language: str = "fortran"
    unroll: bool = False


@dataclass
class FormulaUnit:
    """One top-level formula together with its directive context."""

    formula: Formula
    name: str
    datatype: str
    codetype: str
    language: str


@dataclass
class ParsedProgram:
    units: list[FormulaUnit] = field(default_factory=list)
    defines: dict[str, Formula] = field(default_factory=dict)
    templates: list[Template] = field(default_factory=list)


def parse_program(source: str,
                  templates: TemplateTable | None = None,
                  defines: dict[str, Formula] | None = None) -> ParsedProgram:
    """Parse a whole SPL program.

    Templates are appended to ``templates`` (if given) as they are
    parsed, so formulas later in the same program can use them.
    """
    stream = TokenStream(lexer.tokenize(source))
    program = ParsedProgram(defines=dict(defines or {}))
    state = DirectiveState()
    counter = 0
    while not stream.at_eof():
        token = stream.peek(skip_newlines=True)
        if token.kind == lexer.DIRECTIVE:
            stream.next(skip_newlines=True)
            _apply_directive(token.value, state, token.line)
            continue
        item = _parse_item(stream, program.defines, state)
        if item is None:
            continue
        if isinstance(item, Template):
            program.templates.append(item)
            if templates is not None:
                templates.add(item)
            continue
        name = state.subname or f"spl_{counter}"
        state.subname = None
        counter += 1
        program.units.append(
            FormulaUnit(
                formula=item,
                name=name,
                datatype=state.datatype,
                codetype=state.codetype or state.datatype,
                language=state.language,
            )
        )
    return program


def parse_formula_text(source: str,
                       defines: dict[str, Formula] | None = None) -> Formula:
    """Parse a single formula from text (convenience for tests/tools)."""
    stream = TokenStream(lexer.tokenize(source))
    formula = _parse_formula(stream, dict(defines or {}), DirectiveState())
    trailing = stream.peek(skip_newlines=True)
    if trailing.kind != lexer.EOF:
        raise SplSyntaxError(
            f"unexpected {trailing.value!r} after formula", line=trailing.line
        )
    return formula


def _apply_directive(text: str, state: DirectiveState, line: int) -> None:
    parts = text.split()
    if not parts:
        raise SplSyntaxError("empty compiler directive", line=line)
    head, args = parts[0].lower(), parts[1:]
    if head == "subname":
        if len(args) != 1:
            raise SplSyntaxError("#subname takes one argument", line=line)
        state.subname = args[0]
    elif head == "datatype":
        value = _one_of(args, DATATYPES, "#datatype", line)
        state.datatype = value
    elif head == "codetype":
        value = _one_of(args, DATATYPES, "#codetype", line)
        state.codetype = value
    elif head == "language":
        value = _one_of(args, LANGUAGES, "#language", line)
        state.language = value
    elif head == "unroll":
        value = _one_of(args, ("on", "off"), "#unroll", line)
        state.unroll = value == "on"
    else:
        raise SplNameError(f"unknown compiler directive #{head}", line=line)


def _one_of(args: list[str], allowed: tuple[str, ...], what: str,
            line: int) -> str:
    if len(args) != 1 or args[0].lower() not in allowed:
        raise SplSyntaxError(
            f"{what} takes one of {', '.join(allowed)}", line=line
        )
    return args[0].lower()


def _parse_item(stream: TokenStream, defines: dict[str, Formula],
                state: DirectiveState):
    token = stream.peek(skip_newlines=True)
    if token.kind != lexer.LPAREN:
        # A bare name can be a formula by itself.
        if token.kind == lexer.NAME:
            return _parse_formula(stream, defines, state)
        raise SplSyntaxError(
            f"expected a formula or definition, found {token.value!r}",
            line=token.line,
        )
    saved = stream.position
    stream.next(skip_newlines=True)
    head = stream.peek(skip_newlines=True)
    if head.kind == lexer.NAME and head.value.lower() == "define":
        stream.next(skip_newlines=True)
        name = stream.expect(lexer.NAME, skip_newlines=True)
        formula = _parse_formula(stream, defines, state)
        stream.expect(lexer.RPAREN, skip_newlines=True)
        defines[name.value] = formula.with_unroll(
            True if state.unroll else formula.unroll
        )
        return None
    if head.kind == lexer.NAME and head.value.lower() == "template":
        stream.next(skip_newlines=True)
        template = _parse_template(stream)
        stream.expect(lexer.RPAREN, skip_newlines=True)
        return template
    stream.seek(saved)
    return _parse_formula(stream, defines, state)


def _parse_template(stream: TokenStream) -> Template:
    pattern = icode_parser.parse_pattern(stream)
    condition = None
    if stream.peek(skip_newlines=True).kind == lexer.LBRACKET:
        condition = icode_parser.parse_condition(stream)
    body = icode_parser.parse_icode_block(stream)
    return Template(pattern=pattern, condition=condition, body=body)


def _parse_formula(stream: TokenStream, defines: dict[str, Formula],
                   state: DirectiveState) -> Formula:
    formula = _parse_formula_inner(stream, defines)
    if state.unroll and formula.unroll is None:
        formula = formula.with_unroll(True)
    return formula


def _parse_formula_inner(stream: TokenStream,
                         defines: dict[str, Formula]) -> Formula:
    token = stream.next(skip_newlines=True)
    if token.kind == lexer.NAME:
        if token.value in defines:
            return defines[token.value]
        raise SplNameError(f"undefined symbol {token.value!r}",
                           line=token.line)
    if token.kind != lexer.LPAREN:
        raise SplSyntaxError(
            f"expected a formula, found {token.value!r}", line=token.line
        )
    head = stream.expect(lexer.NAME, skip_newlines=True)
    name = head.value
    lowered = name.lower()
    if lowered == "direct" and stream.peek().kind == lexer.OP \
            and stream.peek().value == "-":
        stream.next()
        tail = stream.expect(lexer.NAME)
        if tail.value.lower() != "sum":
            raise SplSyntaxError(
                f"unknown operation direct-{tail.value}", line=tail.line
            )
        lowered = "direct-sum"
    if lowered in _OPERATOR_CLASSES:
        return _parse_operator(lowered, head.line, stream, defines)
    if lowered in _LITERAL_HEADS:
        return _parse_literal(lowered, stream)
    return _parse_param(name, stream, defines)


def _parse_operator(op: str, line: int, stream: TokenStream,
                    defines: dict[str, Formula]) -> Formula:
    cls = _OPERATOR_CLASSES[op]
    children: list[Formula] = []
    while stream.peek(skip_newlines=True).kind != lexer.RPAREN:
        children.append(_parse_formula_inner(stream, defines))
    stream.expect(lexer.RPAREN, skip_newlines=True)
    if len(children) < 2:
        raise SplSyntaxError(f"({op} ...) needs at least two operands",
                             line=line)
    result = children[-1]
    for child in reversed(children[:-1]):
        result = cls(left=child, right=result)
    return result


def _parse_literal(kind: str, stream: TokenStream) -> Formula:
    if kind == "matrix":
        rows = []
        while stream.peek(skip_newlines=True).kind == lexer.LPAREN:
            rows.append(_parse_scalar_row(stream))
        stream.expect(lexer.RPAREN, skip_newlines=True)
        return MatrixLit(rows=tuple(rows))
    if kind == "diagonal":
        values = _parse_scalar_row(stream)
        stream.expect(lexer.RPAREN, skip_newlines=True)
        return DiagonalLit(values=values)
    # permutation
    stream.expect(lexer.LPAREN, skip_newlines=True)
    entries = []
    while stream.peek(skip_newlines=True).kind == lexer.NUMBER:
        entries.append(int(stream.next(skip_newlines=True).value))
    stream.expect(lexer.RPAREN, skip_newlines=True)
    stream.expect(lexer.RPAREN, skip_newlines=True)
    return PermutationLit(perm=tuple(entries))


def _parse_scalar_row(stream: TokenStream) -> tuple:
    stream.expect(lexer.LPAREN, skip_newlines=True)
    values = []
    while stream.peek(skip_newlines=True).kind != lexer.RPAREN:
        # Skip newlines between elements inside a literal row.
        while stream.match(lexer.NEWLINE):
            pass
        values.append(scalars.parse_scalar_element(stream))
    stream.expect(lexer.RPAREN, skip_newlines=True)
    return tuple(values)


def _parse_param(name: str, stream: TokenStream,
                 defines: dict[str, Formula]) -> Formula:
    params: list[int] = []
    children: list[Formula] = []
    while True:
        token = stream.peek(skip_newlines=True)
        if token.kind == lexer.RPAREN:
            stream.next(skip_newlines=True)
            break
        if token.kind == lexer.NUMBER:
            stream.next(skip_newlines=True)
            if any(c in token.value for c in ".eE"):
                raise SplSyntaxError(
                    "parameters of a parameterized matrix must be integers",
                    line=token.line,
                )
            params.append(int(token.value))
        elif token.kind in (lexer.NAME, lexer.LPAREN) and not params:
            # Formula arguments: a user-defined operation such as the
            # template-introduced (vec A m). Only supported for
            # templates; here they can only be defined names.
            children.append(_parse_formula_inner(stream, defines))
        else:
            raise SplSyntaxError(
                f"invalid parameter {token.value!r} for ({name} ...)",
                line=token.line,
            )
    if children:
        raise SplSyntaxError(
            f"({name} ...) with formula arguments is not a predefined "
            "operation"
        )
    return Param(name=name.upper(), params=tuple(params))
