"""Pattern matching for the template mechanism (Section 3.2).

A pattern is an SPL formula that may contain pattern variables, all of
which end with an underscore:

* lower-case-initial variables (``n_``) match integer constants;
* upper-case-initial variables (``A_``) match whole sub-formulas.

"Pattern variables can not match undefined symbols" — defined symbols
are substituted by the parser, so by matching time every formula is
closed and this rule is automatic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import nodes
from repro.core.errors import SplTemplateError

Binding = int | nodes.Formula


@dataclass(frozen=True)
class PatInt:
    """A pattern variable matching an integer constant (``n_``)."""

    name: str


@dataclass(frozen=True)
class PatFormula:
    """A pattern variable matching any sub-formula (``A_``)."""

    name: str


@dataclass(frozen=True)
class PatParam:
    """Pattern over a parameterized matrix, e.g. ``(F n_)`` or ``(F 2)``."""

    name: str
    args: tuple[int | PatInt, ...]


@dataclass(frozen=True)
class PatOp:
    """Pattern over a matrix operation, e.g. ``(compose A_ B_)``.

    ``op`` is one of ``compose``, ``tensor``, ``direct-sum``.  N-ary
    patterns are associated right-to-left, like formulas.
    """

    op: str
    children: tuple["Pattern", ...]


Pattern = PatParam | PatOp | PatFormula

_OP_CLASSES = {
    "compose": nodes.Compose,
    "tensor": nodes.Tensor,
    "direct-sum": nodes.DirectSum,
}


def is_int_var(name: str) -> bool:
    return name.endswith("_") and name[0].islower()


def is_formula_var(name: str) -> bool:
    return name.endswith("_") and name[0].isupper()


def match(pattern: Pattern, formula: nodes.Formula) -> dict[str, Binding] | None:
    """Match ``formula`` against ``pattern``.

    Returns the bindings (pattern-variable name to integer or formula)
    on success, or None when the formula does not have the pattern's
    shape.  A variable occurring twice must bind consistently.
    """
    bindings: dict[str, Binding] = {}
    if _match(pattern, formula, bindings):
        return bindings
    return None


def _match(pattern: Pattern, formula: nodes.Formula,
           bindings: dict[str, Binding]) -> bool:
    if isinstance(pattern, PatFormula):
        return _bind(bindings, pattern.name, formula)
    if isinstance(pattern, PatParam):
        if not isinstance(formula, nodes.Param):
            return False
        if formula.name != pattern.name:
            return False
        if len(formula.params) != len(pattern.args):
            return False
        for arg, value in zip(pattern.args, formula.params):
            if isinstance(arg, PatInt):
                if not _bind(bindings, arg.name, value):
                    return False
            elif arg != value:
                return False
        return True
    if isinstance(pattern, PatOp):
        cls = _OP_CLASSES.get(pattern.op)
        if cls is None:
            raise SplTemplateError(f"unknown operation in pattern: {pattern.op}")
        if type(formula) is not cls:
            return False
        assert len(pattern.children) == 2
        return _match(pattern.children[0], formula.left, bindings) and _match(
            pattern.children[1], formula.right, bindings
        )
    raise SplTemplateError(f"malformed pattern {pattern!r}")


def _bind(bindings: dict[str, Binding], name: str, value: Binding) -> bool:
    if name in bindings:
        return bindings[name] == value
    bindings[name] = value
    return True


def pattern_to_spl(pattern: Pattern) -> str:
    """Render a pattern back to SPL-ish text (for error messages)."""
    if isinstance(pattern, PatFormula):
        return pattern.name
    if isinstance(pattern, PatParam):
        args = " ".join(
            a.name if isinstance(a, PatInt) else str(a) for a in pattern.args
        )
        return f"({pattern.name} {args})" if args else f"({pattern.name})"
    inner = " ".join(pattern_to_spl(c) for c in pattern.children)
    return f"({pattern.op} {inner})"
