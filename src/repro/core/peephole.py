"""Machine-dependent peephole optimizations (Section 3.4).

The paper describes two SPARC-specific transformations:

* unary minus on double operands is replaced by a subtraction from zero
  or a negative constant ("f2=0-f1" instead of "f2=-f1"), because SPARC
  negation is a single-precision instruction and switching FPU modes
  costs cycles;
* temporary variables are declared "automatic" so Fortran allocates
  them on the stack.

The first is an i-code rewrite implemented here; the second is a flag
honored by the Fortran backend.  Both default to on/off per target.
"""

from __future__ import annotations

from repro.core.icode import FConst, Instr, Loop, Op, Program


def avoid_unary_minus(program: Program) -> Program:
    """Rewrite ``dest = -a`` into ``dest = 0 - a`` (constants fold)."""
    program.body = _rewrite(program.body)
    return program


def _rewrite(body: list[Instr]) -> list[Instr]:
    result: list[Instr] = []
    for inst in body:
        if isinstance(inst, Loop):
            result.append(Loop(inst.var, inst.count, _rewrite(inst.body),
                               unroll=inst.unroll))
        elif isinstance(inst, Op) and inst.op == "neg":
            if isinstance(inst.a, FConst):
                result.append(Op("=", inst.dest, FConst(-inst.a.value)))
            else:
                result.append(Op("-", inst.dest, FConst(0.0), inst.a))
        else:
            result.append(inst)
    return result
