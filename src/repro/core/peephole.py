"""Machine-dependent peephole optimizations (Section 3.4).

The paper describes two SPARC-specific transformations:

* unary minus on double operands is replaced by a subtraction from zero
  or a negative constant ("f2=0-f1" instead of "f2=-f1"), because SPARC
  negation is a single-precision instruction and switching FPU modes
  costs cycles;
* temporary variables are declared "automatic" so Fortran allocates
  them on the stack.

The first is an i-code rewrite implemented here; the second is a flag
honored by the Fortran backend.  Both default to on/off per target.

This module also hosts the storage-level cleanups that run at the end
of the optimizer pipeline: :func:`prune_dead_temps` drops temp-vector
declarations nothing references any more, and :func:`reuse_temp_arrays`
performs interval-based scratch liveness analysis so temps with
non-overlapping live ranges share one allocation — a k-stage compose
plan then allocates max-live scratch instead of sum-of-stages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.icode import (
    FConst,
    Instr,
    Loop,
    Op,
    Program,
    VEC_TEMP,
    VecRef,
    iter_ops,
    map_operands,
)


def avoid_unary_minus(program: Program) -> Program:
    """Rewrite ``dest = -a`` into ``dest = 0 - a`` (constants fold)."""
    program.body = _rewrite(program.body)
    return program


def _rewrite(body: list[Instr]) -> list[Instr]:
    result: list[Instr] = []
    for inst in body:
        if isinstance(inst, Loop):
            result.append(Loop(inst.var, inst.count, _rewrite(inst.body),
                               unroll=inst.unroll))
        elif isinstance(inst, Op) and inst.op == "neg":
            if isinstance(inst.a, FConst):
                result.append(Op("=", inst.dest, FConst(-inst.a.value)))
            else:
                result.append(Op("-", inst.dest, FConst(0.0), inst.a))
        else:
            result.append(inst)
    return result


# ---------------------------------------------------------------------------
# Scratch storage cleanups.
# ---------------------------------------------------------------------------


def prune_dead_temps(program: Program) -> int:
    """Drop temp-vector declarations no instruction references."""
    referenced: set[str] = set()
    for op in iter_ops(program.body):
        for item in (op.dest, *op.operands()):
            if isinstance(item, VecRef):
                referenced.add(item.vec)
    dead = [name for name, info in program.vectors.items()
            if info.kind == VEC_TEMP and name not in referenced]
    for name in dead:
        del program.vectors[name]
    return len(dead)


@dataclass
class _Interval:
    """Live range of one temp, in top-level instruction indexes."""

    first: int
    last: int

    def overlaps(self, other: "_Interval") -> bool:
        return self.first <= other.last and other.first <= self.last


def reuse_temp_arrays(program: Program) -> int:
    """Share storage between temps whose live ranges never overlap.

    Liveness is interval-based at top-level instruction granularity:
    a temp is live from the first top-level instruction that mentions
    it through the last.  Two temps may share a slot only when their
    intervals are disjoint **and their element dtypes agree** — merging
    differently-typed arrays into one allocation is a latent aliasing
    hazard (a reinterpretation, not a reuse), so it is refused even
    though the sizes would line up.

    Returns the number of temp arrays eliminated by the merge.
    """
    intervals: dict[str, _Interval] = {}
    for idx, inst in enumerate(program.body):
        for op in iter_ops([inst]):
            for item in (op.dest, *op.operands()):
                if not isinstance(item, VecRef):
                    continue
                info = program.vectors.get(item.vec)
                if info is None or info.kind != VEC_TEMP:
                    continue
                interval = intervals.get(item.vec)
                if interval is None:
                    intervals[item.vec] = _Interval(idx, idx)
                else:
                    interval.last = idx
    # Greedy linear-scan assignment in order of first use: a slot is
    # reusable when every temp already in it has died before this one
    # is born (and the dtypes match).
    slots: list[list[str]] = []
    order = sorted(intervals, key=lambda name: intervals[name].first)
    for name in order:
        dtype = program.vectors[name].dtype
        placed = False
        for members in slots:
            if any(intervals[other].overlaps(intervals[name])
                   for other in members):
                continue
            if any(program.vectors[other].dtype != dtype
                   for other in members):
                continue
            members.append(name)
            placed = True
            break
        if not placed:
            slots.append([name])
    renaming: dict[str, str] = {}
    eliminated = 0
    for members in slots:
        representative = members[0]
        size = max(program.vectors[name].size for name in members)
        program.vectors[representative].size = size
        for name in members[1:]:
            renaming[name] = representative
            del program.vectors[name]
            eliminated += 1
    if renaming:
        def rename(operand):
            if isinstance(operand, VecRef) and operand.vec in renaming:
                return VecRef(renaming[operand.vec], operand.index)
            return operand

        program.body = map_operands(program.body, rename)
    return eliminated
