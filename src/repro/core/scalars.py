"""Constant scalar expressions.

Section 2.2: matrix elements "can be specified as constant scalar
expressions, which may contain function invocations and symbolic
constants like pi... All constant scalar expressions are evaluated at
compile-time."  This module implements that evaluation.

Grammar (infix, standard precedence)::

    scalar  := term (('+' | '-') term)*
    term    := factor (('*' | '/') factor)*
    factor  := ['-' | '+'] primary
    primary := NUMBER | 'pi' | NAME '(' scalar (',' scalar)* ')'
             | '(' scalar ')' | '(' scalar ',' scalar ')'

``(a, b)`` denotes the complex number ``a + b*i``.  ``w(n, k)`` (also
written ``w(n k)``) is the primitive root of unity
``exp(-2*pi*i/n) ** k`` — the twiddle-factor intrinsic of the paper.
"""

from __future__ import annotations

import cmath
import math
from typing import Callable

from repro.core import lexer
from repro.core.errors import SplSyntaxError
from repro.core.lexer import Token, TokenStream

Number = int | float | complex


def omega(n: int, k: int = 1) -> complex:
    """The root of unity ``w_n^k`` with ``w_n = exp(-2*pi*i/n)``.

    Components that are exactly 0 or +/-1 in exact arithmetic (k a
    multiple of n/4) are snapped, so that e.g. ``w_4^1`` is exactly
    ``-i`` — which lets the type transformation recognize
    multiplication by i and emit the swap-and-negate form.
    """
    if n == 0:
        raise ZeroDivisionError("w(0, k) is undefined")
    value = cmath.exp(-2j * math.pi * (k % n) / n)
    return complex(_snap(value.real), _snap(value.imag))


def _snap(component: float, tolerance: float = 1e-12) -> float:
    for exact in (0.0, 1.0, -1.0):
        if abs(component - exact) < tolerance:
            return exact
    return component


def simplify_number(value: Number) -> Number:
    """Collapse a numeric value to the narrowest sensible Python type."""
    if isinstance(value, complex):
        if value.imag == 0.0:
            value = value.real
        else:
            return value
    if isinstance(value, float) and value.is_integer() and abs(value) < 2**53:
        return int(value)
    return value


def _real_arg(name: str, value: Number) -> float:
    value = simplify_number(value)
    if isinstance(value, complex):
        raise SplSyntaxError(f"{name}() requires a real argument, got {value}")
    return float(value)


def _sqrt(x: Number) -> Number:
    x = simplify_number(x)
    if isinstance(x, complex) or x < 0:
        return cmath.sqrt(x)
    return math.sqrt(x)


_FUNCTIONS: dict[str, Callable[..., Number]] = {
    "sqrt": _sqrt,
    "cos": lambda x: math.cos(_real_arg("cos", x)),
    "sin": lambda x: math.sin(_real_arg("sin", x)),
    "tan": lambda x: math.tan(_real_arg("tan", x)),
    "exp": lambda x: cmath.exp(x) if isinstance(x, complex) else math.exp(x),
    "log": lambda x: math.log(_real_arg("log", x)),
    "w": lambda n, k=1: omega(int(_real_arg("w", n)), int(_real_arg("w", k))),
}

_CONSTANTS: dict[str, Number] = {
    "pi": math.pi,
    "e": math.e,
    "i": 1j,
}


def parse_scalar(stream: TokenStream) -> Number:
    """Parse one scalar constant expression and evaluate it."""
    value = _parse_sum(stream)
    return simplify_number(value)


def parse_scalar_element(stream: TokenStream) -> Number:
    """Parse one element of a matrix/diagonal literal.

    Elements are separated by whitespace, so top-level ``+``/``-`` would
    be ambiguous with the next element's sign: elements are parsed at
    *term* level (signs, products, quotients, function calls, complex
    pairs). Write sums inside parentheses: ``(1+2)``.
    """
    return simplify_number(_parse_term(stream))


def parse_scalar_primary(stream: TokenStream) -> Number:
    """Parse a single primary constant: a number, ``pi``, a function
    call, a parenthesized expression, or a complex pair ``(a, b)`` —
    without consuming any following infix operator.  Used for constant
    operands inside i-code statements, where a trailing ``*`` belongs
    to the four-tuple, not the constant.
    """
    return simplify_number(_parse_primary(stream))


def parse_scalar_text(text: str) -> Number:
    """Parse ``text`` as a single scalar constant expression."""
    stream = TokenStream(lexer.tokenize(text))
    value = parse_scalar(stream)
    trailing = stream.peek(skip_newlines=True)
    if trailing.kind != lexer.EOF:
        raise SplSyntaxError(
            f"unexpected {trailing.value!r} after scalar expression",
            line=trailing.line,
        )
    return value


def _parse_sum(stream: TokenStream) -> Number:
    value = _parse_term(stream)
    while True:
        token = stream.peek()
        if token.kind == lexer.OP and token.value in "+-":
            stream.next()
            rhs = _parse_term(stream)
            value = value + rhs if token.value == "+" else value - rhs
        else:
            return value


def _parse_term(stream: TokenStream) -> Number:
    value = _parse_factor(stream)
    while True:
        token = stream.peek()
        if token.kind == lexer.OP and token.value in "*/":
            stream.next()
            rhs = _parse_factor(stream)
            value = value * rhs if token.value == "*" else value / rhs
        else:
            return value


def _parse_factor(stream: TokenStream) -> Number:
    token = stream.peek()
    if token.kind == lexer.OP and token.value in "+-":
        stream.next()
        value = _parse_factor(stream)
        return -value if token.value == "-" else value
    return _parse_primary(stream)


def _parse_primary(stream: TokenStream) -> Number:
    token = stream.next()
    if token.kind == lexer.NUMBER:
        return _number_from_token(token)
    if token.kind == lexer.NAME:
        name = token.value.lower()
        if stream.peek().kind == lexer.LPAREN:
            return _parse_call(name, token, stream)
        if name in _CONSTANTS:
            return _CONSTANTS[name]
        raise SplSyntaxError(f"unknown scalar constant {token.value!r}",
                             line=token.line)
    if token.kind == lexer.LPAREN:
        value = _parse_sum(stream)
        if stream.match(lexer.COMMA):
            imag = _parse_sum(stream)
            stream.expect(lexer.RPAREN)
            return complex(_to_real(value, token), _to_real(imag, token))
        stream.expect(lexer.RPAREN)
        return value
    raise SplSyntaxError(
        f"expected a scalar expression, found {token.value!r}", line=token.line
    )


def _parse_call(name: str, name_token: Token, stream: TokenStream) -> Number:
    if name not in _FUNCTIONS:
        raise SplSyntaxError(f"unknown function {name!r}", line=name_token.line)
    stream.expect(lexer.LPAREN)
    args = [_parse_sum(stream)]
    # Arguments may be separated by commas or, as in the paper's W(n_ $r0)
    # style, by plain whitespace.
    while True:
        if stream.match(lexer.COMMA):
            args.append(_parse_sum(stream))
            continue
        if stream.peek().kind == lexer.RPAREN:
            break
        args.append(_parse_sum(stream))
    stream.expect(lexer.RPAREN)
    try:
        return _FUNCTIONS[name](*args)
    except TypeError as exc:
        raise SplSyntaxError(
            f"wrong number of arguments for {name}(): {exc}",
            line=name_token.line,
        ) from exc


def _number_from_token(token: Token) -> Number:
    text = token.value
    if any(ch in text for ch in ".eE"):
        return float(text)
    return int(text)


def _to_real(value: Number, token: Token) -> float:
    value = simplify_number(value)
    if isinstance(value, complex):
        raise SplSyntaxError(
            "components of a complex pair must be real", line=token.line
        )
    return float(value)
