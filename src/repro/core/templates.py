"""Templates: pattern + condition + i-code (Section 3.2).

A template gives the compiler the meaning of a formula shape.  Built-in
templates live in ``startup.spl`` which the compiler reads before any
user program; user templates defined later are matched first ("matching
is attempted in the reverse order of definition so that new templates
override earlier ones").

Template bodies are written in the paper's i-code mini-language.  The
classes in this module are the *template-level* representation; at
expansion time (:mod:`repro.core.codegen`) pattern variables are bound
and the body is instantiated into concrete :mod:`repro.core.icode`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core import nodes, pattern as pat
from repro.core.errors import SplSemanticError, SplTemplateError
from repro.core.icode import IExpr
from repro.core.scalars import Number

# ---------------------------------------------------------------------------
# Template-level integer expressions.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TConst:
    value: int


@dataclass(frozen=True)
class TPatVar:
    """An integer pattern variable, e.g. ``n_``."""

    name: str


@dataclass(frozen=True)
class TProperty:
    """A property of a formula pattern variable, e.g. ``A_.in_size``."""

    var: str
    attr: str  # "in_size" or "out_size"


@dataclass(frozen=True)
class TIndexVar:
    """A loop index (``$i0``) or integer scalar (``$r0``) reference."""

    name: str  # template-local name, e.g. "i0" or "r0"


@dataclass(frozen=True)
class TBinop:
    op: str  # + - * /
    a: "TExpr"
    b: "TExpr"


@dataclass(frozen=True)
class TNeg:
    a: "TExpr"


TExpr = TConst | TPatVar | TProperty | TIndexVar | TBinop | TNeg


class TemplateEnv:
    """Bindings available while instantiating one template body.

    ``ints`` maps pattern variables and properties (flattened to
    ``"A_.in_size"`` style keys) to integers; ``index_vars`` maps
    template-local ``$i``/``$r`` names to concrete :class:`IExpr`.
    """

    def __init__(self, ints: Mapping[str, int],
                 index_vars: dict[str, IExpr] | None = None):
        self.ints = dict(ints)
        self.index_vars = dict(index_vars or {})


def eval_texpr(expr: TExpr, env: TemplateEnv) -> IExpr:
    """Evaluate a template integer expression to a polynomial."""
    if isinstance(expr, TConst):
        return IExpr.const(expr.value)
    if isinstance(expr, TPatVar):
        if expr.name not in env.ints:
            raise SplTemplateError(f"unbound pattern variable {expr.name!r}")
        return IExpr.const(env.ints[expr.name])
    if isinstance(expr, TProperty):
        key = f"{expr.var}.{expr.attr}"
        if key not in env.ints:
            raise SplTemplateError(f"unbound property {key!r}")
        return IExpr.const(env.ints[key])
    if isinstance(expr, TIndexVar):
        if expr.name not in env.index_vars:
            raise SplTemplateError(f"unbound index variable ${expr.name}")
        return env.index_vars[expr.name]
    if isinstance(expr, TNeg):
        return -eval_texpr(expr.a, env)
    if isinstance(expr, TBinop):
        a = eval_texpr(expr.a, env)
        b = eval_texpr(expr.b, env)
        if expr.op == "+":
            return a + b
        if expr.op == "-":
            return a - b
        if expr.op == "*":
            return a * b
        if expr.op == "/":
            return _exact_div(a, b)
        raise SplTemplateError(f"unknown integer operator {expr.op!r}")
    raise SplTemplateError(f"malformed integer expression {expr!r}")


def eval_texpr_const(expr: TExpr, env: TemplateEnv) -> int:
    value = eval_texpr(expr, env).as_const()
    if value is None:
        raise SplTemplateError(
            "expression must be constant in this position"
        )
    return value


def _exact_div(a: IExpr, b: IExpr) -> IExpr:
    divisor = b.as_const()
    if divisor is None:
        raise SplTemplateError("division by a non-constant expression")
    if divisor == 0:
        raise SplTemplateError("division by zero in template expression")
    quotient_terms = []
    for mono, coeff in a.terms:
        if coeff % divisor != 0:
            raise SplTemplateError(
                f"non-exact integer division: ({a}) / {divisor}"
            )
        quotient_terms.append((mono, coeff // divisor))
    return IExpr(tuple(quotient_terms))


# ---------------------------------------------------------------------------
# Conditions (C-style boolean expressions in brackets).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CondCompare:
    op: str  # == != < <= > >=
    a: TExpr
    b: TExpr


@dataclass(frozen=True)
class CondAnd:
    a: "Condition"
    b: "Condition"


@dataclass(frozen=True)
class CondOr:
    a: "Condition"
    b: "Condition"


@dataclass(frozen=True)
class CondNot:
    a: "Condition"


Condition = CondCompare | CondAnd | CondOr | CondNot

_COMPARES = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def eval_condition(cond: Condition, env: TemplateEnv) -> bool:
    if isinstance(cond, CondCompare):
        return _COMPARES[cond.op](
            eval_texpr_const(cond.a, env), eval_texpr_const(cond.b, env)
        )
    if isinstance(cond, CondAnd):
        return eval_condition(cond.a, env) and eval_condition(cond.b, env)
    if isinstance(cond, CondOr):
        return eval_condition(cond.a, env) or eval_condition(cond.b, env)
    if isinstance(cond, CondNot):
        return not eval_condition(cond.a, env)
    raise SplTemplateError(f"malformed condition {cond!r}")


# ---------------------------------------------------------------------------
# Template-level operands and statements.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TScalar:
    """A float/complex scalar variable ``$f0``."""

    name: str


@dataclass(frozen=True)
class TVecElem:
    """A vector element ``$in(expr)``, ``$out(expr)`` or ``$t0(expr)``."""

    vec: str  # "in", "out", "t0", ...
    index: TExpr


@dataclass(frozen=True)
class TNumber:
    """A numeric constant operand (already evaluated)."""

    value: Number


@dataclass(frozen=True)
class TIntrinsic:
    """An intrinsic invocation such as ``W(n_, $r0)``."""

    name: str
    args: tuple[TExpr, ...]


TOperand = TScalar | TVecElem | TNumber | TIntrinsic


@dataclass
class TAssign:
    """``dest = a (op) b``, ``dest = a`` (op "=") or ``dest = -a`` (op "neg")."""

    op: str
    dest: TScalar | TVecElem
    a: TOperand
    b: TOperand | None = None


@dataclass
class TRAssign:
    """An integer scalar definition ``$r0 = expr``."""

    name: str
    value: TExpr


@dataclass
class TLoop:
    """``do $i0 = lo, hi`` ... ``end`` (bounds inclusive, as in Fortran)."""

    var: str
    lo: TExpr
    hi: TExpr
    body: list["TStmt"] = field(default_factory=list)


@dataclass
class TCall:
    """Expansion of a formula pattern variable with explicit vector plumbing.

    ``A_($in, $t0, in_offset, out_offset, in_stride, out_stride)``
    """

    var: str  # formula pattern variable, e.g. "A_"
    in_vec: str  # "in", "out" or a temp name
    out_vec: str
    in_offset: TExpr
    out_offset: TExpr
    in_stride: TExpr
    out_stride: TExpr


TStmt = TAssign | TRAssign | TLoop | TCall


# ---------------------------------------------------------------------------
# The template itself and the ordered table of templates.
# ---------------------------------------------------------------------------


@dataclass
class Template:
    """One ``(template pattern condition i-code)`` definition.

    A template may alternatively carry an ``expansion`` formula instead
    of an i-code body: matching formulas are replaced by the expansion
    and compiled through it.  This is the mechanism behind "templates
    can be generated by a search engine" (Section 3.2) — the large-size
    FFT search registers the best small-size formulas as templates for
    ``(F r)``, exactly as the paper's Section 4.2 describes.
    """

    pattern: pat.Pattern
    condition: Condition | None
    body: list[TStmt] = field(default_factory=list)
    source_name: str = "<user>"
    expansion: "nodes.Formula | None" = None

    def describe(self) -> str:
        return pat.pattern_to_spl(self.pattern)


class TemplateTable:
    """Ordered template store with reverse-order matching.

    Start-up templates are loaded first; templates defined later in a
    program override them because :meth:`find` scans newest-first.
    """

    def __init__(self) -> None:
        self._templates: list[Template] = []
        self._size_cache: dict[nodes.Formula, tuple[int, int]] = {}
        # Formulas whose size computation is in progress: a template
        # whose expansion (directly or transitively) contains the
        # formula it defines would otherwise recurse forever.
        self._sizing: set[nodes.Formula] = set()
        # Bumped on every mutation so compile caches can invalidate.
        self.version = 0

    def add(self, template: Template) -> None:
        self._templates.append(template)
        self._size_cache.clear()
        self.version += 1

    def __len__(self) -> int:
        return len(self._templates)

    def __iter__(self):
        return iter(self._templates)

    def find(self, formula: nodes.Formula) -> tuple[Template, dict] | None:
        """Find the newest template matching ``formula``.

        Returns ``(template, env_ints)`` where ``env_ints`` contains the
        integer pattern variables plus ``in_size``/``out_size``
        properties for every bound formula variable, or None.
        """
        for template in reversed(self._templates):
            bindings = pat.match(template.pattern, formula)
            if bindings is None:
                continue
            try:
                env = self._build_env(bindings)
                if template.condition is not None:
                    if not eval_condition(template.condition, TemplateEnv(env)):
                        continue
            except (SplTemplateError, SplSemanticError):
                # A condition that cannot be evaluated (e.g. a non-exact
                # division such as N_/s_ when s_ does not divide N_)
                # simply fails to match.
                continue
            return template, {"ints": env, "bindings": bindings}
        return None

    def _build_env(self, bindings: dict[str, pat.Binding]) -> dict[str, int]:
        env: dict[str, int] = {}
        for name, value in bindings.items():
            if isinstance(value, int):
                env[name] = value
            else:
                in_size, out_size = self.sizes(value)
                env[f"{name}.in_size"] = in_size
                env[f"{name}.out_size"] = out_size
        return env

    # -- size computation ----------------------------------------------------

    def sizes(self, formula: nodes.Formula) -> tuple[int, int]:
        """Compute (in_size, out_size), consulting templates for Params.

        Structural nodes (compose/tensor/direct-sum/literals) use their
        standard size rules; parameterized matrices use the predefined
        registry, falling back to inference from the matching template's
        i-code for user-defined matrices.
        """
        cached = self._size_cache.get(formula)
        if cached is not None:
            return cached
        if formula in self._sizing:
            raise SplTemplateError(
                f"recursive size inference for {formula.to_spl()}: a "
                f"template's expansion refers back to the formula it "
                f"defines"
            )
        self._sizing.add(formula)
        try:
            sizes = formula.size(self._param_sizes)
        finally:
            self._sizing.discard(formula)
        self._size_cache[formula] = sizes
        return sizes

    def _param_sizes(self, param: nodes.Param) -> tuple[int, int]:
        try:
            return nodes.default_param_sizes(param)
        except SplSemanticError:
            pass
        return self._infer_param_sizes(param)

    def _infer_param_sizes(self, param: nodes.Param) -> tuple[int, int]:
        found = self.find(param)
        if found is None:
            raise SplTemplateError(
                f"no template matches {param.to_spl()} and its size is "
                "not predefined"
            )
        template, info = found
        if template.expansion is not None:
            return self.sizes(template.expansion)
        env = TemplateEnv(info["ints"])
        bindings = info["bindings"]
        in_hi, out_hi = _body_extents(template.body, env, bindings, self)
        if in_hi < 0 or out_hi < 0:
            raise SplTemplateError(
                f"cannot infer vector sizes for {param.to_spl()} from "
                f"template {template.describe()}"
            )
        return in_hi + 1, out_hi + 1


def _body_extents(body: list[TStmt], env: TemplateEnv,
                  bindings: dict[str, pat.Binding],
                  table: TemplateTable) -> tuple[int, int]:
    """Max index referenced on $in and $out by a template body.

    This implements the paper's "the size of the input and output
    vectors ... is inferred by the SPL compiler from the template".
    Loop variables are tracked with their ranges so affine and
    polynomial subscripts are bounded by interval analysis.
    """
    in_hi = -1
    out_hi = -1
    ranges: dict[str, tuple[int, int]] = {}

    def eval_bound(expr: TExpr) -> tuple[int, int]:
        value = eval_texpr(expr, env)
        const = value.as_const()
        if const is not None:
            return const, const
        return value.interval(ranges)

    def visit(stmts: list[TStmt]) -> None:
        nonlocal in_hi, out_hi
        for stmt in stmts:
            if isinstance(stmt, TLoop):
                lo = eval_texpr_const(stmt.lo, env)
                hi = eval_texpr_const(stmt.hi, env)
                env.index_vars[stmt.var] = IExpr.var(stmt.var)
                ranges[stmt.var] = (min(lo, hi), max(lo, hi))
                visit(stmt.body)
                del env.index_vars[stmt.var]
                del ranges[stmt.var]
            elif isinstance(stmt, TRAssign):
                env.index_vars[stmt.name] = eval_texpr(stmt.value, env)
            elif isinstance(stmt, TAssign):
                for item in (stmt.dest, stmt.a, stmt.b):
                    if isinstance(item, TVecElem):
                        _, hi_idx = eval_bound(item.index)
                        if item.vec == "in":
                            in_hi = max(in_hi, hi_idx)
                        elif item.vec == "out":
                            out_hi = max(out_hi, hi_idx)
            elif isinstance(stmt, TCall):
                sub = bindings.get(stmt.var)
                if not isinstance(sub, nodes.Formula):
                    raise SplTemplateError(
                        f"call through unbound formula variable {stmt.var}"
                    )
                sub_in, sub_out = table.sizes(sub)
                for vec, ofs, strd, extent in (
                    (stmt.in_vec, stmt.in_offset, stmt.in_stride, sub_in),
                    (stmt.out_vec, stmt.out_offset, stmt.out_stride, sub_out),
                ):
                    if vec not in ("in", "out"):
                        continue
                    _, hi_ofs = eval_bound(ofs)
                    _, hi_strd = eval_bound(strd)
                    hi_idx = hi_ofs + (extent - 1) * hi_strd
                    if vec == "in":
                        in_hi = max(in_hi, hi_idx)
                    else:
                        out_hi = max(out_hi, hi_idx)

    visit(body)
    return in_hi, out_hi
