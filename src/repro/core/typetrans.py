"""Type transformation: complex arithmetic over pairs of reals (§3.3.3).

When the data type is complex but the generated code should use only
real numbers (the paper's ``#codetype real``, and always for C, which
the paper notes has no complex intrinsic type), every logical complex
element becomes two adjacent real elements (re at ``2k``, im at
``2k+1``), every complex scalar becomes two real scalars, and every
complex operation is expanded into real operations.

The expansion implements the optimization the paper highlights:
multiplication by ``i`` (or ``-i``) becomes a swap plus a negation
instead of four multiplies.
"""

from __future__ import annotations

from repro.core.errors import SplSemanticError
from repro.core.icode import (
    FConst,
    FVar,
    Instr,
    Intrinsic,
    Loop,
    Op,
    Operand,
    Program,
    VecRef,
    iter_ops,
)
from repro.core.scalars import Number


def complex_to_real(program: Program) -> Program:
    """Lower a complex-datatype program to real arithmetic in place."""
    if program.datatype != "complex" or program.element_width == 2:
        return program
    for op in iter_ops(program.body):
        for item in op.operands():
            if isinstance(item, Intrinsic):
                raise SplSemanticError(
                    "intrinsics must be evaluated before type transformation"
                )
    lowering = _Lowering(program)
    program.body = lowering.rewrite(program.body)
    program.element_width = 2
    for info in program.vectors.values():
        info.size *= 2
        info.dtype = "real"
    program.tables = {
        name: _interleave(values) for name, values in program.tables.items()
    }
    return program


def _interleave(values: tuple[Number, ...]) -> tuple[float, ...]:
    flat: list[float] = []
    for value in values:
        value = complex(value)
        flat.extend((value.real, value.imag))
    return tuple(flat)


class _Lowering:
    def __init__(self, program: Program):
        self.program = program
        self._counter = 0
        self._used = {
            item.name
            for op in iter_ops(program.body)
            for item in (op.dest, *op.operands())
            if isinstance(item, FVar)
        }

    def fresh(self) -> FVar:
        while True:
            name = f"f{self._counter}"
            self._counter += 1
            if name not in self._used:
                self._used.add(name)
                return FVar(name)

    def rewrite(self, body: list[Instr]) -> list[Instr]:
        result: list[Instr] = []
        for inst in body:
            if isinstance(inst, Loop):
                result.append(Loop(inst.var, inst.count,
                                   self.rewrite(inst.body),
                                   unroll=inst.unroll))
            elif isinstance(inst, Op):
                result.extend(self.rewrite_op(inst))
            else:
                result.append(inst)
        return result

    # -- helpers -------------------------------------------------------------

    def parts(self, operand: Operand) -> tuple[Operand, Operand]:
        """The (real, imaginary) component operands of ``operand``."""
        if isinstance(operand, FVar):
            return FVar(operand.name + "r"), FVar(operand.name + "i")
        if isinstance(operand, VecRef):
            base = operand.index * 2
            return VecRef(operand.vec, base), VecRef(operand.vec, base + 1)
        if isinstance(operand, FConst):
            value = complex(operand.value)
            return FConst(value.real), FConst(value.imag)
        raise SplSemanticError(f"cannot lower operand {operand}")

    def dest_parts(self, dest) -> tuple:
        re, im = self.parts(dest)
        return re, im

    def rewrite_op(self, op: Op) -> list[Instr]:
        dr, di = self.dest_parts(op.dest)
        if op.op == "=":
            ar, ai = self.parts(op.a)
            return [Op("=", dr, ar), Op("=", di, ai)]
        if op.op == "neg":
            ar, ai = self.parts(op.a)
            return [Op("neg", dr, ar), Op("neg", di, ai)]
        if op.op in ("+", "-"):
            ar, ai = self.parts(op.a)
            br, bi = self.parts(op.b)
            return [Op(op.op, dr, ar, br), Op(op.op, di, ai, bi)]
        if op.op == "*":
            return self.rewrite_mul(op, dr, di)
        if op.op == "/":
            return self.rewrite_div(op, dr, di)
        raise SplSemanticError(f"unknown operator {op.op!r}")

    def rewrite_mul(self, op: Op, dr, di) -> list[Instr]:
        a, b = op.a, op.b
        # Put a constant operand (if any) first.
        if isinstance(b, FConst) and not isinstance(a, FConst):
            a, b = b, a
        if isinstance(a, FConst):
            return self.mul_by_const(complex(a.value), b, dr, di)
        # General complex multiply: (ar+ai*i)(br+bi*i).
        ar, ai = self.parts(a)
        br, bi = self.parts(b)
        t1, t2, t3, t4 = (self.fresh() for _ in range(4))
        return [
            Op("*", t1, ar, br),
            Op("*", t2, ai, bi),
            Op("*", t3, ar, bi),
            Op("*", t4, ai, br),
            Op("-", dr, t1, t2),
            Op("+", di, t3, t4),
        ]

    def mul_by_const(self, c: complex, b: Operand, dr, di) -> list[Instr]:
        br, bi = self.parts(b)
        if c.imag == 0.0:
            if c.real == 1.0:
                return [Op("=", dr, br), Op("=", di, bi)]
            if c.real == -1.0:
                return [Op("neg", dr, br), Op("neg", di, bi)]
            cr = FConst(c.real)
            return [Op("*", dr, cr, br), Op("*", di, cr, bi)]
        if c.real == 0.0:
            if c.imag == 1.0:
                # i * b = -bi + br*i: a swap and a negation.
                t = self.fresh()
                return [Op("neg", t, bi), Op("=", di, br), Op("=", dr, t)]
            if c.imag == -1.0:
                t = self.fresh()
                return [Op("neg", t, br), Op("=", dr, bi), Op("=", di, t)]
            ci = FConst(c.imag)
            t = self.fresh()
            return [
                Op("*", t, FConst(-c.imag), bi),
                Op("*", di, ci, br),
                Op("=", dr, t),
            ]
        cr, ci = FConst(c.real), FConst(c.imag)
        t1, t2, t3, t4 = (self.fresh() for _ in range(4))
        return [
            Op("*", t1, cr, br),
            Op("*", t2, ci, bi),
            Op("*", t3, cr, bi),
            Op("*", t4, ci, br),
            Op("-", dr, t1, t2),
            Op("+", di, t3, t4),
        ]

    def rewrite_div(self, op: Op, dr, di) -> list[Instr]:
        if not isinstance(op.b, FConst):
            raise SplSemanticError(
                "complex division is only supported by a constant divisor"
            )
        divisor = complex(op.b.value)
        if divisor == 0:
            raise SplSemanticError("division by zero")
        return self.rewrite_mul(Op("*", op.dest, FConst(1.0 / divisor), op.a),
                                dr, di)
