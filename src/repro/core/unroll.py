"""Loop unrolling and scalarization (Section 3.3.1).

Loops are marked for unrolling during code generation (``#unroll``
directives, the global flag, or the ``-B`` size threshold); this pass
performs the expansion.  After full unrolling, temporary vectors whose
subscripts are all constant are replaced by scalar variables — "the use
of scalar variables tends to improve the quality of the code generated
by Fortran and C compilers".
"""

from __future__ import annotations

from repro.core.icode import (
    FVar,
    Instr,
    Loop,
    Op,
    Operand,
    Program,
    VEC_TEMP,
    VecRef,
    iter_ops,
    map_operands,
    subst_indices,
)
from repro.core.limits import CompileBudget


def unroll_loops(program: Program,
                 budget: CompileBudget | None = None) -> Program:
    """Fully expand every loop whose ``unroll`` flag is set.

    The expansion size is **pre-computed arithmetically** from the loop
    bounds and checked against ``max_unroll_statements`` before any
    statement is replicated — an unroll bomb (``#unroll`` on a large
    tensor formula) is rejected with a typed diagnostic instead of
    being discovered mid-OOM.
    """
    budget = budget or CompileBudget()
    total = unrolled_size(program.body)
    budget.check_unroll(total, _worst_construct(program))
    program.body = _unroll(program.body, budget)
    return program


def unrolled_size(body: list[Instr]) -> int:
    """Statement count of ``body`` after unrolling, from bounds alone."""
    total = 0
    for inst in body:
        if isinstance(inst, Loop):
            inner = unrolled_size(inst.body)
            total += inner * inst.count if inst.unroll else inner + 1
        else:
            total += 1
    return total


def _worst_construct(program: Program) -> str:
    """Name the single largest unroll expansion for the diagnostic."""
    worst_size = -1
    worst: Loop | None = None
    stack = list(program.body)
    while stack:
        inst = stack.pop()
        if not isinstance(inst, Loop):
            continue
        if inst.unroll:
            size = unrolled_size([inst])
            if size > worst_size:
                worst_size, worst = size, inst
        stack.extend(inst.body)
    if worst is None:
        return f"program {program.name}"
    return (f"program {program.name} (largest unrolled loop: "
            f"do ${worst.var} = 0, {worst.count - 1} -> "
            f"{worst_size} statements)")


def _unroll(body: list[Instr],
            budget: CompileBudget | None = None) -> list[Instr]:
    result: list[Instr] = []
    for inst in body:
        if isinstance(inst, Loop):
            inner = _unroll(inst.body, budget)
            if inst.unroll:
                for k in range(inst.count):
                    result.extend(subst_indices(inner, {inst.var: k}))
                    if budget is not None and k % 64 == 63:
                        budget.check_deadline("loop unrolling")
            else:
                result.append(Loop(inst.var, inst.count, inner,
                                   unroll=False))
        else:
            result.append(inst)
    return result


def partially_unroll(loop: Loop, factor: int) -> list[Instr]:
    """Unroll ``loop`` by ``factor`` (with a remainder loop if needed).

    Provided for experimentation with partial unrolling; the main
    pipeline uses full unrolling, as the paper's experiments do.
    """
    if factor <= 1:
        return [loop]
    main_trips = loop.count // factor
    remainder = loop.count % factor
    result: list[Instr] = []
    if main_trips > 0:
        replicated: list[Instr] = []
        for k in range(factor):
            shifted = subst_indices(
                loop.body,
                {loop.var: _scaled(loop.var, factor, k)},
            )
            replicated.extend(shifted)
        result.append(Loop(loop.var, main_trips, replicated, unroll=False))
    for k in range(remainder):
        result.extend(subst_indices(loop.body,
                                    {loop.var: main_trips * factor + k}))
    return result


def _scaled(var: str, factor: int, offset: int):
    from repro.core.icode import IExpr

    return IExpr.var(var) * factor + offset


def scalarize_temps(program: Program) -> Program:
    """Replace fully-unrolled temporary vectors with scalar variables.

    Only temps whose every subscript is a constant are eligible (after
    full unrolling this is all of them in straight-line code).  Input,
    output and table vectors are never scalarized.
    """
    eligible = {
        info.name for info in program.vectors.values()
        if info.kind == VEC_TEMP
    }
    for op in iter_ops(program.body):
        for item in (op.dest, *op.operands()):
            if isinstance(item, VecRef) and item.vec in eligible:
                if item.index.as_const() is None:
                    eligible.discard(item.vec)
    if not eligible:
        return program

    used_scalars = {
        item.name
        for op in iter_ops(program.body)
        for item in (op.dest, *op.operands())
        if isinstance(item, FVar)
    }
    counter = len(used_scalars)
    names: dict[tuple[str, int], str] = {}

    def fresh() -> str:
        nonlocal counter
        while True:
            name = f"f{counter}"
            counter += 1
            if name not in used_scalars:
                used_scalars.add(name)
                return name

    def rewrite(operand: Operand) -> Operand:
        if isinstance(operand, VecRef) and operand.vec in eligible:
            index = operand.index.as_const()
            assert index is not None
            key = (operand.vec, index)
            if key not in names:
                names[key] = fresh()
            return FVar(names[key])
        return operand

    program.body = map_operands(program.body, rewrite)
    for name in eligible:
        del program.vectors[name]
    return program
