"""Per-pass translation validation for the optimizer pipeline.

Every SPL formula denotes a linear map; an i-code program at *any*
pipeline stage (symbolic intrinsics, complex or real-lowered) therefore
denotes a matrix.  This module re-derives that matrix by running the
reference interpreter on the logical basis vectors — the same
interpreter-vs-matrix machinery the differential fuzzer uses — so the
compiler can check after each pass that the denotation is unchanged
("semantics lifting" applied as a pass oracle).

The basis probe determines the matrix completely when the program is
linear over the complexes, which every SPL formula is by construction.
A miscompiled pass, however, can produce *non-linear* code (e.g. an
input-times-input multiply), which basis vectors alone might miss; the
signature therefore also probes one deterministic pseudo-random vector,
which catches any divergence on a "generic" input.
"""

from __future__ import annotations

from repro.core.errors import SplValidationError
from repro.core.icode import Program
from repro.core.interpreter import run_program
from repro.core.scalars import Number

#: Absolute tolerance scale for matrix comparison.  Passes are allowed
#: to reassociate constant arithmetic (value numbering folds twiddle
#: constants), so entries may legitimately differ by a few ulps.
ATOL = 1e-9


def logical_apply(program: Program, z: list[complex], *,
                  istride: int = 1, ostride: int = 1,
                  iofs: int = 0, oofs: int = 0) -> list[complex]:
    """Apply ``program`` to a logical vector, hiding the element layout.

    ``z`` has ``in_size`` logical (complex) entries; the result has
    ``out_size``.  Works before and after the complex-to-real lowering,
    which is what lets the oracle compare across the typetrans pass.
    """
    width = program.element_width
    if program.strided:
        in_len = (iofs + (program.in_size - 1) * istride + 1) * width
    else:
        in_len = program.in_size * width
    x: list[Number] = [0.0] * in_len
    for k, value in enumerate(z):
        pos = (iofs + k * istride) * width if program.strided else k * width
        if width == 2:
            value = complex(value)
            x[pos] = value.real
            x[pos + 1] = value.imag
        else:
            x[pos] = value
    out = run_program(program, x, istride=istride, ostride=ostride,
                      iofs=iofs, oofs=oofs)
    result: list[complex] = []
    for j in range(program.out_size):
        pos = (oofs + j * ostride) * width if program.strided else j * width
        if width == 2:
            result.append(complex(out[pos], out[pos + 1]))
        else:
            result.append(complex(out[pos]))
    return result


def program_matrix(program: Program, *,
                   istride: int = 1, ostride: int = 1,
                   iofs: int = 0, oofs: int = 0) -> list[list[complex]]:
    """The dense logical matrix denoted by ``program``.

    Derived by interpreting the program on each logical basis vector;
    ``matrix[i][j]`` is the coefficient of input ``j`` in output ``i``.
    """
    n = program.in_size
    columns = []
    for k in range(n):
        z = [0j] * n
        z[k] = 1.0 + 0j
        columns.append(logical_apply(program, z, istride=istride,
                                     ostride=ostride, iofs=iofs, oofs=oofs))
    return [[columns[j][i] for j in range(n)]
            for i in range(program.out_size)]


def _probe_vector(n: int) -> list[complex]:
    """A fixed pseudo-random logical input (deterministic across runs)."""
    values = []
    state = 0x9E3779B9
    for _ in range(n):
        state = (state * 1664525 + 1013904223) % (1 << 32)
        re = (state >> 8) % 2000 / 1000.0 - 1.0
        state = (state * 1664525 + 1013904223) % (1 << 32)
        im = (state >> 8) % 2000 / 1000.0 - 1.0
        values.append(complex(re, im))
    return values


def program_signature(program: Program) -> list[list[complex]]:
    """Denotation fingerprint: the dense matrix plus one generic probe.

    For ``strided`` programs the matrix is sampled at unit strides and
    once more at a non-trivial stride/offset combination, so passes
    that mishandle the symbolic stride parameters are caught too.
    """
    rows = program_matrix(program)
    rows.append(logical_apply(program, _probe_vector(program.in_size)))
    if program.strided:
        strided_rows = program_matrix(program, istride=2, ostride=3,
                                      iofs=1, oofs=2)
        rows.extend(strided_rows)
    return rows


def check_pass(program: Program, baseline: list[list[complex]],
               pass_name: str) -> list[list[complex]]:
    """Assert ``program`` still denotes ``baseline``; return the new one.

    Raises :class:`SplValidationError` (``SPL-E300``) when the
    denotation changed — the caller must abort compilation rather than
    emit miscompiled code.
    """
    current = program_signature(program)
    scale = max(
        (abs(entry) for row in baseline for entry in row), default=0.0
    )
    atol = ATOL * (1.0 + scale)
    worst = 0.0
    if len(current) != len(baseline) or any(
        len(a) != len(b) for a, b in zip(current, baseline)
    ):
        raise SplValidationError(
            f"pass {pass_name!r} changed the program's shape "
            f"({len(baseline)} -> {len(current)} signature rows)",
            pass_name=pass_name,
        )
    for row_a, row_b in zip(baseline, current):
        for a, b in zip(row_a, row_b):
            worst = max(worst, abs(a - b))
    if worst > atol:
        raise SplValidationError(
            f"pass {pass_name!r} changed the denoted matrix "
            f"(max entry error {worst:.3e}, tolerance {atol:.3e})",
            pass_name=pass_name, max_error=worst,
        )
    return current
