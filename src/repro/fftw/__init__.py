"""An FFTW-style adaptive FFT library, built from scratch.

This is the reproduction's substitute for the FFTW binary the paper
benchmarks against (Section 4 / Section 5).  It mirrors FFTW's
architecture exactly as the paper describes it:

* **codelets** (:mod:`repro.fftw.codelets`) — optimized straight-line
  transforms for sizes 2..64 taking ``istride``/``ostride`` parameters;
  like FFTW's genfft output, they are *generated* — here by our own SPL
  compiler;
* **planner** (:mod:`repro.fftw.planner`) — run-time dynamic
  programming choosing a recursive factorization, in both *measure*
  and *estimate* modes;
* **executor** (:mod:`repro.fftw.executor`) — a recursive interpreter
  of plans, implemented in C for fair timing against SPL-generated
  code.
"""

from repro.fftw.codelets import CodeletSet
from repro.fftw.executor import FftwLibrary, FftwTransform
from repro.fftw.planner import Plan, PlanLevel, Planner

__all__ = [
    "CodeletSet",
    "FftwLibrary",
    "FftwTransform",
    "Plan",
    "PlanLevel",
    "Planner",
]
