"""FFTW-style codelets: strided straight-line FFTs for sizes 2..64.

"These codelets accept two parameters, 'istride' and 'ostride', which
are used to control the access to the input and output vectors."
(Section 4.1.)  Like FFTW's genfft, the codelets are generated — by the
SPL compiler itself, from fixed good factorizations (or from formulas
supplied by a search).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.compiler import CompiledRoutine, CompilerOptions, SplCompiler
from repro.core.nodes import Formula, fourier
from repro.formulas.factorization import ct_dit, ct_multi

CODELET_SIZES = (2, 4, 8, 16, 32, 64)


def default_codelet_formula(n: int) -> Formula:
    """A good fixed factorization for a codelet of size ``n``.

    Radix-4 decimation in time with a radix-2 step for the odd powers —
    the classic split used by FFT codelet generators.
    """
    if n <= 4:
        return fourier(n)
    factors: list[int] = []
    remaining = n
    while remaining > 4:
        factors.append(4)
        remaining //= 4
    factors.append(remaining)
    return ct_multi(factors)


def codelet_compiler() -> SplCompiler:
    return SplCompiler(CompilerOptions(
        unroll=True, optimize="default", datatype="complex",
        codetype="real", language="c",
    ))


@dataclass
class CodeletSet:
    """The compiled codelets plus their combined C source."""

    routines: dict[int, CompiledRoutine] = field(default_factory=dict)

    @staticmethod
    def build(formulas: dict[int, Formula] | None = None,
              sizes: tuple[int, ...] = CODELET_SIZES) -> "CodeletSet":
        """Generate strided codelets for ``sizes``.

        ``formulas`` overrides the factorization used per size (e.g.
        with search winners), defaulting to the fixed radix-4 choice.
        """
        compiler = codelet_compiler()
        routines: dict[int, CompiledRoutine] = {}
        for n in sizes:
            formula = (formulas or {}).get(n, default_codelet_formula(n))
            routines[n] = compiler.compile_formula(
                formula, f"spl_cod{n}", language="c", strided=True
            )
        return CodeletSet(routines=routines)

    @property
    def sizes(self) -> tuple[int, ...]:
        return tuple(sorted(self.routines))

    def c_source(self) -> str:
        """All codelets concatenated (entry points kept external)."""
        return "\n".join(
            self.routines[n].source for n in sorted(self.routines)
        )

    def flops(self, n: int) -> int:
        return self.routines[n].flop_count
