"""The FFTW-substitute executor: a recursive plan interpreter in C.

"This factorization, called a plan, is then interpreted by the
executor.  The executor calls to the codelets in the order specified by
the plan."  (Section 4.2.)

The executor implements the decimation-in-time recursion

    F_n = (F_r (x) I_s) T^n_s (I_r (x) F_s) L^n_r

with a scratch buffer per level: the r sub-transforms of size s are
gathered (stride r) into contiguous scratch, twiddled, and the final
radix-r codelet pass writes the strided outputs.  All arithmetic runs
in compiled C; Python only sets up plans and buffers.
"""

from __future__ import annotations

import ctypes
from dataclasses import dataclass

import numpy as np

from repro.fftw.codelets import CodeletSet
from repro.fftw.planner import Plan
from repro.perfeval import ccompile

_DRIVER_TEMPLATE = r"""
/* ------- FFTW-substitute executor driver (generated) ------- */

typedef void (*spl_codelet_fn)(double *restrict y, const double *restrict x,
                               int istride, int ostride, int iofs, int oofs);

static spl_codelet_fn spl_codelet_table[] = {CODELET_TABLE};

static void spl_fftw_rec(const int *logn, const int *logr,
                         const long *tw_ofs, const double *tw, int level,
                         double *y, int os, int oofs,
                         const double *x, int is, int iofs,
                         double *work)
{
    int n = 1 << logn[level];
    if (logr[level] < 0) {
        spl_codelet_table[logn[level]](y, x, is, os, iofs, oofs);
        return;
    }
    int r = 1 << logr[level];
    int s = n / r;
    double *buf = work;
    double *child_work = work + 2 * n;
    int i, j;
    long k;
    for (i = 0; i < r; i++) {
        spl_fftw_rec(logn, logr, tw_ofs, tw, level + 1,
                     buf, 1, i * s,
                     x, is * r, iofs + i * is,
                     child_work);
    }
    const double *w = tw + 2 * tw_ofs[level];
    for (k = 0; k < n; k++) {
        double re = buf[2 * k], im = buf[2 * k + 1];
        double wr = w[2 * k], wi = w[2 * k + 1];
        buf[2 * k] = re * wr - im * wi;
        buf[2 * k + 1] = re * wi + im * wr;
    }
    for (j = 0; j < s; j++) {
        spl_codelet_table[logr[level]](y, buf, s, s * os, j, oofs + j * os);
    }
}

void spl_fftw_execute(const int *logn, const int *logr, const long *tw_ofs,
                      const double *tw, double *y, const double *x,
                      double *work)
{
    spl_fftw_rec(logn, logr, tw_ofs, tw, 0, y, 1, 0, x, 1, 0, work);
}
"""


def _log2(n: int) -> int:
    k = n.bit_length() - 1
    if 1 << k != n:
        raise ValueError(f"{n} is not a power of two")
    return k


class FftwLibrary:
    """The compiled codelets + executor, with plan/transform factories."""

    def __init__(self, codelets: CodeletSet | None = None):
        self.codelets = codelets or CodeletSet.build()
        self.codelet_sizes = self.codelets.sizes
        source = self.codelets.c_source() + self._driver_source()
        self._so_path = ccompile.compile_shared_object(source)
        self._lib = ctypes.CDLL(str(self._so_path))
        self._execute = self._lib.spl_fftw_execute
        c_int_p = ctypes.POINTER(ctypes.c_int)
        c_long_p = ctypes.POINTER(ctypes.c_long)
        c_double_p = ctypes.POINTER(ctypes.c_double)
        self._execute.argtypes = [c_int_p, c_int_p, c_long_p, c_double_p,
                                  c_double_p, c_double_p, c_double_p]
        self._execute.restype = None

    def _driver_source(self) -> str:
        max_log = _log2(max(self.codelet_sizes))
        entries = []
        for k in range(max_log + 1):
            n = 1 << k
            if n in self.codelet_sizes:
                entries.append(f"spl_cod{n}")
            else:
                entries.append("0")
        return _DRIVER_TEMPLATE.replace("{CODELET_TABLE}",
                                        "{" + ", ".join(entries) + "}")

    # -- codelet access (Figure 3 timing) ------------------------------------

    def codelet_flops(self, n: int) -> int:
        return self.codelets.flops(n)

    def codelet_fn(self, n: int):
        fn = getattr(self._lib, f"spl_cod{n}")
        c_double_p = ctypes.POINTER(ctypes.c_double)
        fn.argtypes = [c_double_p, c_double_p] + [ctypes.c_int] * 4
        fn.restype = None
        return fn

    def shared_object_size(self) -> int:
        return self._so_path.stat().st_size

    # -- transforms ---------------------------------------------------------------

    def transform(self, plan: Plan) -> "FftwTransform":
        return FftwTransform(self, plan)


@dataclass
class _PlanArrays:
    logn: np.ndarray
    logr: np.ndarray
    tw_ofs: np.ndarray


class FftwTransform:
    """A planned transform with preallocated buffers.

    Re-entrancy: one transform object owns a single set of input /
    output / recursion-scratch buffers which ``apply``,
    ``timer_closure`` and ``apply_many`` all mutate, so **concurrent
    use of one instance is unsupported** — calls must be serialized
    (build one transform per thread if needed; plans are shareable).
    Sequential interleaving of ``apply`` and ``apply_many`` is safe:
    the batch path keeps its own 2-D workspaces and leaves the
    single-vector buffers untouched.  Bulk work goes through one
    ``apply_many`` call, which parallelizes *internally* when asked:
    ``apply_many(X, threads=N)`` shards the batch rows across the
    shared worker pool with one recursion-scratch buffer per shard
    (the executor is a pure function of its argument buffers, so
    shards never interfere and results are bit-identical to serial).
    """

    def __init__(self, library: FftwLibrary, plan: Plan):
        self.library = library
        self.plan = plan
        self.n = plan.n
        logn = np.array([_log2(level.n) for level in plan.levels],
                        dtype=np.int32)
        logr = np.array(
            [_log2(level.radix) if level.radix else -1
             for level in plan.levels],
            dtype=np.int32,
        )
        tw_ofs = np.array(plan.tw_offsets, dtype=np.int64)
        self._arrays = _PlanArrays(logn=logn, logr=logr, tw_ofs=tw_ofs)
        self._tw = np.ascontiguousarray(plan.twiddles)
        self._work = np.zeros(max(plan.work_len, 2))
        self._x = np.zeros(2 * plan.n)
        self._y = np.zeros(2 * plan.n)
        self._batch = None  # (xm, ym, xptrs, yptrs), sized on first use
        self._shard_work = None  # (ptrs, arrays) per-shard scratch pool
        c_int_p = ctypes.POINTER(ctypes.c_int)
        c_long_p = ctypes.POINTER(ctypes.c_long)
        c_double_p = ctypes.POINTER(ctypes.c_double)
        self._args = (
            logn.ctypes.data_as(c_int_p),
            logr.ctypes.data_as(c_int_p),
            tw_ofs.ctypes.data_as(c_long_p),
            self._tw.ctypes.data_as(c_double_p),
            self._y.ctypes.data_as(c_double_p),
            self._x.ctypes.data_as(c_double_p),
            self._work.ctypes.data_as(c_double_p),
        )

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Compute the DFT of a complex input vector."""
        if len(x) != self.n:
            raise ValueError(f"expected {self.n} elements, got {len(x)}")
        self._x[0::2] = np.real(x)
        self._x[1::2] = np.imag(x)
        self.library._execute(*self._args)
        return self._y[0::2] + 1j * self._y[1::2]

    def _batch_buffers(self, batch: int):
        """2-D interleaved workspaces plus per-row pointers, reused
        across ``apply_many`` calls of the same batch size."""
        if self._batch is None or self._batch[0].shape[0] != batch:
            c_double_p = ctypes.POINTER(ctypes.c_double)
            xm = np.zeros((batch, 2 * self.n))
            ym = np.zeros((batch, 2 * self.n))
            xptrs = [
                ctypes.cast(xm.ctypes.data + b * xm.strides[0], c_double_p)
                for b in range(batch)
            ]
            yptrs = [
                ctypes.cast(ym.ctypes.data + b * ym.strides[0], c_double_p)
                for b in range(batch)
            ]
            self._batch = (xm, ym, xptrs, yptrs)
        return self._batch

    def _shard_works(self, count: int) -> list:
        """Per-shard recursion scratch: ``count`` independent work
        buffers (as ctypes pointers), grown once and reused."""
        import ctypes

        c_double_p = ctypes.POINTER(ctypes.c_double)
        if self._shard_work is None or len(self._shard_work[0]) < count:
            arrays = [np.zeros_like(self._work) for _ in range(count)]
            ptrs = [a.ctypes.data_as(c_double_p) for a in arrays]
            self._shard_work = (ptrs, arrays)
        return self._shard_work[0]

    def apply_many(self, X: np.ndarray,
                   threads: int | None = None) -> np.ndarray:
        """Compute the DFT of every row of a ``(B, n)`` complex batch.

        The batch is interleaved into a 2-D work buffer in one
        vectorized pass and the executor runs once per row on
        precomputed row pointers; the workspaces (and pointers) are
        reused whenever the batch size repeats, so a steady-state
        caller allocates nothing per batch.  The single-vector
        ``apply`` buffers are not touched.

        ``threads=N`` (0 = one per CPU) shards the row loop across the
        shared worker pool, each shard with its own recursion scratch;
        the executor releases the GIL inside the native call, so
        shards run on separate cores.  Small batches fall back to the
        serial loop (see :func:`repro.runtime.pool.effective_threads`);
        results are bit-identical for every thread count.
        """
        from repro.runtime.pool import effective_threads, run_sharded

        X = np.asarray(X)
        if X.ndim != 2 or X.shape[1] != self.n:
            raise ValueError(
                f"expected a (B, {self.n}) batch, got shape {X.shape}"
            )
        batch = X.shape[0]
        xm, ym, xptrs, yptrs = self._batch_buffers(batch)
        xm[:, 0::2] = X.real
        xm[:, 1::2] = X.imag
        execute = self.library._execute
        logn, logr, tw_ofs, tw = self._args[:4]
        nthreads = effective_threads(threads, batch, 2 * self.n)
        if nthreads > 1:
            works = self._shard_works(nthreads)
            free = list(works)  # one scratch per concurrently live shard

            def shard(lo: int, hi: int) -> None:
                work = free.pop()  # atomic (GIL); len(works) >= shards
                try:
                    for b in range(lo, hi):
                        execute(logn, logr, tw_ofs, tw,
                                yptrs[b], xptrs[b], work)
                finally:
                    free.append(work)

            run_sharded(shard, batch, nthreads)
        else:
            work = self._args[6]
            for b in range(batch):
                execute(logn, logr, tw_ofs, tw, yptrs[b], xptrs[b], work)
        return ym[:, 0::2] + 1j * ym[:, 1::2]

    def timer_closure(self):
        """Zero-argument call on the preallocated buffers."""
        execute = self.library._execute
        args = self._args
        rng = np.random.default_rng(0)
        self._x[:] = rng.standard_normal(2 * self.n)

        def call() -> None:
            execute(*args)

        return call

    def memory_bytes(self) -> int:
        """Runtime footprint: plan + buffers (excluding shared code)."""
        return (self.plan.memory_bytes() + self._x.nbytes + self._y.nbytes)
