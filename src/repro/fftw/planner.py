"""FFTW-style plans and planners.

"In FFTW, large-size FFTs are computed recursively using three
components: the planner, the executor, and the codelets.  The planner
searches for an optimal factorization at run-time using dynamic
programming. ... FFTW also has an option to select plan by 'estimating'
instead of measuring the execution time."  (Section 4.2.)

A plan is a right-most radix chain: level i splits ``n_i = r_i * s``
where ``r_i`` is computed by a codelet and ``s = n_{i+1}`` is handled
by the next level; the last level is a single codelet.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.perfeval.sandbox import CandidateFailure, Quarantine, plan_key
from repro.perfeval.timing import pseudo_mflops, time_callable
from repro.wisdom.parallel import map_indexed, pick_winner
from repro.wisdom.store import WisdomStore

MEASURE_TRANSFORM = "fftw-measure"
ESTIMATE_TRANSFORM = "fftw-estimate"


@dataclass(frozen=True)
class PlanLevel:
    """One recursion level: size ``n``; ``radix`` 0 means codelet leaf."""

    n: int
    radix: int


@dataclass
class Plan:
    """A complete factorization plan plus its twiddle tables."""

    n: int
    levels: tuple[PlanLevel, ...]
    twiddles: np.ndarray = field(repr=False)  # interleaved re/im
    tw_offsets: tuple[int, ...] = ()  # complex-element offsets per level
    work_len: int = 0  # doubles of scratch the executor needs

    @staticmethod
    def from_radices(n: int, radices: tuple[int, ...],
                     codelet_sizes: tuple[int, ...]) -> "Plan":
        """Build a plan from the radix chain (outermost first)."""
        levels: list[PlanLevel] = []
        tw_offsets: list[int] = []
        chunks: list[np.ndarray] = []
        work_len = 0
        offset = 0
        size = n
        for radix in radices:
            if size % radix or size // radix < 2:
                raise ValueError(f"invalid radix {radix} for size {size}")
            levels.append(PlanLevel(n=size, radix=radix))
            tw_offsets.append(offset)
            chunks.append(_twiddle_table(size, size // radix))
            offset += size
            work_len += 2 * size
            size //= radix
        if size not in codelet_sizes:
            raise ValueError(
                f"plan leaf size {size} has no codelet "
                f"(available: {codelet_sizes})"
            )
        levels.append(PlanLevel(n=size, radix=0))
        tw_offsets.append(offset)
        twiddles = (
            np.concatenate(chunks) if chunks else np.zeros(0)
        )
        return Plan(
            n=n,
            levels=tuple(levels),
            twiddles=twiddles,
            tw_offsets=tuple(tw_offsets),
            work_len=work_len,
        )

    @property
    def radices(self) -> tuple[int, ...]:
        return tuple(level.radix for level in self.levels if level.radix)

    @property
    def leaf(self) -> int:
        return self.levels[-1].n

    def describe(self) -> str:
        chain = " -> ".join(
            f"{level.n}(r{level.radix})" if level.radix else f"cod{level.n}"
            for level in self.levels
        )
        return f"plan[{self.n}]: {chain}"

    def memory_bytes(self) -> int:
        """Twiddles plus scratch: the plan's runtime footprint."""
        return self.twiddles.nbytes + self.work_len * 8


def _twiddle_table(n: int, s: int) -> np.ndarray:
    """Interleaved ``T^n_s`` diagonal: w_n^(i*j) at complex index i*s+j."""
    r = n // s
    i = np.arange(r).reshape(-1, 1)
    j = np.arange(s).reshape(1, -1)
    w = np.exp(-2j * math.pi * (i * j) / n).reshape(-1)
    out = np.empty(2 * n)
    out[0::2] = w.real
    out[1::2] = w.imag
    return out


class Planner:
    """Dynamic-programming planners in measure and estimate modes.

    With a :class:`repro.wisdom.WisdomStore`, previously planned radix
    chains (measure *and* estimate mode) are replayed without timing a
    single candidate — FFTW's wisdom mechanism.  Replayed plans are
    first re-validated (one transform run against ``numpy.fft.fft``);
    a plan that no longer reconstructs or no longer computes the DFT
    is evicted from the store and planned afresh.

    Fault tolerance: a candidate plan whose transform construction or
    timing raises — or whose output is non-finite — is skipped and
    quarantined by its radix chain, and planning continues over the
    surviving candidates instead of aborting.
    """

    def __init__(self, library, *, min_time: float = 0.005,
                 wisdom: WisdomStore | None = None, jobs: int = 1,
                 quarantine: Quarantine | None = None):
        # ``library`` is an FftwLibrary (duck-typed to avoid a cycle).
        self.library = library
        self.min_time = min_time
        self.wisdom = wisdom
        self.jobs = jobs
        self.quarantine = quarantine if quarantine is not None \
            else Quarantine()
        self._measure_cache: dict[int, Plan] = {}
        self._estimate_cache: dict[int, tuple[float, tuple[int, ...]]] = {}
        # Planning-time memory accounting for Figure 5: bytes allocated
        # while searching (candidate twiddle tables and buffers), total
        # and attributed per planned size.
        self.planning_bytes = 0
        self.planning_bytes_by_n: dict[int, int] = {}
        # How many candidate plans were actually timed (0 on a warm
        # wisdom store).
        self.candidates_timed = 0
        # How many candidate plans failed measurement and were skipped.
        self.candidates_failed = 0
        # Wisdom entries evicted because re-validation rejected them.
        self.plans_evicted = 0

    def _wisdom_options(self) -> tuple:
        """The non-(transform, n) state that determines a plan."""
        return tuple(self.library.codelet_sizes)

    def _plan_is_valid(self, plan: Plan) -> bool:
        """One transform run against the numpy reference DFT."""
        try:
            transform = self.library.transform(plan)
            apply = getattr(transform, "apply", None)
            if apply is None:  # duck-typed library: nothing to check
                return True
            rng = np.random.default_rng(3)
            x = rng.standard_normal(plan.n) + 1j * rng.standard_normal(plan.n)
            y = np.asarray(apply(x))
        except Exception:  # noqa: BLE001 - invalid plans must not raise
            return False
        return bool(
            np.isfinite(y).all()
            and np.allclose(y, np.fft.fft(x), rtol=1e-6, atol=1e-8)
        )

    def _replay_plan(self, transform_name: str, n: int) -> Plan | None:
        """Fetch, rebuild and re-validate a wisdom plan (evict on fail)."""
        if self.wisdom is None:
            return None
        replayed: dict[str, Plan] = {}

        def check(entry) -> bool:
            plan = Plan.from_radices(
                n, tuple(int(r) for r in entry.meta["radices"]),
                self.library.codelet_sizes,
            )
            if not self._plan_is_valid(plan):
                return False
            replayed["plan"] = plan
            return True

        before = self.wisdom.evictions
        entry = self.wisdom.validated_lookup(transform_name, n,
                                             self._wisdom_options(),
                                             validate=check)
        self.plans_evicted += self.wisdom.evictions - before
        if entry is None:
            return None
        return replayed["plan"]

    # -- estimate mode ---------------------------------------------------------

    def _estimate_cost(self, n: int) -> tuple[float, tuple[int, ...]]:
        cached = self._estimate_cache.get(n)
        if cached is not None:
            return cached
        sizes = self.library.codelet_sizes
        if n in sizes:
            cost = float(self.library.codelet_flops(n) + 4 * n)
            self._estimate_cache[n] = (cost, ())
            return self._estimate_cache[n]
        best: tuple[float, tuple[int, ...]] | None = None
        for r in sizes:
            s = n // r
            if n % r or s < 2:
                continue
            if s not in sizes and s % 2:
                continue
            try:
                child_cost, child_radices = self._estimate_cost(s)
            except ValueError:
                continue
            pass_cost = (
                r * child_cost
                + s * (self.library.codelet_flops(r) + 4 * r)
                + 10.0 * n  # twiddle multiply + buffer traffic
            )
            if best is None or pass_cost < best[0]:
                best = (pass_cost, (r, *child_radices))
        if best is None:
            raise ValueError(f"no factorization of {n} over the codelets")
        self._estimate_cache[n] = best
        return best

    def plan_estimate(self, n: int) -> Plan:
        """Choose a plan from the cost model alone (FFTW's estimate mode)."""
        if n in self.library.codelet_sizes:
            return Plan.from_radices(n, (), self.library.codelet_sizes)
        replayed = self._replay_plan(ESTIMATE_TRANSFORM, n)
        if replayed is not None:
            return replayed
        cost, radices = self._estimate_cost(n)
        if self.wisdom is not None:
            self.wisdom.record(
                ESTIMATE_TRANSFORM, n, self._wisdom_options(),
                formula=f"radices={','.join(map(str, radices))}",
                seconds=0.0, mflops=0.0,
                radices=list(radices), cost=cost,
            )
        return Plan.from_radices(n, radices, self.library.codelet_sizes)

    # -- measure mode ------------------------------------------------------------

    def plan_measure(self, n: int) -> Plan:
        """Choose a plan by timing candidates (FFTW's default mode)."""
        cached = self._measure_cache.get(n)
        if cached is not None:
            return cached
        sizes = self.library.codelet_sizes
        if n in sizes:
            plan = Plan.from_radices(n, (), sizes)
            self._measure_cache[n] = plan
            return plan
        replayed = self._replay_plan(MEASURE_TRANSFORM, n)
        if replayed is not None:
            self._measure_cache[n] = replayed
            return replayed
        candidates: list[Plan] = []
        for r in sizes:
            s = n // r
            if n % r or s < 2:
                continue
            if s in sizes:
                child_radices: tuple[int, ...] = ()
            else:
                try:
                    child = self.plan_measure(s)
                except ValueError:
                    continue
                child_radices = child.radices
            try:
                candidates.append(Plan.from_radices(n, (r, *child_radices),
                                                    sizes))
            except ValueError:
                continue
        if not candidates:
            raise ValueError(f"no factorization of {n} over the codelets")

        def time_one(index: int, plan: Plan) -> float:
            """Time one candidate; failures come back as inf, not up.

            A candidate whose transform cannot be built, whose timing
            raises, or whose probe run emits NaN/Inf is quarantined by
            its radix chain so a later planning pass (same process,
            fresh caches) never touches it again.
            """
            key = plan_key(MEASURE_TRANSFORM, plan.n, plan.radices)
            if self.quarantine.check(key) is not None:
                return math.inf
            try:
                transform = self.library.transform(plan)
                # Probe for NaN/Inf output before letting the plan
                # into the timing contest (duck-typed libraries
                # without ``apply`` skip the probe).
                apply = getattr(transform, "apply", None)
                if apply is not None:
                    rng = np.random.default_rng(0)
                    probe = (rng.standard_normal(plan.n)
                             + 1j * rng.standard_normal(plan.n))
                    if not np.isfinite(np.asarray(apply(probe))).all():
                        self.quarantine.add(CandidateFailure(
                            kind="nan", plan_key=key,
                            detail=f"plan {plan.radices} output not finite",
                        ))
                        return math.inf
                return time_callable(transform.timer_closure(),
                                     min_time=self.min_time, repeats=2)
            except Exception as exc:  # noqa: BLE001 - skip, don't abort
                self.quarantine.add(CandidateFailure(
                    kind="error", plan_key=key,
                    detail=f"{type(exc).__name__}: {exc}",
                ))
                return math.inf

        timings = map_indexed(candidates, time_one, jobs=self.jobs)
        failed = sum(1 for t in timings if not math.isfinite(t))
        self.candidates_failed += failed
        self.candidates_timed += len(candidates) - failed
        if failed == len(candidates):
            raise ValueError(
                f"every candidate plan for {n} failed measurement "
                f"({self.quarantine.describe()})"
            )
        best_index, best_time = pick_winner(timings, key=lambda t: t)
        best_plan = candidates[best_index]
        self._measure_cache[n] = best_plan
        # Only candidates tried *at this level* count towards this
        # size's planning bytes; recursive plan_measure(s) calls record
        # their own, so each size is attributed exactly once and
        # sum(planning_bytes_by_n.values()) == planning_bytes.
        local_bytes = sum(plan.memory_bytes() for plan in candidates)
        self.planning_bytes += local_bytes
        self.planning_bytes_by_n[n] = local_bytes
        if self.wisdom is not None:
            self.wisdom.record(
                MEASURE_TRANSFORM, n, self._wisdom_options(),
                formula=f"radices={','.join(map(str, best_plan.radices))}",
                seconds=best_time,
                mflops=pseudo_mflops(n, best_time),
                radices=list(best_plan.radices),
            )
        return best_plan
