"""Matrix semantics and factorization rules for SPL formulas.

This package is the mathematical substrate of Section 2 of the paper:
dense definitions of the signal transforms (:mod:`transforms`), the
interpretation of any SPL formula as a matrix (:mod:`matrices`), and
the factorization identities — Cooley-Tukey and friends — that the
formula generator manipulates (:mod:`factorization`).
"""

from repro.formulas.matrices import to_matrix
from repro.formulas.transforms import (
    dct2_matrix,
    dct4_matrix,
    dft_matrix,
    reversal_matrix,
    stride_perm_matrix,
    twiddle_matrix,
    wht_matrix,
)

__all__ = [
    "dct2_matrix",
    "dct4_matrix",
    "dft_matrix",
    "reversal_matrix",
    "stride_perm_matrix",
    "to_matrix",
    "twiddle_matrix",
    "wht_matrix",
]
