"""Factorization rules (Section 2.1, Equations 3 and 5-10).

Each function returns a formula AST that is *identically equal* (as a
matrix) to the transform it factors; the test suite checks every rule
against the dense semantics.

The ``leaf`` parameter lets callers substitute an already-factored
formula for the ``F_r`` sub-transforms, which is how recursive
breakdown trees are assembled by the formula generator.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.core import nodes
from repro.core.errors import SplSemanticError
from repro.core.nodes import (
    Formula,
    compose,
    direct_sum,
    fourier,
    identity,
    reversal,
    stride,
    tensor,
    twiddle,
)

Leaf = Callable[[int], Formula]


def _default_leaf(n: int) -> Formula:
    return fourier(n)


def _check_split(n: int, r: int, s: int) -> None:
    if r * s != n or r < 2 or s < 2:
        raise SplSemanticError(
            f"invalid split {n} = {r} * {s}: factors must be >= 2"
        )


def ct_dit(r: int, s: int, leaf: Leaf = _default_leaf) -> Formula:
    """Decimation-in-time Cooley-Tukey (Equations 3 and 5).

    ``F_rs = (F_r (x) I_s) T^rs_s (I_r (x) F_s) L^rs_r``
    """
    n = r * s
    _check_split(n, r, s)
    return compose(
        tensor(leaf(r), identity(s)),
        twiddle(n, s),
        tensor(identity(r), leaf(s)),
        stride(n, r),
    )


def ct_dif(r: int, s: int, leaf: Leaf = _default_leaf) -> Formula:
    """Decimation-in-frequency Cooley-Tukey (Equation 7).

    ``F_rs = L^rs_s (I_r (x) F_s) T^rs_s (F_r (x) I_s)``
    (the transpose of the DIT factorization; F and T are symmetric and
    ``L^rs_r`` transposes to ``L^rs_s``).
    """
    n = r * s
    _check_split(n, r, s)
    return compose(
        stride(n, s),
        tensor(identity(r), leaf(s)),
        twiddle(n, s),
        tensor(leaf(r), identity(s)),
    )


def ct_parallel(r: int, s: int, leaf: Leaf = _default_leaf) -> Formula:
    """The parallel form (Equation 8): every compute stage is I (x) A.

    Obtained from DIT by commuting ``F_r (x) I_s`` with Equation 6:
    ``F_rs = L^rs_r (I_s (x) F_r) L^rs_s T^rs_s (I_r (x) F_s) L^rs_r``
    """
    n = r * s
    _check_split(n, r, s)
    return compose(
        stride(n, r),
        tensor(identity(s), leaf(r)),
        stride(n, s),
        twiddle(n, s),
        tensor(identity(r), leaf(s)),
        stride(n, r),
    )


def ct_vector(r: int, s: int, leaf: Leaf = _default_leaf) -> Formula:
    """The vector form (Equation 9): every compute stage is A (x) I.

    ``F_rs = (F_r (x) I_s) T^rs_s L^rs_r (F_s (x) I_r)``
    """
    n = r * s
    _check_split(n, r, s)
    return compose(
        tensor(leaf(r), identity(s)),
        twiddle(n, s),
        stride(n, r),
        tensor(leaf(s), identity(r)),
    )


def tensor_flip(a: Formula, b: Formula, m: int, n: int) -> Formula:
    """The commutation identity (Equation 6).

    ``A_m (x) B_n = L^mn_m (B_n (x) A_m) L^mn_n`` where ``A`` is m x m
    and ``B`` is n x n.
    """
    return compose(stride(m * n, m), tensor(b, a), stride(m * n, n))


def ct_multi(factors: list[int], leaf: Leaf = _default_leaf) -> Formula:
    """The general multi-factor factorization (Equation 10).

    For ``n = n_1 n_2 ... n_t``::

        F_n = [ prod_{i=1..t} (I_{n(i-)} (x) F_{n_i} (x) I_{n(i+)})
                              (I_{n(i-)} (x) T^{n_i n(i+)}_{n(i+)}) ]
              [ prod_{i=t..1} (I_{n(i-)} (x) L^{n_i n(i+)}_{n_i}) ]

    with ``n(i-) = n_1 ... n_{i-1}`` and ``n(i+) = n_{i+1} ... n_t``.
    ``factors = [2, n/2]`` gives the standard recursive step;
    ``factors = [2] * k`` gives the iterative radix-2 FFT.
    """
    if len(factors) < 1 or any(f < 2 for f in factors):
        raise SplSemanticError(f"invalid factor list {factors}")
    if len(factors) == 1:
        return leaf(factors[0])
    t = len(factors)
    stages: list[Formula] = []
    for i in range(t):
        left = math.prod(factors[:i])
        ni = factors[i]
        right = math.prod(factors[i + 1:])
        butterfly: Formula = leaf(ni)
        if right > 1:
            butterfly = tensor(butterfly, identity(right))
        if left > 1:
            butterfly = tensor(identity(left), butterfly)
        stages.append(butterfly)
        if right > 1:
            tw: Formula = twiddle(ni * right, right)
            if left > 1:
                tw = tensor(identity(left), tw)
            stages.append(tw)
    for i in range(t - 1, -1, -1):
        left = math.prod(factors[:i])
        ni = factors[i]
        right = math.prod(factors[i + 1:])
        if right <= 1:
            continue  # L^{n_i}_{n_i} is the identity
        perm: Formula = stride(ni * right, ni)
        if left > 1:
            perm = tensor(identity(left), perm)
        stages.append(perm)
    return compose(*stages)


def wht_multi(exponents: list[int]) -> Formula:
    """The WHT factorization of Section 2.1.

    ``WHT_{2^k} = prod_i (I_{2^{e_1+..+e_{i-1}}} (x) WHT_{2^{e_i}}
    (x) I_{2^{e_{i+1}+..+e_t}})`` with ``k = sum(exponents)``.
    """
    if not exponents or any(e < 1 for e in exponents):
        raise SplSemanticError(f"invalid exponent list {exponents}")
    k = sum(exponents)
    if len(exponents) == 1:
        return nodes.Param(name="WHT", params=(2 ** k,))
    stages: list[Formula] = []
    for i, e in enumerate(exponents):
        left = 2 ** sum(exponents[:i])
        right = 2 ** sum(exponents[i + 1:])
        stage: Formula = nodes.Param(name="WHT", params=(2 ** e,))
        if right > 1:
            stage = tensor(stage, identity(right))
        if left > 1:
            stage = tensor(identity(left), stage)
        stages.append(stage)
    return compose(*stages)


def dct2_split(n: int, leaf2: Callable[[int], Formula] | None = None,
               leaf4: Callable[[int], Formula] | None = None) -> Formula:
    """The DCT-II recursion of Section 2.1.

    ``DCT2_n = L^n_{n/2} (DCT2_{n/2} (+) DCT4_{n/2})
               (F_2 (x) I_{n/2}) (I_{n/2} (+) J_{n/2})``

    The butterfly computes ``u_k = x_k + x_{n-1-k}`` and ``v_k = x_k -
    x_{n-1-k}``; the stride permutation interleaves the half-size
    DCT-II (even outputs) with the half-size DCT-IV (odd outputs).
    """
    if n < 4 or n % 2:
        raise SplSemanticError("DCT-II split needs even n >= 4")
    half = n // 2
    sub2 = leaf2(half) if leaf2 else nodes.Param(name="DCT2", params=(half,))
    sub4 = leaf4(half) if leaf4 else nodes.Param(name="DCT4", params=(half,))
    return compose(
        stride(n, half),
        direct_sum(sub2, sub4),
        tensor(fourier(2), identity(half)),
        direct_sum(identity(half), reversal(half)),
    )


def dct4_via_dct2(n: int,
                  leaf2: Callable[[int], Formula] | None = None) -> Formula:
    """Express DCT-IV through DCT-II: ``DCT4_n = S_n DCT2_n D_n``.

    ``D_n = diag(2 cos((2j+1) pi / (4n)))`` and ``S_n`` undoes the sum
    recurrence ``y_k + y_{k-1} = z_k``: it is the inverse of that
    bidiagonal system, the lower-triangular alternating matrix with
    ``S[k,0] = (-1)^k / 2`` and ``S[k,j] = (-1)^(k-j)`` for
    ``1 <= j <= k``.  (The paper calls ``S`` diagonal, which only holds
    for n = 1; the triangular form is the closed-form solution.)  The
    rule demonstrates mixing literal matrices with parameterized ones;
    the *fast* DCT path is :func:`dct2_split`, which keeps everything
    sparse.
    """
    if n < 1:
        raise SplSemanticError("DCT-IV size must be positive")
    d_values = tuple(
        2.0 * math.cos((2 * j + 1) * math.pi / (4 * n)) for j in range(n)
    )
    rows = []
    for k in range(n):
        row = [0.0] * n
        row[0] = 0.5 * (-1.0) ** k
        for j in range(1, k + 1):
            row[j] = (-1.0) ** (k - j)
        rows.append(tuple(row))
    sub2 = leaf2(n) if leaf2 else nodes.Param(name="DCT2", params=(n,))
    return compose(
        nodes.MatrixLit(rows=tuple(rows)),
        sub2,
        nodes.DiagonalLit(values=d_values),
    )
