"""Dense matrix interpretation of SPL formulas.

``to_matrix`` evaluates any formula AST to the (complex) numpy matrix
it denotes — the integration oracle for the whole compiler: for every
formula and every pipeline configuration, the generated code must
compute ``to_matrix(f) @ x``.
"""

from __future__ import annotations

import numpy as np

from repro.core import nodes
from repro.core.errors import SplSemanticError
from repro.formulas import transforms

_PARAM_BUILDERS = {
    "I": lambda n: np.eye(n),
    "F": transforms.dft_matrix,
    "J": transforms.reversal_matrix,
    "L": transforms.stride_perm_matrix,
    "T": transforms.twiddle_matrix,
    "WHT": transforms.wht_matrix,
    "DCT2": transforms.dct2_matrix,
    "DCT4": transforms.dct4_matrix,
}


def to_matrix(formula: nodes.Formula) -> np.ndarray:
    """The dense matrix denoted by ``formula`` (complex dtype)."""
    if isinstance(formula, nodes.Param):
        builder = _PARAM_BUILDERS.get(formula.name)
        if builder is None:
            raise SplSemanticError(
                f"no dense semantics for ({formula.name} ...); "
                "user-defined matrices need their own oracle"
            )
        return np.asarray(builder(*formula.params), dtype=complex)
    if isinstance(formula, nodes.MatrixLit):
        return np.array(formula.rows, dtype=complex)
    if isinstance(formula, nodes.DiagonalLit):
        return np.diag(np.array(formula.values, dtype=complex))
    if isinstance(formula, nodes.PermutationLit):
        n = len(formula.perm)
        matrix = np.zeros((n, n), dtype=complex)
        for i, k in enumerate(formula.perm):
            matrix[i, k - 1] = 1.0
        return matrix
    if isinstance(formula, nodes.Compose):
        left = to_matrix(formula.left)
        right = to_matrix(formula.right)
        if left.shape[1] != right.shape[0]:
            raise SplSemanticError(
                f"cannot compose {formula.left.to_spl()} "
                f"({left.shape[0]}x{left.shape[1]}) with "
                f"{formula.right.to_spl()} "
                f"({right.shape[0]}x{right.shape[1]}): inner sizes differ"
            )
        return left @ right
    if isinstance(formula, nodes.Tensor):
        return np.kron(to_matrix(formula.left), to_matrix(formula.right))
    if isinstance(formula, nodes.DirectSum):
        left = to_matrix(formula.left)
        right = to_matrix(formula.right)
        out = np.zeros(
            (left.shape[0] + right.shape[0], left.shape[1] + right.shape[1]),
            dtype=complex,
        )
        out[: left.shape[0], : left.shape[1]] = left
        out[left.shape[0]:, left.shape[1]:] = right
        return out
    raise SplSemanticError(f"cannot interpret formula {formula!r}")
