"""Multidimensional and derived transforms expressed as SPL formulas.

The tensor-product formalism makes multidimensional transforms free:
the 2-D DFT on an m x n grid (row-major layout) is ``F_m (x) F_n``, and
the row-column algorithm is the expansion
``(F_m (x) I_n)(I_m (x) F_n)``.  The inverse DFT is also a formula:
``F_n^{-1} = (1/n) R_n F_n`` with ``R_n`` the index-reversal
permutation ``y[0] = x[0], y[k] = x[n-k]``.

Everything here compiles through the unmodified SPL compiler — the
point of the paper's "any class of algorithm that can be represented as
matrix expressions".
"""

from __future__ import annotations

from typing import Callable

from repro.core import nodes
from repro.core.errors import SplSemanticError
from repro.core.nodes import Formula, compose, fourier, identity, tensor

Leaf = Callable[[int], Formula]


def dft2d(m: int, n: int, leaf: Leaf = fourier) -> Formula:
    """The 2-D DFT on an m x n row-major grid: ``F_m (x) F_n``.

    Expanded in row-column form so the compiler never materializes the
    general tensor temp: ``(F_m (x) I_n) (I_m (x) F_n)``.
    """
    if m < 1 or n < 1:
        raise SplSemanticError("2-D DFT sizes must be positive")
    return compose(
        tensor(leaf(m), identity(n)),
        tensor(identity(m), leaf(n)),
    )


def dft3d(l: int, m: int, n: int, leaf: Leaf = fourier) -> Formula:
    """The 3-D DFT on an l x m x n grid, dimension-by-dimension."""
    if min(l, m, n) < 1:
        raise SplSemanticError("3-D DFT sizes must be positive")
    return compose(
        tensor(leaf(l), identity(m * n)),
        tensor(identity(l), leaf(m), identity(n)),
        tensor(identity(l * m), leaf(n)),
    )


def index_reversal(n: int) -> nodes.PermutationLit:
    """The mod-n index reversal: y[0] = x[0], y[k] = x[n-k]."""
    perm = (1,) + tuple(range(n, 1, -1))
    return nodes.PermutationLit(perm=perm)


def inverse_dft(n: int, leaf: Leaf = fourier) -> Formula:
    """The inverse DFT as a formula: ``(1/n) R_n F_n``.

    Uses the identity ``F_n^{-1}[j,k] = (1/n) w_n^{-jk}`` and
    ``w_n^{-jk} = w_n^{j(n-k) mod n}``, i.e. conjugation of the DFT is
    the index-reversal permutation applied to its rows.
    """
    if n < 1:
        raise SplSemanticError("inverse DFT size must be positive")
    scale = nodes.DiagonalLit(values=(1.0 / n,) * n)
    if n == 1:
        return scale
    return compose(scale, index_reversal(n), leaf(n))


def cyclic_convolution(n: int, leaf: Leaf = fourier,
                       inverse_leaf: Leaf | None = None) -> Formula:
    """Cyclic convolution *machinery* by the convolution theorem.

    Returns the formula ``F_n^{-1} . F_n`` — the identity, but
    structured so that callers can splice a diagonal (the transformed
    filter taps) between the stages; see
    :func:`cyclic_convolution_with_taps`.
    """
    inv = inverse_leaf(n) if inverse_leaf else inverse_dft(n, leaf)
    return compose(inv, leaf(n))


def cyclic_convolution_with_taps(n: int, taps_spectrum,
                                 leaf: Leaf = fourier) -> Formula:
    """Cyclic convolution with a fixed filter, as one SPL formula.

    ``y = F^{-1} diag(H) F x`` where ``H`` is the DFT of the filter
    taps (supplied precomputed, as a sequence of n complex values).
    """
    values = tuple(complex(v) for v in taps_spectrum)
    if len(values) != n:
        raise SplSemanticError(
            f"need {n} spectrum values, got {len(values)}"
        )
    return compose(
        inverse_dft(n, leaf),
        nodes.DiagonalLit(values=values),
        leaf(n),
    )
