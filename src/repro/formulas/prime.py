"""FFT algorithms beyond Cooley-Tukey, as SPL formulas.

The paper closes by noting SPL "can generate any class of algorithm
that can be represented as matrix expressions".  This module makes the
claim concrete for the three classic non-Cooley-Tukey FFTs:

* **Good-Thomas (prime-factor)**: for coprime ``m, k``,
  ``F_mk = P_out (F_m (x) F_k) P_in`` with CRT index permutations and
  *no twiddle factors*;
* **Rader**: ``F_p`` for prime ``p`` via a cyclic convolution of size
  ``p - 1`` (computed by FFTs), using the group structure of ``Z_p^*``;
* **Bluestein (chirp-z)**: ``F_n`` for *arbitrary* ``n`` via a cyclic
  convolution of any padded size ``m >= 2n - 1``.

Every factorization is an ordinary formula AST: border matrices and
zero-padding are ``(matrix ...)`` literals, the permutations are
``(permutation ...)`` literals, and the convolution cores reuse
:mod:`repro.formulas.multidim`.  All of it compiles through the
unmodified SPL compiler.
"""

from __future__ import annotations

import cmath
import math

from repro.core import nodes
from repro.core.errors import SplSemanticError
from repro.core.nodes import Formula, compose, fourier
from repro.formulas.multidim import inverse_dft


def _crt_index(c: int, d: int, m: int, k: int) -> int:
    """The unique u in [0, mk) with u = c (mod m) and u = d (mod k)."""
    n = m * k
    for u in range(n):  # n is small; clarity over cleverness
        if u % m == c and u % k == d:
            return u
    raise SplSemanticError("CRT failure (moduli not coprime?)")


def good_thomas(m: int, k: int,
                leaf=fourier) -> Formula:
    """The prime-factor algorithm: ``F_mk = P_out (F_m (x) F_k) P_in``.

    Requires ``gcd(m, k) == 1``.  The input map reads
    ``x2d[a, b] = x[(a*k + b*m) mod n]`` (Ruritanian) and the output
    map writes ``y[crt(c, d)] = y2d[c, d]`` — which is exactly what
    makes the twiddle matrix disappear.
    """
    if math.gcd(m, k) != 1:
        raise SplSemanticError(
            f"Good-Thomas needs coprime factors, got {m} and {k}"
        )
    n = m * k
    in_perm = [0] * n
    for a in range(m):
        for b in range(k):
            in_perm[a * k + b] = (a * k + b * m) % n + 1
    out_perm = [0] * n
    for u in range(n):
        out_perm[u] = (u % m) * k + (u % k) + 1
    return compose(
        nodes.PermutationLit(perm=tuple(out_perm)),
        nodes.tensor(leaf(m), leaf(k)),
        nodes.PermutationLit(perm=tuple(in_perm)),
    )


def _primitive_root(p: int) -> int:
    """The smallest generator of the multiplicative group mod prime p."""
    factors = set()
    phi = p - 1
    value = phi
    d = 2
    while d * d <= value:
        while value % d == 0:
            factors.add(d)
            value //= d
        d += 1
    if value > 1:
        factors.add(value)
    for g in range(2, p):
        if all(pow(g, phi // q, p) != 1 for q in factors):
            return g
    raise SplSemanticError(f"{p} is not prime")


def _cyclic_convolution_core(n: int, taps_spectrum,
                             leaf=fourier) -> Formula:
    """``F_n^{-1} diag(H) F_n`` for a fixed spectrum H."""
    values = tuple(complex(v) for v in taps_spectrum)
    return compose(
        inverse_dft(n, leaf),
        nodes.DiagonalLit(values=values),
        leaf(n),
    )


def rader(p: int, leaf=fourier) -> Formula:
    """Rader's FFT for prime ``p``: a size ``p-1`` cyclic convolution.

    With ``g`` a generator of ``Z_p^*``::

        F_p = P_out B_2 (1 (+) C_{p-1}) B_1 P_in

    where ``P_in`` reorders the nonzero inputs by ``g^{-t}``, ``P_out``
    reorders the nonzero outputs by ``g^s``, ``C`` is the circulant of
    the twiddle sequence ``w_p^{g^t}``, and the borders ``B_1``/``B_2``
    add the DC terms.  The circulant itself is computed by FFTs of size
    ``p - 1`` through the convolution theorem.
    """
    if p < 3 or any(p % q == 0 for q in range(2, int(p ** 0.5) + 1)):
        raise SplSemanticError(f"Rader needs an odd prime, got {p}")
    import numpy as np

    g = _primitive_root(p)
    w = cmath.exp(-2j * math.pi / p)
    order = p - 1
    g_pow = [pow(g, t, p) for t in range(order)]
    g_inv_pow = [pow(g, order - t, p) % p for t in range(order)]

    # Input permutation: z[0] = x[0]; z[1 + t] = x[g^{-t} mod p].
    in_perm = [1] + [g_inv_pow[t] + 1 for t in range(order)]
    # Output permutation: y[0] = u[0]; y[g^s mod p] = u[1 + s].
    out_perm = [0] * p
    out_perm[0] = 1
    for s in range(order):
        out_perm[g_pow[s]] = 1 + s + 1
    # The circulant's first column: c[t] = w_p^(g^t); its action on the
    # permuted inputs produces sum_j w^(g^(s) g^(-t)) ... = the DFT's
    # nonzero block.  Spectrum computed once, numerically.
    c = np.array([w ** g_pow[t] for t in range(order)])
    spectrum = np.fft.fft(c)

    # After (1 (+) C) the lanes hold [x0; (C x')_s].  The DC output
    # y[0] = x0 + sum(x') is recovered from the convolved lanes using
    # sum_s (C x')_s = (sum_t c_t)(sum x') and sum_t w_p^(g^t) = -1,
    # so y[0] = x0 - sum_s (C x')_s; the other outputs just add x0:
    #   M = [[1, -1 ... -1],
    #        [1,  I       ]]
    border_rows = [tuple([1.0] + [-1.0] * order)]
    for r in range(order):
        row = [0.0] * p
        row[0] = 1.0
        row[1 + r] = 1.0
        border_rows.append(tuple(row))

    return compose(
        nodes.PermutationLit(perm=tuple(out_perm)),
        nodes.MatrixLit(rows=tuple(border_rows)),
        nodes.direct_sum(nodes.DiagonalLit(values=(1.0,)),
                         _cyclic_convolution_core(order, spectrum, leaf)),
        nodes.PermutationLit(perm=tuple(in_perm)),
    )


def bluestein(n: int, *, padded: int | None = None,
              leaf=fourier) -> Formula:
    """Bluestein's chirp-z FFT for arbitrary ``n``.

    ``F_n = diag(b) R C_m E diag(a)`` with chirps
    ``a_j = e^{-i pi j^2 / n}``, ``b_k = e^{-i pi k^2 / n}``, a cyclic
    convolution ``C_m`` of the chirp ``c_t = e^{+i pi t^2 / n}``
    (indices folded mod m), zero-padding ``E`` and restriction ``R``.
    ``m`` defaults to the smallest power of two >= 2n - 1, so the core
    FFTs are power-of-two even when ``n`` is prime.
    """
    if n < 1:
        raise SplSemanticError("Bluestein size must be positive")
    import numpy as np

    m = padded or (1 << (2 * n - 2).bit_length()) if n > 1 else 1
    if m < 2 * n - 1 and n > 1:
        raise SplSemanticError(f"padded size {m} < 2n-1 = {2 * n - 1}")
    chirp = [cmath.exp(-1j * math.pi * (j * j) / n) for j in range(n)]
    # Chirp kernel folded onto [0, m): c[t] = e^{+i pi t^2/n} for
    # |t| < n, placed at t mod m.
    kernel = np.zeros(m, dtype=complex)
    for t in range(-(n - 1), n):
        kernel[t % m] += cmath.exp(1j * math.pi * (t * t) / n)
    spectrum = np.fft.fft(kernel)

    embed_rows = []
    for r in range(m):
        row = [0.0] * n
        if r < n:
            row[r] = 1.0
        embed_rows.append(tuple(row))
    restrict_rows = []
    for r in range(n):
        row = [0.0] * m
        row[r] = 1.0
        restrict_rows.append(tuple(row))

    return compose(
        nodes.DiagonalLit(values=tuple(chirp)),
        nodes.MatrixLit(rows=tuple(restrict_rows)),
        _cyclic_convolution_core(m, spectrum, leaf),
        nodes.MatrixLit(rows=tuple(embed_rows)),
        nodes.DiagonalLit(values=tuple(chirp)),
    )
