"""Dense definitions of the signal transforms (Section 2.1).

These matrices are the ground truth that every factorization rule and
every generated program is verified against.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.errors import SplSemanticError


def dft_matrix(n: int) -> np.ndarray:
    """The n-point DFT: element (p, q) is ``w_n^(p*q)``, w_n = e^(-2pi*i/n)."""
    if n <= 0:
        raise SplSemanticError("DFT size must be positive")
    indices = np.arange(n)
    exponents = np.outer(indices, indices) % n
    w = np.exp(-2j * math.pi / n)
    return np.power(w, exponents)


def stride_perm_matrix(n: int, s: int) -> np.ndarray:
    """The stride permutation ``L^n_s``: y[j*(n/s) + i] = x[i*s + j].

    Reading the input with stride ``s``; equivalently the transpose of
    an (n/s) x s row-major matrix.
    """
    if n <= 0 or s <= 0 or n % s != 0:
        raise SplSemanticError(f"(L {n} {s}): s must divide n")
    m = n // s
    matrix = np.zeros((n, n))
    for i in range(m):
        for j in range(s):
            matrix[j * m + i, i * s + j] = 1.0
    return matrix


def twiddle_matrix(n: int, s: int) -> np.ndarray:
    """The twiddle matrix ``T^n_s``: diag entries w_n^(i*j) at i*s + j."""
    if n <= 0 or s <= 0 or n % s != 0:
        raise SplSemanticError(f"(T {n} {s}): s must divide n")
    m = n // s
    w = np.exp(-2j * math.pi / n)
    diag = np.empty(n, dtype=complex)
    for i in range(m):
        for j in range(s):
            diag[i * s + j] = w ** (i * j)
    return np.diag(diag)


def reversal_matrix(n: int) -> np.ndarray:
    """The reversal permutation ``J_n``: y[i] = x[n-1-i]."""
    if n <= 0:
        raise SplSemanticError("(J n): size must be positive")
    return np.fliplr(np.eye(n))


def wht_matrix(n: int) -> np.ndarray:
    """The Walsh-Hadamard transform in Hadamard (natural) order."""
    if n <= 0 or n & (n - 1):
        raise SplSemanticError("WHT size must be a power of two")
    matrix = np.array([[1.0]])
    h2 = np.array([[1.0, 1.0], [1.0, -1.0]])
    while matrix.shape[0] < n:
        matrix = np.kron(matrix, h2)
    return matrix


def dct2_matrix(n: int) -> np.ndarray:
    """The unnormalized DCT-II: y[k] = sum_j cos(pi*k*(2j+1)/(2n)) x[j].

    With this scaling ``DCT2_2 = diag(1, 1/sqrt(2)) . F_2`` exactly as
    in Section 2.1 of the paper.
    """
    if n <= 0:
        raise SplSemanticError("DCT-II size must be positive")
    k = np.arange(n).reshape(-1, 1)
    j = np.arange(n).reshape(1, -1)
    return np.cos(math.pi * k * (2 * j + 1) / (2 * n))


def dct4_matrix(n: int) -> np.ndarray:
    """The unnormalized DCT-IV: y[k] = sum_j cos(pi(2k+1)(2j+1)/(4n)) x[j]."""
    if n <= 0:
        raise SplSemanticError("DCT-IV size must be positive")
    k = np.arange(n).reshape(-1, 1)
    j = np.arange(n).reshape(1, -1)
    return np.cos(math.pi * (2 * k + 1) * (2 * j + 1) / (4 * n))
