"""Differential fuzzing for the SPL compiler.

Three pieces, mirroring classic compiler-fuzzing practice:

* :mod:`repro.fuzz.generator` — a seeded grammar-based generator that
  produces *valid* SPL programs by construction (building size-
  compatible formula ASTs and rendering them back to source), plus
  boundary programs and mutated-invalid programs;
* :mod:`repro.fuzz.oracle` — the differential oracle: every compiled
  program is executed through the Python and NumPy backends **and** the
  i-code interpreter, and all three are compared against the dense
  matrix semantics ``to_matrix(f) @ x``;
* :mod:`repro.fuzz.harness` — the driver: generates N cases, classifies
  each outcome (ok / rejected / crash / diverged), minimizes failures
  and writes them to a regression corpus.

``python -m repro.fuzz --count 300 --seed 1`` runs a deterministic
smoke pass suitable for CI; any crash or divergence exits non-zero.
"""

from repro.fuzz.generator import FuzzCase, generate_case, generate_cases
from repro.fuzz.harness import FuzzFailure, FuzzReport, run_fuzz
from repro.fuzz.oracle import FUZZ_LIMITS, OracleResult, check_source

__all__ = [
    "FUZZ_LIMITS",
    "FuzzCase",
    "FuzzFailure",
    "FuzzReport",
    "OracleResult",
    "check_source",
    "generate_case",
    "generate_cases",
    "run_fuzz",
]
