"""``python -m repro.fuzz`` — the deterministic fuzzing entry point.

Exit status 0 means no crashes, no divergences and no wrongly-rejected
valid programs; anything else exits 1 (with reproducers saved under
``--save-failures`` when given), so the command slots directly into CI.
"""

from __future__ import annotations

import argparse
import sys

from repro.fuzz.harness import run_fuzz


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differentially fuzz the SPL compiler.",
    )
    parser.add_argument("--count", type=int, default=200,
                        help="number of generated programs (default 200)")
    parser.add_argument("--seed", type=int, default=0,
                        help="generator seed (default 0)")
    parser.add_argument("--save-failures", metavar="DIR", default=None,
                        help="write minimized reproducers to DIR")
    parser.add_argument("--per-pass", action="store_true",
                        help="run the per-pass translation-validation "
                             "oracle on every compile (a pass that "
                             "changes the program's matrix counts as a "
                             "divergence); slower")
    args = parser.parse_args(argv)
    report = run_fuzz(args.count, args.seed, corpus_dir=args.save_failures,
                      validate_passes=args.per_pass)
    print(report.describe())
    return 0 if report.passed else 1


if __name__ == "__main__":
    sys.exit(main())
