"""Fuzzing driver: generate, check, minimize, persist.

:func:`run_fuzz` is deterministic for a fixed ``(count, seed)`` — the
CI smoke job relies on this.  Failures (crashes, divergences, and
valid programs the compiler wrongly rejected) are minimized by greedy
line removal and written to a corpus directory as self-describing
``.spl`` files that ``tests/fuzz/test_corpus_replay.py`` replays on
every run.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.core.limits import CompileLimits
from repro.fuzz.generator import KIND_VALID, FuzzCase, generate_case
from repro.fuzz.oracle import (
    STATUS_OK,
    STATUS_REJECTED,
    OracleResult,
    check_source,
)


@dataclass
class FuzzFailure:
    """One case the fuzzer flagged, with its minimized reproducer."""

    case: FuzzCase
    result: OracleResult
    reason: str  # "crash" | "diverged" | "valid-rejected"
    minimized: str = ""
    path: Path | None = None


@dataclass
class FuzzReport:
    count: int = 0
    seed: int = 0
    ok: int = 0
    rejected: int = 0
    crashes: int = 0
    divergences: int = 0
    valid_rejected: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        head = (f"fuzz: {self.count} cases (seed {self.seed}): "
                f"{self.ok} ok, {self.rejected} rejected, "
                f"{self.crashes} crashes, {self.divergences} divergences, "
                f"{self.valid_rejected} valid-rejected")
        lines = [head]
        for failure in self.failures:
            where = f" -> {failure.path}" if failure.path else ""
            lines.append(f"  [{failure.reason}] case {failure.case.index}: "
                         f"{failure.result.detail}{where}")
        return "\n".join(lines)


def minimize_source(source: str,
                    still_fails: Callable[[str], bool]) -> str:
    """Greedy line-removal minimization of a failing reproducer.

    Repeatedly drops every line whose removal preserves the failure,
    then strips trailing whitespace.  Cheap, deterministic, and good
    enough for the short programs the generator emits.
    """
    lines = source.split("\n")
    changed = True
    while changed and len(lines) > 1:
        changed = False
        for i in range(len(lines)):
            candidate = lines[:i] + lines[i + 1:]
            text = "\n".join(candidate)
            if still_fails(text):
                lines = candidate
                changed = True
                break
    return "\n".join(lines).strip() + "\n"


def write_corpus_entry(directory: Path | str, source: str, *,
                       expect: str, kind: str = "", seed: int | None = None,
                       detail: str = "") -> Path:
    """Persist a reproducer as a self-describing corpus ``.spl`` file.

    The ``; fuzz:`` header records what the replay test should assert:
    ``expect=rejected`` means the oracle must cleanly reject the file,
    ``expect=ok`` that it must compile and match the dense semantics.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    digest = hashlib.sha256(source.encode()).hexdigest()[:12]
    header = [f"; fuzz: expect={expect}"]
    if kind:
        header.append(f"; fuzz: kind={kind}")
    if seed is not None:
        header.append(f"; fuzz: seed={seed}")
    if detail:
        first_line = detail.split("\n")[0][:120]
        header.append(f"; fuzz: detail={first_line}")
    path = directory / f"{expect}-{digest}.spl"
    path.write_text("\n".join(header) + "\n" + source)
    return path


def read_corpus_expectation(path: Path | str) -> str:
    """The ``expect=`` value from a corpus file's header (default ok)."""
    for line in Path(path).read_text().split("\n"):
        if line.startswith("; fuzz:") and "expect=" in line:
            return line.split("expect=", 1)[1].split()[0]
    return STATUS_OK


def _classify(case: FuzzCase, result: OracleResult) -> str | None:
    if result.status not in (STATUS_OK, STATUS_REJECTED):
        return result.status
    if case.kind == KIND_VALID and result.status == STATUS_REJECTED:
        # A constructor-built program is valid by construction; the
        # compiler refusing it is a bug in the compiler (or the limits
        # are mis-tuned for the generator's MAX_SIZE).
        return "valid-rejected"
    return None


def run_fuzz(count: int = 200, seed: int = 0, *,
             limits: CompileLimits | None = None,
             corpus_dir: Path | str | None = None,
             minimize: bool = True,
             validate_passes: bool = False) -> FuzzReport:
    """Generate and differentially check ``count`` programs.

    ``validate_passes=True`` additionally runs the per-pass
    translation-validation oracle on every compile: a pass that
    changes the matrix its i-code denotes surfaces as a divergence.
    """
    report = FuzzReport(count=count, seed=seed)
    for index in range(count):
        case = generate_case(seed, index)
        result = check_source(case.source, limits=limits,
                              validate_passes=validate_passes)
        if result.status == STATUS_OK:
            report.ok += 1
        elif result.status == STATUS_REJECTED:
            report.rejected += 1
        elif result.status == "crash":
            report.crashes += 1
        else:
            report.divergences += 1
        reason = _classify(case, result)
        if reason is None:
            continue
        failure = FuzzFailure(case=case, result=result, reason=reason)
        if reason == "valid-rejected":
            report.valid_rejected += 1

        if minimize:
            def still_fails(text: str, _want=result.status) -> bool:
                return check_source(
                    text, limits=limits,
                    validate_passes=validate_passes,
                ).status == _want

            failure.minimized = minimize_source(case.source, still_fails)
        else:
            failure.minimized = case.source
        if corpus_dir is not None:
            # A crash/divergence corpus entry asserts the *fixed*
            # behavior: once repaired, the file must be ok or cleanly
            # rejected — so replay expects "rejected" for invalid
            # kinds and "ok" otherwise.
            expect = (STATUS_REJECTED if case.kind == "invalid"
                      else STATUS_OK)
            failure.path = write_corpus_entry(
                corpus_dir, failure.minimized, expect=expect,
                kind=case.kind, seed=seed, detail=result.detail,
            )
        report.failures.append(failure)
    return report
