"""The differential oracle: four independent executions must agree.

For every formula unit in a program the oracle computes

1. the dense matrix semantics ``to_matrix(f) @ x`` (ground truth),
2. the compiled Python backend's result,
3. the compiled NumPy (batch) backend's result,
4. the i-code interpreter's result on the compiled program,

on a deterministic random input derived from the source text.  Any
disagreement is a ``diverged`` verdict; any exception that is *not* a
typed :class:`~repro.core.errors.SplError` (``RecursionError``,
``MemoryError``, assertion failures, ...) is a ``crash``.  A clean
typed rejection is ``rejected`` — the correct outcome for invalid
inputs and for programs that exceed the configured resource limits.

With ``validate_passes=True`` every compile additionally runs the
per-pass translation-validation oracle (:mod:`repro.core.validate`):
each optimizer pass must preserve the matrix the i-code denotes.  A
:class:`~repro.core.errors.SplValidationError` is a *compiler* defect,
so although it is a typed ``SplError`` it counts as ``diverged``, not
``rejected``.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from repro.core.compiler import CompilerOptions, SplCompiler
from repro.core.errors import SplError, SplValidationError
from repro.core.interpreter import run_program
from repro.core.limits import CompileLimits, DEFAULT_LIMITS

STATUS_OK = "ok"
STATUS_REJECTED = "rejected"
STATUS_CRASH = "crash"
STATUS_DIVERGED = "diverged"

#: Tightened limits for fuzzing: generated programs are tiny, so any
#: run that needs more than this is itself a finding.
FUZZ_LIMITS = DEFAULT_LIMITS.with_overrides(
    max_icode_statements=100_000,
    max_unroll_statements=50_000,
    max_table_bytes=1 << 20,
    compile_deadline=10.0,
)

_LANGUAGES = ("python", "numpy")


@dataclass
class OracleResult:
    """Outcome of one differential check."""

    status: str
    detail: str = ""
    compiled: int = 0  # units that compiled and matched
    error: BaseException | None = field(default=None, repr=False)

    @property
    def failed(self) -> bool:
        return self.status in (STATUS_CRASH, STATUS_DIVERGED)


def _input_vector(source: str, n: int) -> list[complex]:
    digest = hashlib.sha256(source.encode()).hexdigest()
    rng = random.Random(int(digest[:16], 16))
    return [complex(rng.uniform(-1, 1), rng.uniform(-1, 1))
            for _ in range(n)]


def _interleave(x: list[complex]) -> list[float]:
    buf: list[float] = []
    for value in x:
        buf.extend((value.real, value.imag))
    return buf


def _deinterleave(buf: list) -> list[complex]:
    return [complex(buf[2 * k], buf[2 * k + 1])
            for k in range(len(buf) // 2)]


def check_source(source: str, *,
                 limits: CompileLimits | None = None,
                 languages: tuple[str, ...] = _LANGUAGES,
                 atol: float = 1e-7,
                 validate_passes: bool = False) -> OracleResult:
    """Differentially validate one SPL source text."""
    import numpy as np

    from repro.formulas.matrices import to_matrix

    limits = limits or FUZZ_LIMITS
    try:
        compiler = SplCompiler(
            CompilerOptions(validate_passes=validate_passes), limits=limits)
        program = compiler.parse(source)
        compiler.defines.update(program.defines)
        units = list(program.units)
    except SplError as exc:
        return OracleResult(STATUS_REJECTED, str(exc), error=exc)
    except BaseException as exc:  # noqa: BLE001 - any escape is a crash
        return OracleResult(
            STATUS_CRASH, f"{type(exc).__name__}: {exc}", error=exc
        )

    compiled = 0
    for unit in units:
        try:
            expected = to_matrix(unit.formula)
            x = _input_vector(source, expected.shape[1])
            want = expected @ np.asarray(x)
            tolerance = atol * max(1.0, float(np.abs(want).max(initial=0.0)))
            routine = None
            for language in languages:
                routine = compiler.compile_formula(
                    unit.formula, name=f"{unit.name}_{language}",
                    datatype="complex", language=language, limits=limits,
                )
                got = np.asarray(routine.run(x))
                if not np.allclose(got, want, atol=tolerance):
                    worst = float(np.abs(got - want).max())
                    return OracleResult(
                        STATUS_DIVERGED,
                        f"{unit.name}: {language} backend differs from "
                        f"dense semantics by {worst:g}",
                    )
            # The interpreter runs the last compiled unit's i-code.
            if routine is not None:
                width = routine.program.element_width
                buf = _interleave(x) if width == 2 else list(x)
                out = run_program(routine.program, buf)
                got = np.asarray(
                    _deinterleave(out) if width == 2 else out
                )
                if not np.allclose(got, want, atol=tolerance):
                    worst = float(np.abs(got - want).max())
                    return OracleResult(
                        STATUS_DIVERGED,
                        f"{unit.name}: interpreter differs from dense "
                        f"semantics by {worst:g}",
                    )
            compiled += 1
        except SplValidationError as exc:
            # A failed per-pass validation means a compiler pass
            # miscompiled the program — a defect, never a rejection.
            return OracleResult(
                STATUS_DIVERGED, f"{unit.name}: {exc}",
                compiled=compiled, error=exc,
            )
        except SplError as exc:
            return OracleResult(
                STATUS_REJECTED, f"{unit.name}: {exc}",
                compiled=compiled, error=exc,
            )
        except BaseException as exc:  # noqa: BLE001
            return OracleResult(
                STATUS_CRASH, f"{unit.name}: {type(exc).__name__}: {exc}",
                compiled=compiled, error=exc,
            )
    return OracleResult(STATUS_OK, compiled=compiled)
