"""The formula generator (Figure 1 of the paper).

Enumerates the algorithm space: breakdown trees for the FFT via the
factorization identities of Section 2.1 (:mod:`fft_rules`), plus the
Walsh-Hadamard (:mod:`wht_rules`) and DCT (:mod:`dct_rules`) spaces.
The search engine picks from these candidates using timing feedback.
"""

from repro.generator.fft_rules import (
    all_binary_splits,
    enumerate_ct_formulas,
    ordered_factorizations,
)
from repro.generator.wht_rules import enumerate_wht_formulas
from repro.generator.dct_rules import dct2_recursive, dct4_recursive

__all__ = [
    "all_binary_splits",
    "dct2_recursive",
    "dct4_recursive",
    "enumerate_ct_formulas",
    "enumerate_wht_formulas",
    "ordered_factorizations",
]
