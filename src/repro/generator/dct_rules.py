"""Recursive DCT formula generation (Section 2.1).

The paper sketches ``DCTII_n = P (DCTII_{n/2} (+) DCTIV_{n/2})
(I (x) F_2) Q`` and ``DCTIV_n = S DCTII_n D``; the verified concrete
forms live in :mod:`repro.formulas.factorization`.  This module builds
fully recursive breakdown trees from them.
"""

from __future__ import annotations

from repro.core import nodes
from repro.core.nodes import Formula
from repro.formulas.factorization import dct2_split, dct4_via_dct2


def dct2_recursive(n: int, *, min_size: int = 2) -> Formula:
    """A fully recursive DCT-II formula.

    Splits down to ``min_size``; DCT-IV sub-blocks are expanded through
    DCT-II (via the lifting identity) when they are still splittable,
    and left as definition leaves otherwise.
    """
    if n <= min_size or n % 2 or n < 4:
        return nodes.Param(name="DCT2", params=(n,))
    return dct2_split(
        n,
        leaf2=lambda m: dct2_recursive(m, min_size=min_size),
        leaf4=lambda m: dct4_recursive(m, min_size=min_size),
    )


def dct4_recursive(n: int, *, min_size: int = 2) -> Formula:
    """A recursive DCT-IV formula through the DCT-II lifting identity."""
    if n <= min_size:
        return nodes.Param(name="DCT4", params=(n,))
    return dct4_via_dct2(
        n, leaf2=lambda m: dct2_recursive(m, min_size=min_size)
    )
