"""Enumeration of FFT factorizations (the formula generator's FFT space).

Section 4: "we used dynamic programming over all possible
factorizations using Equation 10".  This module enumerates that space:
every ordered factorization of n feeds :func:`ct_multi`, and each
``F_{n_i}`` leaf can recursively use the best known sub-formula.

The single-step binary variants (DIT / DIF / parallel / vector forms,
Equations 5 and 7-9) are also exposed so the search space can be
widened beyond the paper's simple strategy.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.core.nodes import Formula, fourier
from repro.formulas import factorization as fac

Leaf = Callable[[int], Formula]

BINARY_RULES: dict[str, Callable[[int, int, Leaf], Formula]] = {
    "dit": fac.ct_dit,
    "dif": fac.ct_dif,
    "parallel": fac.ct_parallel,
    "vector": fac.ct_vector,
}


def ordered_factorizations(n: int, min_factor: int = 2) -> Iterator[list[int]]:
    """All ordered factor lists (each factor >= min_factor) with t >= 2."""
    for first in range(min_factor, n):
        if n % first:
            continue
        rest = n // first
        if rest == 1:
            continue
        yield [first, rest]
        for tail in ordered_factorizations(rest, min_factor):
            yield [first, *tail]


def all_binary_splits(n: int) -> Iterator[tuple[int, int]]:
    """All (r, s) with r*s = n, r >= 2, s >= 2."""
    for r in range(2, n):
        if n % r == 0 and n // r >= 2:
            yield r, n // r


def enumerate_ct_formulas(n: int, *, leaf: Leaf = fourier,
                          rules: tuple[str, ...] = ("multi",),
                          limit: int | None = None) -> list[Formula]:
    """Enumerate distinct factorizations of ``F_n``.

    ``rules`` chooses which identities generate candidates:

    * ``"multi"``  — Equation 10 over every ordered factorization;
    * ``"dit"``, ``"dif"``, ``"parallel"``, ``"vector"`` — the binary
      forms over every split.

    The direct definition ``(F n)`` is always the first candidate, so
    a search over the result can fall back to the O(n^2) algorithm.
    """
    candidates: list[Formula] = [leaf(n)] if leaf is not fourier \
        else [fourier(n)]
    seen: set[str] = {candidates[0].to_spl()}

    def push(formula: Formula) -> bool:
        text = formula.to_spl()
        if text in seen:
            return True
        seen.add(text)
        candidates.append(formula)
        return limit is None or len(candidates) < limit

    if "multi" in rules:
        for factors in ordered_factorizations(n):
            if not push(fac.ct_multi(factors, leaf=leaf)):
                return candidates
    for rule_name, rule in BINARY_RULES.items():
        if rule_name not in rules:
            continue
        for r, s in all_binary_splits(n):
            if not push(rule(r, s, leaf)):
                return candidates
    return candidates


def enumerate_breakdown_trees(n: int, *,
                              rule: Callable[[int, int, Leaf], Formula]
                              = fac.ct_dit,
                              limit: int | None = None) -> list[Formula]:
    """Fully recursive breakdown trees for ``F_n`` (binary rule).

    Every node of the tree either stays a definition leaf ``(F m)`` or
    splits with ``rule`` — the complete recursive Equation-10 space the
    paper's Figure 2 draws its 45 formulas for ``F_32`` from (there are
    51 distinct trees for n = 32).
    """
    memo: dict[int, list[Formula]] = {}

    def trees(m: int) -> list[Formula]:
        cached = memo.get(m)
        if cached is not None:
            return cached
        out: list[Formula] = [fourier(m)]
        for r, s in all_binary_splits(m):
            for left in trees(r):
                for right in trees(s):
                    queues: dict[int, list[Formula]] = {}
                    queues.setdefault(r, []).append(left)
                    queues.setdefault(s, []).append(right)

                    def leaf(k: int, q=queues) -> Formula:
                        return q[k].pop(0)

                    out.append(rule(r, s, leaf))
        memo[m] = out
        return out

    result = trees(n)
    if limit is not None:
        result = result[:limit]
    return result


def count_factorizations(n: int) -> int:
    """The number of Equation-10 candidates for ``F_n`` (plus the leaf)."""
    return 1 + sum(1 for _ in ordered_factorizations(n))
