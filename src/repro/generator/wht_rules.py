"""Enumeration of Walsh-Hadamard factorizations (Section 2.1).

``WHT_{2^k} = prod_i (I (x) WHT_{2^{e_i}} (x) I)`` over every ordered
composition of k — the search space of the Johnson/Pueschel WHT package
the paper cites as closely related work.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.nodes import Formula
from repro.formulas.factorization import wht_multi


def compositions(k: int, max_part: int | None = None) -> Iterator[list[int]]:
    """All ordered compositions of ``k`` into parts >= 1."""
    cap = max_part or k
    if k == 0:
        yield []
        return
    for first in range(1, min(k, cap) + 1):
        for tail in compositions(k - first, max_part):
            yield [first, *tail]


def enumerate_wht_formulas(n: int, *,
                           limit: int | None = None) -> list[Formula]:
    """All WHT breakdown formulas for size ``n = 2^k`` (single level)."""
    k = n.bit_length() - 1
    if 2 ** k != n:
        raise ValueError(f"WHT size must be a power of two, got {n}")
    formulas: list[Formula] = []
    for parts in compositions(k):
        formulas.append(wht_multi(parts))
        if limit is not None and len(formulas) >= limit:
            break
    return formulas
