"""Performance evaluation (the SPIRAL component of Figure 1).

Provides the measurement substrate for the experiments in Section 4:

* :mod:`repro.perfeval.ccompile` — compile generated C with the host C
  compiler and load it through ctypes (the timed execution path);
* :mod:`repro.perfeval.timing` — robust timing and the paper's
  "pseudo MFlops" metric ``5 N log2(N) / t``;
* :mod:`repro.perfeval.memory` — memory accounting for Figure 5;
* :mod:`repro.perfeval.accuracy` — relative error measurement in the
  style of benchfft, for Figure 6;
* :mod:`repro.perfeval.platform` — the host's "Table 1" row;
* :mod:`repro.perfeval.sandbox` — isolated worker-process measurement
  of untrusted generated code (timeouts, memory caps, crash
  detection, candidate quarantine).
"""

from repro.perfeval.ccompile import CCompileError, compile_c_program, have_c_compiler
from repro.perfeval.sandbox import (
    CandidateFailure,
    Quarantine,
    SandboxPolicy,
    SandboxResult,
    default_quarantine,
    sandbox_supported,
)
from repro.perfeval.timing import pseudo_mflops, time_callable

__all__ = [
    "CCompileError",
    "CandidateFailure",
    "Quarantine",
    "SandboxPolicy",
    "SandboxResult",
    "compile_c_program",
    "default_quarantine",
    "have_c_compiler",
    "pseudo_mflops",
    "sandbox_supported",
    "time_callable",
]
