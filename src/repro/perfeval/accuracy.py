"""Accuracy measurement in the style of benchfft (Figure 6).

The paper measured "the relative error of FFT of each size" with
Frigo's benchfft package, which compares against an arbitrary-precision
FFT.  Offline we use the equivalent practical reference: numpy's FFT
computed in extended precision where available.  The reported quantity
is the relative L2 error

    ||y - y_ref|| / ||y_ref||

averaged over random inputs.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


def reference_dft(x: np.ndarray) -> np.ndarray:
    """A higher-precision DFT reference (longdouble if the platform has it)."""
    if np.longdouble is not np.float64:
        xl = x.astype(np.clongdouble)
        yl = np.fft.fft(xl)
        return yl.astype(complex)
    return np.fft.fft(x)


def relative_error(fft: Callable[[np.ndarray], np.ndarray], n: int, *,
                   trials: int = 3, seed: int = 1234) -> float:
    """Mean relative L2 error of ``fft`` on random complex inputs."""
    rng = np.random.default_rng(seed)
    total = 0.0
    for _ in range(trials):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        y = np.asarray(fft(x))
        y_ref = reference_dft(x)
        total += float(
            np.linalg.norm(y - y_ref) / np.linalg.norm(y_ref)
        )
    return total / trials
