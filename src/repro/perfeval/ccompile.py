"""Compile generated C code with the host compiler and load via ctypes.

This is the reproduction's stand-in for the paper's back-end Fortran/C
compilers (Workshop 5.0, MIPSpro, egcs): generated routines are
compiled at maximum optimization and timed as native code.

Shared objects are cached by source hash under a build directory, so
repeated searches do not recompile identical candidates.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Callable

_DEFAULT_CFLAGS = ("-O3", "-fPIC", "-shared", "-fno-math-errno")


class CCompileError(RuntimeError):
    """Raised when the host C compiler fails (or does not exist)."""


def have_c_compiler() -> bool:
    return _find_compiler() is not None


def _find_compiler() -> str | None:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def default_build_dir() -> Path:
    root = os.environ.get("SPL_BUILD_DIR")
    if root:
        path = Path(root)
    else:
        path = Path(tempfile.gettempdir()) / "spl-build"
    path.mkdir(parents=True, exist_ok=True)
    return path


def compile_shared_object(source: str, *, cflags: tuple[str, ...] = (),
                          build_dir: Path | None = None) -> Path:
    """Compile C ``source`` into a cached shared object, returning its path."""
    compiler = _find_compiler()
    if compiler is None:
        raise CCompileError("no C compiler (cc/gcc/clang) on PATH")
    build_dir = build_dir or default_build_dir()
    flags = _DEFAULT_CFLAGS + tuple(cflags)
    digest = hashlib.sha256(
        ("\x00".join(flags) + "\x01" + source).encode()
    ).hexdigest()[:24]
    so_path = build_dir / f"spl_{digest}.so"
    if so_path.exists():
        return so_path
    c_path = build_dir / f"spl_{digest}.c"
    c_path.write_text(source)
    result = subprocess.run(
        [compiler, *flags, str(c_path), "-o", str(so_path), "-lm"],
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        raise CCompileError(
            f"C compilation failed:\n{result.stderr}\n--- source ---\n"
            + "\n".join(
                f"{i + 1:4d} {line}"
                for i, line in enumerate(source.split("\n")[:60])
            )
        )
    return so_path


def load_function(so_path: Path, name: str, *, strided: bool = False):
    """Load ``name`` from a shared object with the SPL C signature."""
    lib = ctypes.CDLL(str(so_path))
    fn = getattr(lib, name)
    argtypes = [ctypes.POINTER(ctypes.c_double),
                ctypes.POINTER(ctypes.c_double)]
    if strided:
        argtypes += [ctypes.c_int] * 4
    fn.argtypes = argtypes
    fn.restype = None
    fn._keepalive_lib = lib  # prevent the CDLL from being collected
    return fn


def compile_c_program(source: str, name: str, *, strided: bool = False,
                      cflags: tuple[str, ...] = (),
                      build_dir: Path | None = None):
    """Compile one routine and return the raw ctypes function."""
    so_path = compile_shared_object(source, cflags=cflags,
                                    build_dir=build_dir)
    return load_function(so_path, name, strided=strided)


def batch_driver_source(name: str, in_len: int, out_len: int) -> str:
    """A C batch driver looping over the rows of a (B, len) workspace.

    ``spl_batch_<name>(y, x, batch)`` applies ``name`` to ``batch``
    consecutive vectors with a single Python->native crossing, zeroing
    each output row first (the per-vector routines assume a zeroed
    output, matching the interpreter's semantics).
    """
    return (
        f"\nvoid spl_batch_{name}(double *restrict y, "
        f"const double *restrict x, int batch)\n"
        "{\n"
        "    long b;\n"
        "    int j;\n"
        "    for (b = 0; b < batch; b++) {\n"
        f"        double *yrow = y + b * {out_len};\n"
        f"        const double *xrow = x + b * {in_len};\n"
        f"        for (j = 0; j < {out_len}; j++) yrow[j] = 0.0;\n"
        f"        {name}(yrow, xrow);\n"
        "    }\n"
        "}\n"
    )


def load_batch_function(so_path: Path, name: str):
    """Load the ``spl_batch_<name>`` driver emitted next to ``name``."""
    lib = ctypes.CDLL(str(so_path))
    fn = getattr(lib, f"spl_batch_{name}")
    fn.argtypes = [ctypes.POINTER(ctypes.c_double),
                   ctypes.POINTER(ctypes.c_double),
                   ctypes.c_int]
    fn.restype = None
    fn._keepalive_lib = lib
    return fn


def make_numpy_wrapper(fn, out_len: int) -> Callable:
    """Wrap a ctypes routine as ``wrapper(x) -> y`` over float64 arrays."""
    import numpy as np

    c_double_p = ctypes.POINTER(ctypes.c_double)

    def wrapper(x: "np.ndarray") -> "np.ndarray":
        x = np.ascontiguousarray(x, dtype=np.float64)
        y = np.zeros(out_len, dtype=np.float64)
        fn(y.ctypes.data_as(c_double_p), x.ctypes.data_as(c_double_p))
        return y

    return wrapper
