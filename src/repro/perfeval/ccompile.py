"""Compile generated C code with the host compiler and load via ctypes.

This is the reproduction's stand-in for the paper's back-end Fortran/C
compilers (Workshop 5.0, MIPSpro, egcs): generated routines are
compiled at maximum optimization and timed as native code.

Shared objects are cached by source hash under a build directory, so
repeated searches do not recompile identical candidates.  The cache key
covers the full flag set (defaults + OpenMP + extra flags + caller
flags) as well as the source, so artifacts never leak across flag sets.

Extra flags: ``SPL_CFLAGS`` (e.g. ``SPL_CFLAGS=-march=native``) appends
host-compiler flags to every compilation; the CLI exposes the same knob
as ``--cflags``.  OpenMP: :func:`have_openmp` probes the toolchain once
(compile a trivial ``#pragma omp`` program), and
:func:`batch_driver_source` can emit a parallel ``spl_batch_omp_*``
driver next to the serial one; callers fall back to single-threaded
drivers when the probe fails.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shlex
import shutil
import subprocess
import tempfile
from functools import lru_cache
from pathlib import Path
from typing import Callable

_DEFAULT_CFLAGS = ("-O3", "-fPIC", "-shared", "-fno-math-errno")

_OPENMP_CFLAGS = ("-fopenmp",)

#: Honors ``#pragma omp simd`` without the OpenMP runtime — the right
#: flag for the codelet batch drivers, whose pragmas are vectorization
#: hints, not parallelism.
_OPENMP_SIMD_CFLAGS = ("-fopenmp-simd",)

#: Stderr of the last failed OpenMP probe per (compiler, flags) — kept
#: so callers can surface *why* OpenMP is off instead of silently
#: degrading (see :func:`openmp_probe_error`).
_PROBE_ERRORS: dict[tuple[str, tuple[str, ...]], str] = {}


def compile_timeout() -> float:
    """Wall-clock budget for one host-compiler invocation (seconds).

    Overridable via ``SPL_CC_TIMEOUT``; the default is generous — its
    job is to catch a wedged compiler (OOM thrash, broken toolchain),
    not to race normal builds.
    """
    try:
        value = float(os.environ.get("SPL_CC_TIMEOUT", "") or 120.0)
    except ValueError:
        return 120.0
    return value if value > 0 else 120.0

_OPENMP_PROBE = (
    "#include <omp.h>\n"
    "int spl_omp_probe(void) { return omp_get_max_threads(); }\n"
)

_OPENMP_SIMD_PROBE = (
    "double spl_simd_probe(const double *x, int n) {\n"
    "    double acc = 0.0;\n"
    "    int i;\n"
    "    #pragma omp simd reduction(+:acc)\n"
    "    for (i = 0; i < n; i++) acc += x[i];\n"
    "    return acc;\n"
    "}\n"
)


class CCompileError(RuntimeError):
    """Raised when the host C compiler fails (or does not exist)."""


def have_c_compiler() -> bool:
    return _find_compiler() is not None


def _find_compiler() -> str | None:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def extra_cflags() -> tuple[str, ...]:
    """Opt-in extra host-compiler flags from ``SPL_CFLAGS``.

    Parsed with shell quoting (``SPL_CFLAGS="-march=native -funroll-loops"``).
    These participate in the shared-object cache key and in the wisdom
    platform fingerprint, so changing them never reuses stale artifacts.
    """
    value = os.environ.get("SPL_CFLAGS", "")
    return tuple(shlex.split(value)) if value.strip() else ()


@lru_cache(maxsize=None)
def _probe_openmp(compiler: str, flags: tuple[str, ...]) -> bool:
    # lru_cache makes the probe once-per-session for each (compiler,
    # flags) pair — a failed probe is cached too, so it is never
    # re-run on every compile.
    build_dir = default_build_dir()
    c_path = build_dir / "spl_omp_probe.c"
    so_path = build_dir / "spl_omp_probe.so"
    try:
        c_path.write_text(_OPENMP_PROBE)
        result = subprocess.run(
            [compiler, *_DEFAULT_CFLAGS, *flags, *_OPENMP_CFLAGS,
             str(c_path), "-o", str(so_path)],
            capture_output=True, text=True, timeout=compile_timeout(),
        )
    except subprocess.TimeoutExpired as exc:
        _PROBE_ERRORS[(compiler, flags)] = (
            f"probe timed out after {exc.timeout:g}s"
        )
        return False
    except OSError as exc:
        _PROBE_ERRORS[(compiler, flags)] = f"probe failed to run: {exc}"
        return False
    if result.returncode != 0:
        _PROBE_ERRORS[(compiler, flags)] = result.stderr.strip()
        return False
    return result.returncode == 0


def openmp_probe_error() -> str | None:
    """Why the last OpenMP probe failed (None when it succeeded).

    Probes are cached per session (see :func:`_probe_openmp`), so this
    reflects the one probe actually run for the current compiler and
    ``SPL_CFLAGS``, not a per-compile re-probe.
    """
    compiler = _find_compiler()
    if compiler is None:
        return "no C compiler (cc/gcc/clang) on PATH"
    if _probe_openmp(compiler, extra_cflags()):
        return None
    return _PROBE_ERRORS.get((compiler, extra_cflags()),
                             "probe failed (no diagnostics captured)")


def have_openmp() -> bool:
    """True when the host toolchain compiles ``-fopenmp`` code.

    The probe result is cached per (compiler, extra flags); a missing
    compiler probes as False so callers can fall back to single-thread
    drivers unconditionally.
    """
    compiler = _find_compiler()
    if compiler is None:
        return False
    return _probe_openmp(compiler, extra_cflags())


def openmp_cflags() -> tuple[str, ...]:
    """The flags enabling OpenMP, empty when the toolchain lacks it."""
    return _OPENMP_CFLAGS if have_openmp() else ()


@lru_cache(maxsize=None)
def _probe_openmp_simd(compiler: str, flags: tuple[str, ...]) -> bool:
    build_dir = default_build_dir()
    c_path = build_dir / "spl_simd_probe.c"
    so_path = build_dir / "spl_simd_probe.so"
    try:
        c_path.write_text(_OPENMP_SIMD_PROBE)
        result = subprocess.run(
            [compiler, *_DEFAULT_CFLAGS, *flags, *_OPENMP_SIMD_CFLAGS,
             str(c_path), "-o", str(so_path)],
            capture_output=True, text=True, timeout=compile_timeout(),
        )
    except (subprocess.TimeoutExpired, OSError):
        return False
    return result.returncode == 0


def have_openmp_simd() -> bool:
    """True when the toolchain accepts ``-fopenmp-simd``.

    This enables ``#pragma omp simd`` as a pure vectorization hint (no
    OpenMP runtime, no thread creation) for the codelet batch drivers.
    The probe is cached per (compiler, extra flags), like the OpenMP
    one; without the flag the pragma is ignored harmlessly, so callers
    simply omit the flag rather than a whole code path.
    """
    compiler = _find_compiler()
    if compiler is None:
        return False
    return _probe_openmp_simd(compiler, extra_cflags())


def simd_cflags() -> tuple[str, ...]:
    """The ``#pragma omp simd`` enabling flags, empty if unsupported."""
    return _OPENMP_SIMD_CFLAGS if have_openmp_simd() else ()


def default_build_dir() -> Path:
    root = os.environ.get("SPL_BUILD_DIR")
    if root:
        path = Path(root)
    else:
        path = Path(tempfile.gettempdir()) / "spl-build"
    path.mkdir(parents=True, exist_ok=True)
    return path


def shared_object_cache_key(source: str, *, cflags: tuple[str, ...] = (),
                            openmp: bool = False,
                            key_extra: tuple[str, ...] = ()) -> str:
    """The cache digest :func:`compile_shared_object` would use.

    Exposed so wisdom packs can pre-seed the shared-object cache: an
    artifact published under this digest (as ``spl_<digest>.so`` in
    the build dir) is served as a cache hit by a later
    ``compile_shared_object`` call with the same inputs — without ever
    invoking the host toolchain.  The digest folds in the effective
    flag set, so it is only portable between hosts that agree on
    ``SPL_CFLAGS`` and the OpenMP probe outcome.
    """
    flags = _DEFAULT_CFLAGS + extra_cflags() + tuple(cflags)
    if openmp:
        flags += _OPENMP_CFLAGS
    return hashlib.sha256(
        ("\x00".join(flags) + "\x02" + "\x00".join(key_extra)
         + "\x01" + source).encode()
    ).hexdigest()[:24]


def compile_shared_object(source: str, *, cflags: tuple[str, ...] = (),
                          build_dir: Path | None = None,
                          openmp: bool = False,
                          key_extra: tuple[str, ...] = ()) -> Path:
    """Compile C ``source`` into a cached shared object, returning its path.

    ``openmp=True`` adds the OpenMP flags (the caller is expected to
    have checked :func:`have_openmp`); ``SPL_CFLAGS`` appends extra
    flags.  Both are folded into the cache key together with ``cflags``
    and the source, so e.g. the threaded and serial builds of one
    routine never collide.

    ``key_extra`` adds caller-chosen components to the cache key
    without affecting compilation — for knobs that change how the
    artifact will be *used* rather than its text (e.g. the codelet
    driver mode, or the unroll threshold that produced the source).
    Most such knobs already change the source and are covered
    implicitly; ``key_extra`` makes the coverage explicit and survives
    representations that happen to collide.

    The cache is consulted *before* the toolchain is located: a host
    without any C compiler still serves cache hits, which is what lets
    a replica boot hot from a wisdom pack's bundled artifacts.
    """
    build_dir = build_dir or default_build_dir()
    digest = shared_object_cache_key(source, cflags=cflags,
                                     openmp=openmp, key_extra=key_extra)
    so_path = build_dir / f"spl_{digest}.so"
    if so_path.exists():
        return so_path
    compiler = _find_compiler()
    if compiler is None:
        raise CCompileError("no C compiler (cc/gcc/clang) on PATH")
    flags = _DEFAULT_CFLAGS + extra_cflags() + tuple(cflags)
    if openmp:
        flags += _OPENMP_CFLAGS
    c_path = build_dir / f"spl_{digest}.c"
    c_path.write_text(source)
    # Compile to a private temp name, then atomically publish: a
    # killed/timed-out compile never leaves a truncated .so in the
    # cache, and concurrent compiles of the same digest don't trample
    # each other's output mid-write.
    tmp_path = build_dir / f"spl_{digest}.{os.getpid()}.tmp.so"
    timeout = compile_timeout()
    try:
        result = subprocess.run(
            [compiler, *flags, str(c_path), "-o", str(tmp_path), "-lm"],
            capture_output=True,
            text=True,
            timeout=timeout,
        )
    except subprocess.TimeoutExpired as exc:
        tmp_path.unlink(missing_ok=True)
        stderr = exc.stderr or ""
        if isinstance(stderr, bytes):
            stderr = stderr.decode(errors="replace")
        raise CCompileError(
            f"C compilation timed out after {timeout:g}s "
            f"(set SPL_CC_TIMEOUT to raise)\n{stderr}".rstrip()
        ) from exc
    if result.returncode != 0:
        tmp_path.unlink(missing_ok=True)
        raise CCompileError(
            f"C compilation failed:\n{result.stderr}\n--- source ---\n"
            + "\n".join(
                f"{i + 1:4d} {line}"
                for i, line in enumerate(source.split("\n")[:60])
            )
        )
    try:
        os.replace(tmp_path, so_path)
    except OSError as exc:
        tmp_path.unlink(missing_ok=True)
        if not so_path.exists():  # a concurrent winner is fine
            raise CCompileError(f"cannot publish {so_path}: {exc}") from exc
    return so_path


def load_function(so_path: Path, name: str, *, strided: bool = False):
    """Load ``name`` from a shared object with the SPL C signature."""
    lib = ctypes.CDLL(str(so_path))
    fn = getattr(lib, name)
    argtypes = [ctypes.POINTER(ctypes.c_double),
                ctypes.POINTER(ctypes.c_double)]
    if strided:
        argtypes += [ctypes.c_int] * 4
    fn.argtypes = argtypes
    fn.restype = None
    fn._keepalive_lib = lib  # prevent the CDLL from being collected
    return fn


def compile_c_program(source: str, name: str, *, strided: bool = False,
                      cflags: tuple[str, ...] = (),
                      build_dir: Path | None = None):
    """Compile one routine and return the raw ctypes function."""
    so_path = compile_shared_object(source, cflags=cflags,
                                    build_dir=build_dir)
    return load_function(so_path, name, strided=strided)


def batch_driver_source(name: str, in_len: int, out_len: int, *,
                        openmp: bool = False,
                        codelet: bool = False) -> str:
    """A C batch driver looping over the rows of a (B, len) workspace.

    ``spl_batch_<name>(y, x, batch)`` applies ``name`` to ``batch``
    consecutive vectors with a single Python->native crossing, zeroing
    each output row first (the per-vector routines assume a zeroed
    output, matching the interpreter's semantics).

    With ``openmp=True`` a second driver
    ``spl_batch_omp_<name>(y, x, batch, nthreads)`` is emitted that
    splits the batch axis across OpenMP threads with a static schedule
    (contiguous chunks, same per-row arithmetic and rounding as the
    serial loop, so results are bit-identical for any thread count).
    The generated per-vector routines keep their temporaries on the
    stack and their tables ``static const``, so concurrent calls from
    several OpenMP threads are safe.

    With ``codelet=True`` (straight-line routines only) the serial
    driver gains an aligned fast path: when both workspace bases are
    64-byte aligned — the runner allocates them that way — the batch
    loop runs with ``__builtin_assume_aligned`` pointers and a
    ``#pragma omp simd`` hint, letting the compiler vectorize across
    the fully-inlined codelet body.  The alignment is *checked at
    runtime*, never assumed: foreign buffers take the plain loop, so
    an unaligned caller gets the same bits, just slower.  The pragma
    needs ``-fopenmp-simd`` (see :func:`have_openmp_simd`) to be more
    than a comment; without it the driver still compiles and runs
    identically.  Rounding is unaffected either way — vectorizing the
    batch axis reorders no within-row arithmetic, and rows are
    independent.

    The serial driver is strength-reduced: the row pointers advance by
    ``out_len``/``in_len`` per iteration instead of recomputing
    ``y + b * out_len`` each trip.  The OpenMP driver must keep the
    per-``b`` computation — its iterations are distributed across
    threads, so there is no sequential pointer to bump.
    """
    body = (
        f"        double *yrow = y + b * {out_len};\n"
        f"        const double *xrow = x + b * {in_len};\n"
        f"        for (j = 0; j < {out_len}; j++) yrow[j] = 0.0;\n"
        f"        {name}(yrow, xrow);\n"
    )
    fast_path = ""
    if codelet:
        fast_path = (
            "    if ((((unsigned long)(const void *)y\n"
            "          | (unsigned long)(const void *)x) & 63UL) == 0UL) {\n"
            "        double *restrict ya = "
            "(double *)SPL_ASSUME_ALIGNED(y);\n"
            "        const double *restrict xa = "
            "(const double *)SPL_ASSUME_ALIGNED(x);\n"
            "        #pragma omp simd\n"
            "        for (b = 0; b < batch; b++) {\n"
            f"            double *yrow = ya + b * {out_len};\n"
            f"            const double *xrow = xa + b * {in_len};\n"
            "            int j;\n"
            f"            for (j = 0; j < {out_len}; j++) yrow[j] = 0.0;\n"
            f"            {name}(yrow, xrow);\n"
            "        }\n"
            "        return;\n"
            "    }\n"
        )
    prelude = ""
    if codelet:
        prelude = (
            "\n#ifndef SPL_ASSUME_ALIGNED\n"
            "#if defined(__GNUC__) || defined(__clang__)\n"
            "#define SPL_ASSUME_ALIGNED(p) "
            "__builtin_assume_aligned((p), 64)\n"
            "#else\n"
            "#define SPL_ASSUME_ALIGNED(p) (p)\n"
            "#endif\n"
            "#endif\n"
        )
    source = (
        prelude +
        f"\nvoid spl_batch_{name}(double *restrict y, "
        f"const double *restrict x, int batch)\n"
        "{\n"
        "    long b;\n"
        "    int j;\n"
        "    double *yrow = y;\n"
        "    const double *xrow = x;\n"
        + fast_path +
        "    for (b = 0; b < batch; b++) {\n"
        f"        for (j = 0; j < {out_len}; j++) yrow[j] = 0.0;\n"
        f"        {name}(yrow, xrow);\n"
        f"        yrow += {out_len};\n"
        f"        xrow += {in_len};\n"
        "    }\n"
        "}\n"
    )
    if openmp:
        source += (
            f"\nvoid spl_batch_omp_{name}(double *restrict y, "
            f"const double *restrict x, int batch, int nthreads)\n"
            "{\n"
            "    long b;\n"
            "    #pragma omp parallel for schedule(static) "
            "num_threads(nthreads) if(nthreads > 1)\n"
            "    for (b = 0; b < batch; b++) {\n"
            "        int j;\n"
            + body +
            "    }\n"
            "}\n"
        )
    return source


def load_batch_function(so_path: Path, name: str):
    """Load the ``spl_batch_<name>`` driver emitted next to ``name``."""
    lib = ctypes.CDLL(str(so_path))
    fn = getattr(lib, f"spl_batch_{name}")
    fn.argtypes = [ctypes.POINTER(ctypes.c_double),
                   ctypes.POINTER(ctypes.c_double),
                   ctypes.c_int]
    fn.restype = None
    fn._keepalive_lib = lib
    return fn


def load_batch_omp_function(so_path: Path, name: str):
    """Load the ``spl_batch_omp_<name>`` OpenMP driver.

    Signature: ``(y, x, batch, nthreads)``; ``nthreads <= 1`` runs the
    loop serially inside the parallel region's ``if`` clause.
    """
    lib = ctypes.CDLL(str(so_path))
    fn = getattr(lib, f"spl_batch_omp_{name}")
    fn.argtypes = [ctypes.POINTER(ctypes.c_double),
                   ctypes.POINTER(ctypes.c_double),
                   ctypes.c_int,
                   ctypes.c_int]
    fn.restype = None
    fn._keepalive_lib = lib
    return fn


def make_numpy_wrapper(fn, out_len: int) -> Callable:
    """Wrap a ctypes routine as ``wrapper(x) -> y`` over float64 arrays."""
    import numpy as np

    c_double_p = ctypes.POINTER(ctypes.c_double)

    def wrapper(x: "np.ndarray") -> "np.ndarray":
        x = np.ascontiguousarray(x, dtype=np.float64)
        y = np.zeros(out_len, dtype=np.float64)
        fn(y.ctypes.data_as(c_double_p), x.ctypes.data_as(c_double_p))
        return y

    return wrapper
