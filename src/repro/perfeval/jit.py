"""In-process codelet JIT: straight-line i-code to native machine code.

The C backend's cold path shells out to the host compiler per plan —
~100ms-1s of first-request latency that the shared-object cache cannot
amortize for a plan nobody compiled before.  This module removes the
subprocess entirely for the kernels that dominate serving traffic:
fully-unrolled *codelets* (straight-line programs with constant
subscripts, which is exactly what §3.3.1 unrolling plus §3.3.2
intrinsic folding produce for small n).  Their four-tuple i-code is
lowered directly to x86-64 SSE2 machine code in a few milliseconds of
pure Python, written into an executable ``mmap`` page and entered
through ``ctypes`` — no compiler, no fork, no filesystem.

Why not cffi API mode or llvmlite?  cffi's API mode *also* spawns the
host C compiler (through setuptools), so it cannot beat the existing
gcc+ctypes flow on cold-compile latency; llvmlite would be the
portable in-process answer (Thielemann's "Compiling Signal Processing
Code embedded in Haskell via LLVM" lowers the same kind of DSP IR that
way) but is not available in this environment.  A direct emitter keeps
the dependency budget at zero and compiles a 64-point codelet in ~1ms.

Scope and fallback: only non-strided straight-line real-arithmetic
programs are eligible (:func:`jit_supported` + :func:`can_jit`);
anything else — looped programs, strided entry points, non-x86-64
hosts, kernels past the size cap — falls back to the existing
gcc+ctypes flow, which remains the steady-state optimum.  The runner
(:mod:`repro.perfeval.runner`) therefore treats the JIT as the *cold
tier* of the C backend: instant first execution, with an optional
background upgrade to the gcc-optimized shared object once the
subprocess finishes.

Code shape: arithmetic is scalar SSE2 (``movsd``/``addsd``/...), one
load-compute-store group per four-tuple, with every scalar, constant,
table element and temp slot living in a per-routine data block whose
base address is loaded into ``rax`` (``movabs``).  No register
allocation — correctness and compile speed are the point; the gcc
upgrade path owns peak throughput.  Generated code is called with the
exact ``void fn(double *y, const double *x)`` /
``void batch(double *y, const double *x, int batch)`` signatures of
the C backend, so the runner plugs JIT entry points into the same
slots as ctypes-loaded ones.

Results are bit-identical to the C backend at -O3: both execute the
same four-tuples in the same order with IEEE double arithmetic, and
neither reassociates (the build uses ``-fno-math-errno``, not
``-ffast-math``).  The cross-backend property suite asserts this.
"""

from __future__ import annotations

import ctypes
import mmap
import platform
import struct
import threading
from dataclasses import dataclass, field

from repro.core.errors import SplSemanticError
from repro.core.icode import (
    FConst,
    FVar,
    Loop,
    Op,
    Program,
    VecRef,
)

#: Refuse to emit codelets past this many four-tuples: big programs
#: belong to the gcc path (and straight-line code this large came from
#: an unroll the search would never pick).
MAX_JIT_STATEMENTS = 1 << 15

#: One process-wide probe result (None = not probed yet).
_PROBE_LOCK = threading.Lock()
_PROBE_RESULT: bool | None = None


class JitError(SplSemanticError):
    """Raised when a program cannot be lowered by the codelet JIT."""


def jit_supported() -> bool:
    """True when this host can run JIT-emitted codelets.

    Requires an x86-64 CPU and an OS that grants writable+executable
    anonymous mappings (hardened kernels may refuse PROT_EXEC; the
    probe result is cached process-wide).  ``SPL_JIT=0`` force-disables
    the JIT for A/B measurement and as an operational escape hatch.
    """
    import os

    if os.environ.get("SPL_JIT", "").strip() == "0":
        return False
    global _PROBE_RESULT
    with _PROBE_LOCK:
        if _PROBE_RESULT is None:
            _PROBE_RESULT = _probe()
        return _PROBE_RESULT


def _probe() -> bool:
    if platform.machine() not in ("x86_64", "AMD64"):
        return False
    try:
        buf = mmap.mmap(-1, mmap.PAGESIZE,
                        prot=mmap.PROT_READ | mmap.PROT_WRITE
                        | mmap.PROT_EXEC)
    except (ValueError, OSError, AttributeError):
        return False
    try:
        buf.write(b"\xb8\x2a\x00\x00\x00\xc3")  # mov eax, 42; ret
        addr = ctypes.addressof(ctypes.c_char.from_buffer(buf))
        fn = ctypes.CFUNCTYPE(ctypes.c_int)(addr)
        return fn() == 42
    except Exception:  # noqa: BLE001 - any failure means "no JIT"
        return False
    finally:
        # The CFUNCTYPE above holds no reference to buf; dropping the
        # export reference lets close() succeed.
        try:
            buf.close()
        except BufferError:  # pragma: no cover - export still alive
            pass


def can_jit(program: Program) -> bool:
    """True when ``program`` is a codelet this emitter can lower.

    Eligible programs are non-strided, real-arithmetic (complex must
    have been lowered by the type transformation, exactly as for the C
    backend), fully straight-line (no residual loops), with constant
    subscripts everywhere and at most :data:`MAX_JIT_STATEMENTS`
    four-tuples.
    """
    if program.strided:
        return False
    if program.datatype == "complex" and program.element_width != 2:
        return False
    ops = 0
    for inst in program.body:
        if isinstance(inst, Loop):
            return False
        if not isinstance(inst, Op):
            continue  # comments
        ops += 1
        if ops > MAX_JIT_STATEMENTS:
            return False
        for item in (inst.dest, *inst.operands()):
            if isinstance(item, VecRef):
                if item.index.as_const() is None:
                    return False
            elif not isinstance(item, (FVar, FConst)):
                return False  # unevaluated intrinsics etc.
    return True


# ---------------------------------------------------------------------------
# The emitter.
# ---------------------------------------------------------------------------
#
# Calling convention (System V AMD64): rdi = y, rsi = x, edx = batch
# (batch entry only).  The emitted code uses only caller-saved
# registers (rax, rcx, rdx, r8-r11, xmm0-xmm1), so no prologue spills
# are needed; the batch driver keeps its loop state in registers the
# codelet body does not touch.
#
# All non-argument memory — scalars, temp arrays, constants, the
# negation sign mask — lives in one per-routine data block whose base
# address is materialized with movabs into rax at entry.  Every
# operand is then a [reg + disp32] access, so instruction sizes are
# fixed and the emitter is single-pass.

_REX_W = 0x48


def _disp32(value: int) -> bytes:
    if not -(1 << 31) <= value < (1 << 31):  # pragma: no cover - capped
        raise JitError(f"displacement {value} overflows disp32")
    return struct.pack("<i", value)


def _modrm_disp32(reg: int, base: int) -> bytes:
    # mod=10 (disp32), reg, r/m=base.  base is rax/rdi/rsi (no SIB
    # needed: none of them is rsp/r12).
    return bytes((0x80 | (reg << 3) | base,))


# Register numbers used below.
_RAX, _RCX, _RDX, _RSI, _RDI = 0, 1, 2, 6, 7
_R8, _R9, _R10, _R11 = 8, 9, 10, 11


def _movsd_load(xmm: int, base: int, disp: int) -> bytes:
    # movsd xmm, qword [base + disp32]  (F2 0F 10 /r)
    return (b"\xf2\x0f\x10" + _modrm_disp32(xmm, base) + _disp32(disp))


def _movsd_store(xmm: int, base: int, disp: int) -> bytes:
    # movsd qword [base + disp32], xmm  (F2 0F 11 /r)
    return (b"\xf2\x0f\x11" + _modrm_disp32(xmm, base) + _disp32(disp))


_SSE_ARITH = {
    "+": b"\xf2\x0f\x58",  # addsd
    "-": b"\xf2\x0f\x5c",  # subsd
    "*": b"\xf2\x0f\x59",  # mulsd
    "/": b"\xf2\x0f\x5e",  # divsd
}


def _sse_arith(op: str, dst_xmm: int, src_xmm: int) -> bytes:
    # addsd/subsd/mulsd/divsd xmm_dst, xmm_src (register form: mod=11)
    return _SSE_ARITH[op] + bytes((0xC0 | (dst_xmm << 3) | src_xmm,))


def _xorpd_reg(dst_xmm: int, src_xmm: int) -> bytes:
    # xorpd xmm_dst, xmm_src (register form — no alignment constraint,
    # unlike the memory-operand form).
    return b"\x66\x0f\x57" + bytes((0xC0 | (dst_xmm << 3) | src_xmm,))


def _movabs(reg: int, value: int) -> bytes:
    rex = _REX_W | (0x1 if reg >= 8 else 0)
    return bytes((rex, 0xB8 | (reg & 7))) + struct.pack("<Q", value)


def _mov_reg(dst: int, src: int) -> bytes:
    rex = _REX_W | (0x4 if src >= 8 else 0) | (0x1 if dst >= 8 else 0)
    return bytes((rex, 0x89, 0xC0 | ((src & 7) << 3) | (dst & 7)))


def _add_reg_imm32(reg: int, value: int) -> bytes:
    rex = _REX_W | (0x1 if reg >= 8 else 0)
    return bytes((rex, 0x81, 0xC0 | (reg & 7))) + _disp32(value)


@dataclass
class _DataBlock:
    """The constant/scratch memory block behind one JIT'd routine.

    Layout (8-byte slots): [sign mask] [tables...] [scalars...]
    [temp arrays...] [constants...].  Offsets are bytes from the block
    base.
    """

    slots: list[float] = field(default_factory=list)
    _const_offsets: dict[bytes, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Negation mask (0x8000000000000000): loaded into a register
        # and xorpd'ed against the value to flip the sign bit.
        self.slots = [struct.unpack("<d", struct.pack("<Q", 1 << 63))[0]]

    @property
    def sign_mask_offset(self) -> int:
        return 0

    def add_const(self, value: float) -> int:
        key = struct.pack("<d", value)
        offset = self._const_offsets.get(key)
        if offset is None:
            offset = len(self.slots) * 8
            self.slots.append(value)
            self._const_offsets[key] = offset
        return offset

    def add_array(self, values) -> int:
        offset = len(self.slots) * 8
        self.slots.extend(float(v) for v in values)
        return offset

    def add_zeros(self, count: int) -> int:
        return self.add_array([0.0] * max(count, 1))

    def materialize(self) -> "ctypes.Array":
        # All block accesses are scalar movsd (no alignment constraint),
        # so plain ctypes 8-byte alignment suffices.
        return (ctypes.c_double * len(self.slots))(*self.slots)


class JitRoutine:
    """One JIT-compiled codelet: callable entry points + keepalives.

    ``fn(y_ptr, x_ptr)`` and ``batch_fn(y_ptr, x_ptr, batch)`` have
    the exact ctypes signatures of their shared-object counterparts
    (``POINTER(c_double)`` arguments), so the runner can use them
    interchangeably.  The executable mapping and data block stay alive
    exactly as long as this object (the entry points hold references).
    """

    def __init__(self, program: Program, code: bytes, batch_offset: int,
                 data: "ctypes.Array"):
        self.name = program.name
        self.in_len = program.in_size * program.element_width
        self.out_len = program.out_size * program.element_width
        self.code_bytes = len(code)
        self.data_bytes = ctypes.sizeof(data)
        self._data = data
        size = max(len(code), 1)
        size += (-size) % mmap.PAGESIZE
        self._map = mmap.mmap(-1, size,
                              prot=mmap.PROT_READ | mmap.PROT_WRITE
                              | mmap.PROT_EXEC)
        self._map.write(code)
        base = ctypes.addressof(ctypes.c_char.from_buffer(self._map))
        double_p = ctypes.POINTER(ctypes.c_double)
        self.fn = ctypes.CFUNCTYPE(None, double_p, double_p)(base)
        self.batch_fn = ctypes.CFUNCTYPE(
            None, double_p, double_p, ctypes.c_int)(base + batch_offset)
        # The CFUNCTYPE pointers do not keep the mapping or the data
        # block alive on their own; anchor everything on the entries
        # the runner will hold.
        self.fn._keepalive = self.batch_fn._keepalive = self


def compile_jit(program: Program) -> JitRoutine:
    """Lower an eligible codelet ``program`` to executable machine code.

    Raises :class:`JitError` when the program is not a codelet (use
    :func:`can_jit` to pre-check) or the host cannot execute emitted
    code (:func:`jit_supported`).
    """
    if not jit_supported():
        raise JitError("codelet JIT unsupported on this host")
    if not can_jit(program):
        raise JitError(
            f"{program.name} is not a straight-line codelet "
            f"(loops, strides or non-constant subscripts remain)"
        )
    data = _DataBlock()
    table_offsets = {
        name: data.add_array(values)
        for name, values in program.tables.items()
    }
    scalar_offsets = {
        name: data.add_zeros(1)
        for name in program.scalar_names()
    }
    temp_offsets = {
        info.name: data.add_zeros(info.size)
        for info in program.temp_vectors()
    }

    in_name = program.input_name()
    out_name = program.output_name()
    out_len = program.out_size * program.element_width

    def operand_location(item) -> tuple[int, int]:
        """(base register, byte displacement) for one operand."""
        if isinstance(item, FVar):
            return _RAX, scalar_offsets[item.name]
        if isinstance(item, FConst):
            value = item.value
            if isinstance(value, complex):  # pragma: no cover - typetrans
                raise JitError("complex constant reached the JIT")
            return _RAX, data.add_const(float(value))
        assert isinstance(item, VecRef)
        index = item.index.as_const()
        assert index is not None
        if item.vec == in_name:
            return _RSI, 8 * index
        if item.vec == out_name:
            return _RDI, 8 * index
        if item.vec in table_offsets:
            return _RAX, table_offsets[item.vec] + 8 * index
        if item.vec in temp_offsets:
            return _RAX, temp_offsets[item.vec] + 8 * index
        raise JitError(f"unknown vector {item.vec!r} in {program.name}")

    # Constants referenced by operands are appended to the data block
    # lazily by operand_location above, and every operand is encoded as
    # a block-relative disp32 with the base loaded at runtime — so the
    # body can be emitted first and the block materialized once, after
    # its final size is known.
    body = bytearray()
    for inst in program.body:
        if not isinstance(inst, Op):
            continue
        a_base, a_disp = operand_location(inst.a)
        body += _movsd_load(0, a_base, a_disp)
        if inst.op in _SSE_ARITH:
            b_base, b_disp = operand_location(inst.b)
            body += _movsd_load(1, b_base, b_disp)
            body += _sse_arith(inst.op, 0, 1)
        elif inst.op == "neg":
            body += _movsd_load(1, _RAX, data.sign_mask_offset)
            body += _xorpd_reg(0, 1)
        # "=" is just the load/store pair.
        d_base, d_disp = operand_location(inst.dest)
        body += _movsd_store(0, d_base, d_disp)

    block = data.materialize()
    base_addr = ctypes.addressof(block)

    # Codelet entry: materialize the data base, run the body, ret.
    codelet = bytearray()
    codelet += _movabs(_RAX, base_addr)
    codelet += body
    codelet += b"\xc3"  # ret

    # Batch entry (y=rdi, x=rsi, batch=edx):
    #   r8 = yrow, r9 = xrow, r10d = remaining count
    #   per row: zero the out row, inline-call the codelet body with
    #   rdi/rsi pointing at the row, advance.
    # The codelet body only clobbers rax/xmm0/xmm1, so r8-r11 survive
    # it; rdi/rsi are restored from r8/r9 each iteration.
    batch = bytearray()
    batch += _mov_reg(_R8, _RDI)          # r8 = y
    batch += _mov_reg(_R9, _RSI)          # r9 = x
    # mov r10d, edx (loop counter; 32-bit mov zero-extends)
    batch += bytes((0x41, 0x89, 0xD2))
    # The body reads but never writes rax, so the data base is loaded
    # once, outside the loop.
    batch += _movabs(_RAX, base_addr)
    # test r10d, r10d; jle end (rel32 patched below)
    batch += bytes((0x45, 0x85, 0xD2))
    jle_at = len(batch)
    batch += bytes((0x0F, 0x8E)) + b"\x00\x00\x00\x00"
    loop_top = len(batch)
    batch += _mov_reg(_RDI, _R8)          # rdi = yrow
    batch += _mov_reg(_RSI, _R9)          # rsi = xrow
    # Zero the output row (xorpd xmm0, xmm0 then unrolled stores).
    batch += bytes((0x66, 0x0F, 0x57, 0xC0))
    for j in range(out_len):
        batch += _movsd_store(0, _RDI, 8 * j)
    batch += body
    batch += _add_reg_imm32(_R8, 8 * out_len)
    batch += _add_reg_imm32(_R9, 8 * program.in_size
                            * program.element_width)
    # dec r10d; jg loop_top
    batch += bytes((0x41, 0xFF, 0xCA))
    batch += bytes((0x0F, 0x8F))
    batch += struct.pack("<i", loop_top - (len(batch) + 4))
    end = len(batch)
    batch[jle_at + 2:jle_at + 6] = struct.pack("<i", end - (jle_at + 6))
    batch += b"\xc3"  # ret

    code = bytes(codelet)
    batch_offset = len(code)
    code += bytes(batch)
    routine = JitRoutine(program, code, batch_offset, block)
    return routine
