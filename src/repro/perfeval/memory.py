"""Memory accounting for Figure 5.

The paper measured the memory required to *run* the generated code —
dominated by the text segment (code), the twiddle tables, the
temporaries, and the I/O vectors.  This module accounts the same
quantities for a compiled routine, and the FFTW substitute reports its
plan/buffer footprint through the same structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.compiler import CompiledRoutine

BYTES_PER_REAL = 8


@dataclass
class MemoryReport:
    """Bytes attributable to each part of a runnable transform."""

    code_bytes: int
    table_bytes: int
    temp_bytes: int
    io_bytes: int

    @property
    def total_bytes(self) -> int:
        return (self.code_bytes + self.table_bytes + self.temp_bytes
                + self.io_bytes)

    def as_dict(self) -> dict[str, int]:
        return {
            "code": self.code_bytes,
            "tables": self.table_bytes,
            "temps": self.temp_bytes,
            "io": self.io_bytes,
            "total": self.total_bytes,
        }


def routine_memory(routine: CompiledRoutine,
                   shared_object: Path | None = None) -> MemoryReport:
    """Account the memory footprint of one compiled routine.

    ``shared_object`` (when the C path is used) provides the true text
    segment size; otherwise the generated source size is the proxy.
    """
    program = routine.program
    if shared_object is not None and shared_object.exists():
        code = shared_object.stat().st_size
    else:
        code = len(routine.source.encode())
    width = program.element_width
    return MemoryReport(
        code_bytes=code,
        table_bytes=program.table_elements() * BYTES_PER_REAL,
        # temp vector sizes are physical element counts (already doubled
        # by the complex-to-real lowering when applicable)
        temp_bytes=program.temp_elements() * BYTES_PER_REAL,
        io_bytes=(program.in_size + program.out_size) * width
        * BYTES_PER_REAL,
    )
