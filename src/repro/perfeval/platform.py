"""Host platform inventory — the reproduction's Table 1 row.

The paper ran on three 1990s workstations (UltraSPARC II, MIPS R10000,
Pentium II).  We cannot reproduce those machines; instead this module
reports the same inventory fields for the host this reproduction runs
on, so EXPERIMENTS.md can print a directly comparable table row.
"""

from __future__ import annotations

import os
import platform as _platform
import shutil
import subprocess
from dataclasses import dataclass


@dataclass
class PlatformRow:
    """One row of Table 1: CPU, caches, memory, OS, compiler."""

    cpu: str
    l1_cache: str
    l2_cache: str
    memory: str
    os_name: str
    compiler: str

    def as_table_row(self) -> dict[str, str]:
        return {
            "CPU": self.cpu,
            "L1 cache": self.l1_cache,
            "L2 cache": self.l2_cache,
            "Memory": self.memory,
            "OS": self.os_name,
            "Compiler": self.compiler,
        }


def _read_first_match(path: str, key: str) -> str | None:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                if line.lower().startswith(key.lower()):
                    return line.split(":", 1)[1].strip()
    except OSError:
        return None
    return None


def _cache_size(index: int) -> str:
    base = f"/sys/devices/system/cpu/cpu0/cache/index{index}"
    try:
        with open(f"{base}/size", "r", encoding="utf-8") as handle:
            return handle.read().strip()
    except OSError:
        return "unknown"


def _memory_total() -> str:
    value = _read_first_match("/proc/meminfo", "MemTotal")
    if value is None:
        return "unknown"
    try:
        kib = int(value.split()[0])
        return f"{kib // 1024}MB"
    except (ValueError, IndexError):
        return value


def _compiler_version() -> str:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if not path:
            continue
        try:
            out = subprocess.run([path, "--version"], capture_output=True,
                                 text=True, timeout=10)
            first = out.stdout.split("\n", 1)[0].strip()
            if first:
                return first
        except (OSError, subprocess.TimeoutExpired):
            continue
    return "none (Python backend only)"


def host_platform() -> PlatformRow:
    """Collect the host's Table 1 inventory."""
    cpu = (
        _read_first_match("/proc/cpuinfo", "model name")
        or _platform.processor()
        or _platform.machine()
    )
    l1d = _cache_size(0)
    l1i = _cache_size(1)
    l2 = _cache_size(2)
    l1 = f"{l1d}/{l1i}" if "unknown" not in (l1d, l1i) else l1d
    os_name = f"{_platform.system()} {_platform.release()}"
    return PlatformRow(
        cpu=cpu,
        l1_cache=l1,
        l2_cache=l2,
        memory=_memory_total(),
        os_name=os_name,
        compiler=_compiler_version(),
    )


def format_table(rows: list[PlatformRow]) -> str:
    """Render platform rows like the paper's Table 1."""
    fields = ["CPU", "L1 cache", "L2 cache", "Memory", "OS", "Compiler"]
    lines = ["Table 1: Experiment platforms", "-" * 34]
    for row in rows:
        data = row.as_table_row()
        for field in fields:
            lines.append(f"  {field:<10} {data[field]}")
        lines.append("-" * 34)
    return "\n".join(lines)
