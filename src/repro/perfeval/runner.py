"""Build executable FFTs from compiled routines, preferring native code.

The paper times Fortran compiled by the platform's best compiler; here
the timed path is the C backend compiled by the host compiler (loaded
through ctypes with preallocated buffers so the measurement loop has no
Python allocation overhead).  Next in preference is the NumPy batch
backend (:mod:`repro.core.backend_numpy`), which vectorizes over a
batch axis and lowers affine loops to strided slices; the pure-Python
backend is the final fallback and the correctness reference in tests.

Batching: :meth:`ExecutableRoutine.apply` transforms one vector per
call and pays the full per-call crossing; :meth:`ExecutableRoutine.
apply_many` amortizes it over a ``(B, n)`` batch — through a generated
``spl_batch_<name>`` C driver (one ctypes crossing per batch), one
NumPy batch call, or a buffer-reusing Python loop.

Thread-safety: an :class:`ExecutableRoutine` owns preallocated scratch
buffers that every ``apply``/``apply_many`` call reuses, so one
instance must not be used from several threads concurrently; build one
executable per thread (cheap — compiled objects are cached), or batch
the work through a single ``apply_many`` call instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.backend_c import emit_c
from repro.core.backend_numpy import compile_numpy
from repro.core.compiler import CompiledRoutine
from repro.core.errors import SplSemanticError
from repro.perfeval import ccompile

#: Backend preference chains: the requested backend first, then the
#: fastest available fallback (c > numpy > python).
_PREFERENCE = {
    "c": ("c", "numpy", "python"),
    "numpy": ("numpy", "python"),
    "python": ("python",),
}


@dataclass
class ExecutableRoutine:
    """A runnable compiled routine with preallocated I/O buffers."""

    routine: CompiledRoutine
    backend: str  # "c", "numpy" or "python"
    raw_call: Callable  # fn(y_buffer, x_buffer) on 1-D physical buffers
    ctypes_fn: Callable | None = None  # underlying native entry (C backend)
    batch_fn: Callable | None = None  # spl_batch_* ctypes driver (C backend)
    batch_call: Callable | None = None  # fn(Y, X) on 2-D buffers (numpy)
    _scratch: tuple | None = field(default=None, repr=False)
    _batch_scratch: tuple | None = field(default=None, repr=False)

    @property
    def name(self) -> str:
        return self.routine.name

    @property
    def n(self) -> int:
        return self.routine.in_size

    def _dtype(self):
        program = self.routine.program
        if program.element_width == 1 and program.datatype == "complex":
            return np.complex128
        return np.float64

    def _buffers(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-instance single-vector scratch, allocated once."""
        if self._scratch is None:
            program = self.routine.program
            width = program.element_width
            dtype = self._dtype()
            self._scratch = (
                np.zeros(program.in_size * width, dtype=dtype),
                np.zeros(program.out_size * width, dtype=dtype),
            )
        return self._scratch

    def _batch_buffers(self, batch: int) -> tuple[np.ndarray, np.ndarray]:
        """Reusable (B, len) physical workspaces, reallocated only when
        the batch size changes."""
        if self._batch_scratch is None or \
                self._batch_scratch[0].shape[0] != batch:
            program = self.routine.program
            width = program.element_width
            dtype = self._dtype()
            self._batch_scratch = (
                np.zeros((batch, program.in_size * width), dtype=dtype),
                np.zeros((batch, program.out_size * width), dtype=dtype),
            )
        return self._batch_scratch

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Apply to a logical input vector; complex in, complex out.

        Scratch buffers are reused across calls (no per-call
        allocation); the returned array is a fresh copy.
        """
        program = self.routine.program
        width = program.element_width
        buf, y = self._buffers()
        if width == 2:
            buf[0::2] = np.real(x)
            buf[1::2] = np.imag(x)
        else:
            buf[:] = x
        y.fill(0)
        self.raw_call(y, buf)
        if width == 2:
            return y[0::2] + 1j * y[1::2]
        return y.copy()

    def apply_many(self, X: np.ndarray) -> np.ndarray:
        """Apply to a ``(B, n)`` batch of logical vectors at once.

        The whole batch crosses into the fastest available path with
        per-batch (not per-vector) overhead: a single ctypes call into
        the generated ``spl_batch_<name>`` C driver, one call of the
        NumPy batch function, or a scratch-reusing Python loop.
        Returns a fresh ``(B, out_size)`` array.
        """
        program = self.routine.program
        X = np.asarray(X)
        if X.ndim != 2 or X.shape[1] != program.in_size:
            raise SplSemanticError(
                f"{self.name} expects a (B, {program.in_size}) batch, "
                f"got shape {X.shape}"
            )
        width = program.element_width
        batch = X.shape[0]
        Xp, Yp = self._batch_buffers(batch)
        if width == 2:
            Xp[:, 0::2] = X.real
            Xp[:, 1::2] = X.imag
        else:
            Xp[:, :] = X
        if self.batch_fn is not None:
            import ctypes

            c_double_p = ctypes.POINTER(ctypes.c_double)
            self.batch_fn(Yp.ctypes.data_as(c_double_p),
                          Xp.ctypes.data_as(c_double_p), batch)
        elif self.batch_call is not None:
            Yp.fill(0)
            self.batch_call(Yp, Xp)
        else:
            for b in range(batch):
                Yp[b].fill(0)
                self.raw_call(Yp[b], Xp[b])
        if width == 2:
            return Yp[:, 0::2] + 1j * Yp[:, 1::2]
        return Yp.copy()

    def timer_closure(self) -> Callable[[], None]:
        """A zero-argument closure suitable for tight timing loops."""
        program = self.routine.program
        width = program.element_width
        rng = np.random.default_rng(0)
        x = np.ascontiguousarray(
            rng.standard_normal(program.in_size * width),
            dtype=np.float64,
        ).astype(self._dtype())
        y = np.zeros(program.out_size * width, dtype=self._dtype())
        if self.backend == "c":
            import ctypes

            c_double_p = ctypes.POINTER(ctypes.c_double)
            fn = self.ctypes_fn
            xp = x.ctypes.data_as(c_double_p)
            yp = y.ctypes.data_as(c_double_p)

            def call() -> None:
                fn(yp, xp)

            # ctypes raw function: bypass the wrapper's numpy handling.
            call._buffers = (x, y)
            return call

        fn = self.raw_call

        def call() -> None:
            fn(y, x)

        call._buffers = (x, y)
        return call

    def timer_closure_many(self, batch: int) -> Callable[[], None]:
        """A zero-argument closure timing ``apply_many`` on a fixed
        random batch (buffer filling included — that is the honest
        per-batch cost a caller pays)."""
        rng = np.random.default_rng(0)
        n = self.routine.program.in_size
        X = rng.standard_normal((batch, n))
        if self.routine.program.element_width == 2 or \
                self.routine.program.datatype == "complex":
            X = X + 1j * rng.standard_normal((batch, n))
        apply_many = self.apply_many

        def call() -> None:
            apply_many(X)

        call._buffers = (X,)
        return call


def _build_c(routine: CompiledRoutine,
             cflags: tuple[str, ...]) -> ExecutableRoutine:
    program = routine.program
    source = (
        routine.source if routine.language == "c" else emit_c(program)
    )
    batch_fn = None
    if not program.strided:
        source += ccompile.batch_driver_source(
            routine.name,
            in_len=program.in_size * program.element_width,
            out_len=program.out_size * program.element_width,
        )
    so_path = ccompile.compile_shared_object(source, cflags=cflags)
    fn = ccompile.load_function(so_path, routine.name,
                                strided=program.strided)
    if not program.strided:
        batch_fn = ccompile.load_batch_function(so_path, routine.name)
    import ctypes

    c_double_p = ctypes.POINTER(ctypes.c_double)

    def c_call(y: np.ndarray, x: np.ndarray, *args) -> None:
        fn(y.ctypes.data_as(c_double_p),
           np.ascontiguousarray(x).ctypes.data_as(c_double_p), *args)

    return ExecutableRoutine(routine=routine, backend="c", raw_call=c_call,
                             ctypes_fn=fn, batch_fn=batch_fn)


def _build_numpy(routine: CompiledRoutine) -> ExecutableRoutine:
    batch_call = compile_numpy(routine.program)

    def numpy_call(y: np.ndarray, x: np.ndarray) -> None:
        # Run the batch function on a degenerate B=1 batch (reshape on
        # contiguous 1-D buffers is a view, so y is written in place).
        batch_call(y.reshape(1, -1), x.reshape(1, -1))

    return ExecutableRoutine(routine=routine, backend="numpy",
                             raw_call=numpy_call, batch_call=batch_call)


def _build_python(routine: CompiledRoutine) -> ExecutableRoutine:
    from repro.core.backend_python import compile_python

    python_fn = compile_python(routine.program)

    # The generated Python mutates any indexable in place: hand it the
    # numpy buffers directly (no per-call list round-trip).
    def numpy_call(y: np.ndarray, x: np.ndarray) -> None:
        y.fill(0)
        python_fn(y, x)

    return ExecutableRoutine(routine=routine, backend="python",
                             raw_call=numpy_call)


def build_executable(routine: CompiledRoutine,
                     prefer: str = "c",
                     cflags: tuple[str, ...] = ()) -> ExecutableRoutine:
    """Compile a routine to an executable, preferring the fastest path.

    ``prefer`` names the first backend to try; remaining candidates
    follow the ``c > numpy > python`` order (a missing C compiler, or
    a complex-native program the C backend cannot express, falls
    through to the NumPy batch backend, then pure Python).

    ``cflags`` appends host-compiler flags (e.g. ``("-O0",)`` to model
    a weak back-end compiler in ablation experiments).
    """
    chain = _PREFERENCE.get(prefer)
    if chain is None:
        raise SplSemanticError(
            f"prefer must be one of {tuple(_PREFERENCE)}, got {prefer!r}"
        )
    last_error: Exception | None = None
    for backend in chain:
        if backend == "c":
            if not ccompile.have_c_compiler():
                continue
            try:
                return _build_c(routine, cflags)
            except SplSemanticError as exc:
                last_error = exc  # e.g. complex-native program
                continue
        if backend == "numpy":
            return _build_numpy(routine)
        return _build_python(routine)
    raise last_error if last_error is not None else SplSemanticError(
        f"no executable backend available for {routine.name}"
    )
