"""Build executable FFTs from compiled routines, preferring native code.

The paper times Fortran compiled by the platform's best compiler; here
the timed path is the C backend compiled by the host compiler (loaded
through ctypes with preallocated buffers so the measurement loop has no
Python allocation overhead).  The pure-Python backend is the fallback
when no C compiler is available, and the correctness reference in
tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.compiler import CompiledRoutine
from repro.core.backend_c import emit_c
from repro.perfeval import ccompile


@dataclass
class ExecutableRoutine:
    """A runnable compiled routine with preallocated I/O buffers."""

    routine: CompiledRoutine
    backend: str  # "c" or "python"
    raw_call: Callable  # fn(y_buffer, x_buffer) on physical numpy buffers
    ctypes_fn: Callable | None = None  # underlying native entry (C backend)

    @property
    def name(self) -> str:
        return self.routine.name

    @property
    def n(self) -> int:
        return self.routine.in_size

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Apply to a logical input vector; complex in, complex out."""
        program = self.routine.program
        width = program.element_width
        if width == 2:
            buf = np.empty(2 * len(x))
            buf[0::2] = np.real(x)
            buf[1::2] = np.imag(x)
            y = np.zeros(program.out_size * 2)
        elif program.datatype == "complex":
            # Complex-native program (Python backend, codetype complex).
            buf = np.asarray(x, dtype=complex).copy()
            y = np.zeros(program.out_size, dtype=complex)
        else:
            buf = np.asarray(x, dtype=np.float64).copy()
            y = np.zeros(program.out_size)
        self.raw_call(y, buf)
        if width == 2:
            return y[0::2] + 1j * y[1::2]
        return y

    def timer_closure(self) -> Callable[[], None]:
        """A zero-argument closure suitable for tight timing loops."""
        program = self.routine.program
        width = program.element_width
        rng = np.random.default_rng(0)
        x = np.ascontiguousarray(rng.standard_normal(program.in_size * width))
        y = np.zeros(program.out_size * width)
        if self.backend == "c":
            import ctypes

            c_double_p = ctypes.POINTER(ctypes.c_double)
            fn = self.ctypes_fn
            xp = x.ctypes.data_as(c_double_p)
            yp = y.ctypes.data_as(c_double_p)

            def call() -> None:
                fn(yp, xp)

            # ctypes raw function: bypass the wrapper's numpy handling.
            call._buffers = (x, y)
            return call

        fn = self.raw_call

        def call() -> None:
            fn(y, x)

        call._buffers = (x, y)
        return call


def build_executable(routine: CompiledRoutine,
                     prefer: str = "c",
                     cflags: tuple[str, ...] = ()) -> ExecutableRoutine:
    """Compile a routine to an executable, preferring the C path.

    ``cflags`` appends host-compiler flags (e.g. ``("-O0",)`` to model
    a weak back-end compiler in ablation experiments).
    """
    if prefer == "c" and ccompile.have_c_compiler():
        source = (
            routine.source if routine.language == "c"
            else emit_c(routine.program)
        )
        fn = ccompile.compile_c_program(
            source, routine.name, strided=routine.program.strided,
            cflags=cflags,
        )
        import ctypes

        c_double_p = ctypes.POINTER(ctypes.c_double)

        def c_call(y: np.ndarray, x: np.ndarray, *args) -> None:
            fn(y.ctypes.data_as(c_double_p),
               np.ascontiguousarray(x).ctypes.data_as(c_double_p), *args)

        executable = ExecutableRoutine(routine=routine, backend="c",
                                       raw_call=c_call)
        executable.ctypes_fn = fn
        return executable
    python_fn = routine.callable()

    # The python backend mutates a list in place; adapt to numpy buffers.
    def numpy_call(y: np.ndarray, x: np.ndarray) -> None:
        buf = [0.0] * len(y)
        python_fn(buf, x.tolist())
        y[:] = buf

    return ExecutableRoutine(routine=routine, backend="python",
                             raw_call=numpy_call)
