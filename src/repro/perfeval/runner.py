"""Build executable FFTs from compiled routines, preferring native code.

The paper times Fortran compiled by the platform's best compiler; here
the timed path is the C backend compiled by the host compiler (loaded
through ctypes with preallocated buffers so the measurement loop has no
Python allocation overhead).  Next in preference is the NumPy batch
backend (:mod:`repro.core.backend_numpy`), which vectorizes over a
batch axis and lowers affine loops to strided slices; the pure-Python
backend is the final fallback and the correctness reference in tests.

Batching: :meth:`ExecutableRoutine.apply` transforms one vector per
call and pays the full per-call crossing; :meth:`ExecutableRoutine.
apply_many` amortizes it over a ``(B, n)`` batch — through a generated
``spl_batch_<name>`` C driver (one ctypes crossing per batch), one
NumPy batch call, or a buffer-reusing Python loop.

Parallelism: ``apply_many(X, threads=N)`` splits the batch axis across
N workers.  The C backend prefers the generated OpenMP driver
(``spl_batch_omp_<name>``, one ctypes crossing, ``#pragma omp parallel
for`` over the rows); when OpenMP is unavailable — or for the NumPy
and Python backends — the batch is sharded into contiguous row chunks
on the shared thread pool (:mod:`repro.runtime.pool`; ctypes releases
the GIL, so the C path scales there too).  Tiny batches skip parallel
dispatch entirely (see ``_effective_threads``).  Row order and per-row
arithmetic are identical for every thread count, so results are
bit-identical to ``threads=1``.

Thread-safety: scratch buffers are per-thread (``threading.local``),
so one :class:`ExecutableRoutine` may be shared freely — concurrent
``apply`` and ``apply_many`` calls from many threads are safe.  Each
calling thread keeps its own single-vector and batch workspaces;
shard workers write disjoint row ranges of the caller's workspace and
allocate nothing.

Fault tolerance: each backend has a one-strike circuit breaker.  If a
backend call raises at runtime (a ``.so`` that no longer loads, a
ctypes marshalling fault, a poisoned native driver), the failure is
recorded, the breaker trips permanently for this executable, and the
call is transparently retried on the next backend down the
``c > numpy > python`` chain — callers see a slower answer, not an
exception.  Only when the last backend fails does the error surface.
Trips are visible in :meth:`ExecutableRoutine.stats`.

Degradation is race-free under concurrent callers: the swap runs
under a lock and is guarded by a generation counter, so when many
threads fault on the same backend simultaneously exactly one of them
trips the breaker and rebuilds — the others observe the generation
change, skip their own (redundant) trip, and simply retry on the
already-swapped tier.  Without the guard, concurrent faults would
double-trip the breaker and exhaust the fallback chain, surfacing an
exception even though a healthy fallback existed.  ``apply_many``
snapshots the whole callable set under the same lock, so a shard can
never mix (say) the old backend's ``batch_fn`` with the new one's
``raw_call`` mid-swap.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.backend_c import emit_c
from repro.core.backend_numpy import compile_numpy
from repro.core.compiler import CompiledRoutine
from repro.core.errors import SplSemanticError
from repro.perfeval import ccompile
from repro.runtime.pool import (
    effective_threads,
    resolve_threads,
    run_sharded,
)

#: Backend preference chains: the requested backend first, then the
#: fastest available fallback (c > numpy > python).  "cjit" is the
#: tiered native backend: instant in-process machine code for codelet
#: programs (with a background upgrade to the gcc-optimized shared
#: object), falling through to the plain C path for everything the JIT
#: cannot lower.
_PREFERENCE = {
    "cjit": ("cjit", "c", "numpy", "python"),
    "c": ("c", "numpy", "python"),
    "numpy": ("numpy", "python"),
    "python": ("python",),
}


def _aligned_zeros(shape, dtype, align: int = 64) -> np.ndarray:
    """A zeroed array whose data pointer is ``align``-byte aligned.

    The codelet batch drivers check workspace alignment at runtime and
    only take their ``__builtin_assume_aligned`` + ``#pragma omp simd``
    fast path when it holds; allocating the runner's per-thread
    workspaces aligned makes that the common case.  (numpy's default
    allocator gives 16, sometimes 64 — this makes it deterministic.)
    """
    dtype = np.dtype(dtype)
    count = int(np.prod(shape, dtype=np.int64))
    buf = np.zeros(count + align // dtype.itemsize, dtype=dtype)
    offset = (-buf.ctypes.data % align) // dtype.itemsize
    return buf[offset:offset + count].reshape(shape)


@dataclass
class BackendFailure:
    """One circuit-breaker trip: which backend failed doing what."""

    backend: str
    op: str  # "apply", "apply_many" or "build"
    error: str


@dataclass
class ExecutableRoutine:
    """A runnable compiled routine with per-thread preallocated buffers.

    ``fallback_chain`` lists the backends still available for runtime
    degradation; a backend whose call raises trips its breaker (one
    strike — native faults are not worth re-probing) and the routine
    rebuilds itself on the next chain entry in place, so held
    references keep working at the degraded tier.
    """

    routine: CompiledRoutine
    backend: str  # "cjit", "c", "numpy" or "python"
    raw_call: Callable  # fn(y_buffer, x_buffer) on 1-D physical buffers
    ctypes_fn: Callable | None = None  # underlying native entry (C backend)
    batch_fn: Callable | None = None  # spl_batch_* ctypes driver (C backend)
    batch_omp_fn: Callable | None = None  # spl_batch_omp_* OpenMP driver
    batch_call: Callable | None = None  # fn(Y, X) on 2-D buffers (numpy)
    threads: int = 1  # default worker count for apply_many
    fallback_chain: tuple[str, ...] = ()  # degradation targets, in order
    backend_failures: list[BackendFailure] = field(default_factory=list)
    promotions: list[str] = field(default_factory=list)  # upgrade history
    _tls: threading.local = field(default_factory=threading.local,
                                  repr=False, compare=False)
    # Serializes breaker trips and callable swaps; ``_generation``
    # increments on every swap so concurrent faulters can tell whether
    # someone else already degraded the tier they just saw fail.
    _swap_lock: threading.Lock = field(default_factory=threading.Lock,
                                       repr=False, compare=False)
    _generation: int = field(default=0, repr=False, compare=False)
    _exhausted: bool = field(default=False, repr=False, compare=False)

    @property
    def name(self) -> str:
        return self.routine.name

    @property
    def n(self) -> int:
        return self.routine.in_size

    def _dtype(self):
        program = self.routine.program
        if program.element_width == 1 and program.datatype == "complex":
            return np.complex128
        return np.float64

    @property
    def dtype(self) -> np.dtype:
        """The *logical* IO dtype of ``apply``/``apply_many``.

        Complex-datatype programs take and return ``complex128``
        vectors regardless of how the code type packs them physically
        (real code interleaves re/im into float64 buffers); real-
        datatype programs are ``float64`` end to end.  This is the
        dtype :class:`~repro.runtime.BatchDispatcher` and the serving
        front-end validate submitted vectors against.
        """
        program = self.routine.program
        if program.datatype == "complex":
            return np.dtype(np.complex128)
        return np.dtype(np.float64)

    def _buffers(self) -> tuple[np.ndarray, np.ndarray]:
        """Single-vector scratch, allocated once per calling thread."""
        pair = getattr(self._tls, "single", None)
        if pair is None:
            program = self.routine.program
            width = program.element_width
            dtype = self._dtype()
            pair = (
                _aligned_zeros(program.in_size * width, dtype),
                _aligned_zeros(program.out_size * width, dtype),
            )
            self._tls.single = pair
        return pair

    def _batch_buffers(self, batch: int) -> tuple[np.ndarray, np.ndarray]:
        """Per-thread (B, len) physical workspaces, reallocated only
        when the calling thread's batch size changes."""
        pair = getattr(self._tls, "batch", None)
        if pair is None or pair[0].shape[0] != batch:
            program = self.routine.program
            width = program.element_width
            dtype = self._dtype()
            pair = (
                _aligned_zeros((batch, program.in_size * width), dtype),
                _aligned_zeros((batch, program.out_size * width), dtype),
            )
            self._tls.batch = pair
        return pair

    # -- circuit breaker ------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True once any backend breaker has tripped."""
        return bool(self.backend_failures)

    def stats(self) -> dict:
        """Backend health plus the compile-time optimizer report.

        ``compile`` carries the per-pass records the compiler gathered
        (statement/temp/scratch deltas and per-pass wall time) along
        with the scratch-memory outcome, so operators can see both how
        the routine is running *and* what the optimizer did to it.
        """
        routine = self.routine
        return {
            "backend": self.backend,
            "degraded": self.degraded,
            "promotions": list(self.promotions),
            "fallbacks_left": self.fallback_chain,
            "failures": [
                {"backend": f.backend, "op": f.op, "error": f.error}
                for f in self.backend_failures
            ],
            "compile": {
                "scratch_bytes": routine.scratch_bytes,
                "scratch_bytes_before": routine.scratch_bytes_before,
                "temps_eliminated": routine.temps_eliminated,
                "passes": routine.pass_summary(),
            },
        }

    def _degrade(self, exc: BaseException, op: str,
                 generation: int) -> bool:
        """Trip the current backend and swap in the next chain entry.

        Rebuilds the fallback backend from ``routine`` and splices its
        callables into *this* object, so every held reference degrades
        together.  Returns False when the chain is exhausted (the
        caller re-raises the original error).

        ``generation`` is the value of ``_generation`` the caller saw
        when it picked up the callable that then failed.  The whole
        trip runs under ``_swap_lock``, and a stale generation means
        another thread already degraded the tier this caller faulted
        on — in that case nothing is recorded (the breaker must trip
        once per tier, not once per concurrent caller) and True is
        returned so the caller simply retries on the new tier.
        """
        with self._swap_lock:
            if generation != self._generation:
                return True  # lost the race: tier already swapped
            if self._exhausted:
                # The chain already ran dry on this tier: the trip is
                # recorded once, every subsequent concurrent faulter
                # just re-raises its own error.
                return False
            self.backend_failures.append(BackendFailure(
                backend=self.backend, op=op,
                error=f"{type(exc).__name__}: {exc}",
            ))
            while self.fallback_chain:
                target, self.fallback_chain = (
                    self.fallback_chain[0], self.fallback_chain[1:]
                )
                try:
                    if target == "numpy":
                        replacement = _build_numpy(self.routine)
                    elif target == "python":
                        replacement = _build_python(self.routine)
                    else:  # never degrade *to* the native tier
                        continue
                except Exception as build_exc:  # noqa: BLE001 - keep walking
                    self.backend_failures.append(BackendFailure(
                        backend=target, op="build",
                        error=f"{type(build_exc).__name__}: {build_exc}",
                    ))
                    continue
                self.backend = replacement.backend
                self.raw_call = replacement.raw_call
                self.ctypes_fn = replacement.ctypes_fn
                self.batch_fn = replacement.batch_fn
                self.batch_omp_fn = replacement.batch_omp_fn
                self.batch_call = replacement.batch_call
                self._generation += 1
                return True
            self._exhausted = True
            return False

    def promote(self, replacement: "ExecutableRoutine") -> bool:
        """Swap in a faster backend built in the background.

        This is the upward counterpart of :meth:`_degrade`, used by the
        JIT tier to upgrade to the gcc-optimized shared object once the
        subprocess compile finishes.  The swap runs under the same lock
        and bumps the same generation counter, so in-flight calls that
        snapshot callables see a consistent backend and the breaker
        never mis-attributes a fault across the swap.  Returns False —
        leaving the routine untouched — when a breaker already tripped
        (the degraded tier was chosen for a reason; a late upgrade must
        not resurrect the native path the breaker walked away from).

        Bit-identity across the swap is guaranteed by construction:
        the JIT and the C backend execute the same four-tuples in the
        same order with IEEE double arithmetic.
        """
        with self._swap_lock:
            if self.backend_failures or self._exhausted:
                return False
            self.promotions.append(
                f"{self.backend}->{replacement.backend}")
            self.backend = replacement.backend
            self.raw_call = replacement.raw_call
            self.ctypes_fn = replacement.ctypes_fn
            self.batch_fn = replacement.batch_fn
            self.batch_omp_fn = replacement.batch_omp_fn
            self.batch_call = replacement.batch_call
            self._generation += 1
            return True

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Apply to a logical input vector; complex in, complex out.

        Scratch buffers are reused across calls (no per-call
        allocation) and are per-thread, so concurrent callers never
        share them; the returned array is a fresh copy.  A backend
        that raises mid-call trips its circuit breaker and the call
        retries on the next backend down the chain.
        """
        program = self.routine.program
        width = program.element_width
        buf, y = self._buffers()
        if width == 2:
            buf[0::2] = np.real(x)
            buf[1::2] = np.imag(x)
        else:
            buf[:] = x
        while True:
            # Read the generation *before* the callable: if a swap
            # lands in between, the stale generation makes _degrade a
            # no-op retry instead of mis-attributing the new tier's
            # failure to the old one.
            generation = self._generation
            call = self.raw_call
            y.fill(0)
            try:
                call(y, buf)
                break
            except Exception as exc:  # noqa: BLE001 - breaker path
                if not self._degrade(exc, "apply", generation):
                    raise
        if width == 2:
            return y[0::2] + 1j * y[1::2]
        return y.copy()

    def _effective_threads(self, threads: int | None, batch: int) -> int:
        """The worker count actually used for one ``apply_many`` call.

        ``None`` falls back to the instance default; 0 means one per
        CPU.  The result is clamped by the shared sharding heuristic
        (:func:`repro.runtime.pool.effective_threads`) so parallel
        dispatch only happens when the batch can amortize it.
        """
        program = self.routine.program
        row_len = max(program.in_size, program.out_size) \
            * program.element_width
        return effective_threads(
            self.threads if threads is None else threads, batch, row_len
        )

    def _run_rows(self, Yp: np.ndarray, Xp: np.ndarray,
                  lo: int, hi: int, batch_fn, batch_call,
                  raw_call) -> None:
        """The serial batch path over physical rows ``lo..hi`` (the
        whole batch at ``threads=1``, one shard otherwise).

        The callables are passed in — a snapshot taken under
        ``_swap_lock`` by ``apply_many`` — so a concurrent breaker
        swap can never hand one shard a mixed backend.
        """
        if batch_fn is not None:
            import ctypes

            c_double_p = ctypes.POINTER(ctypes.c_double)
            batch_fn(Yp[lo:hi].ctypes.data_as(c_double_p),
                     Xp[lo:hi].ctypes.data_as(c_double_p), hi - lo)
        elif batch_call is not None:
            Yp[lo:hi].fill(0)
            batch_call(Yp[lo:hi], Xp[lo:hi])
        else:
            for b in range(lo, hi):
                Yp[b].fill(0)
                raw_call(Yp[b], Xp[b])

    def apply_many(self, X: np.ndarray,
                   threads: int | None = None) -> np.ndarray:
        """Apply to a ``(B, n)`` batch of logical vectors at once.

        The whole batch crosses into the fastest available path with
        per-batch (not per-vector) overhead: a single ctypes call into
        the generated ``spl_batch_<name>`` C driver, one call of the
        NumPy batch function, or a scratch-reusing Python loop.

        ``threads`` splits the batch axis across workers (``None`` =
        the instance default, 0 = one per CPU): the OpenMP C driver
        when available, contiguous row shards on the shared thread
        pool otherwise.  Results are bit-identical for every thread
        count.  Returns a fresh ``(B, out_size)`` array.
        """
        program = self.routine.program
        X = np.asarray(X)
        if X.ndim != 2 or X.shape[1] != program.in_size:
            raise SplSemanticError(
                f"{self.name} expects a (B, {program.in_size}) batch, "
                f"got shape {X.shape}"
            )
        width = program.element_width
        batch = X.shape[0]
        Xp, Yp = self._batch_buffers(batch)
        if width == 2:
            Xp[:, 0::2] = X.real
            Xp[:, 1::2] = X.imag
        else:
            Xp[:, :] = X
        while True:
            with self._swap_lock:
                # One consistent snapshot of the active backend: a
                # breaker swap concurrent with this call can never mix
                # (say) the old C batch driver with the new tier's
                # raw_call across shards.
                generation = self._generation
                batch_fn = self.batch_fn
                batch_omp_fn = self.batch_omp_fn
                batch_call = self.batch_call
                raw_call = self.raw_call
            try:
                nthreads = self._effective_threads(threads, batch)
                if nthreads > 1 and batch_omp_fn is not None:
                    import ctypes

                    c_double_p = ctypes.POINTER(ctypes.c_double)
                    batch_omp_fn(Yp.ctypes.data_as(c_double_p),
                                 Xp.ctypes.data_as(c_double_p),
                                 batch, nthreads)
                else:
                    if nthreads > 1:
                        run_sharded(
                            lambda lo, hi: self._run_rows(
                                Yp, Xp, lo, hi,
                                batch_fn, batch_call, raw_call),
                            batch, nthreads,
                        )
                    else:
                        self._run_rows(Yp, Xp, 0, batch,
                                       batch_fn, batch_call, raw_call)
                break
            except Exception as exc:  # noqa: BLE001 - breaker path
                # Partial rows are harmless: every retried path zeroes
                # each output row before writing it.
                if not self._degrade(exc, "apply_many", generation):
                    raise
        if width == 2:
            return Yp[:, 0::2] + 1j * Yp[:, 1::2]
        return Yp.copy()

    def timer_closure(self) -> Callable[[], None]:
        """A zero-argument closure suitable for tight timing loops."""
        program = self.routine.program
        width = program.element_width
        rng = np.random.default_rng(0)
        x = np.ascontiguousarray(
            rng.standard_normal(program.in_size * width),
            dtype=np.float64,
        ).astype(self._dtype())
        y = np.zeros(program.out_size * width, dtype=self._dtype())
        if self.backend in ("c", "cjit"):
            import ctypes

            c_double_p = ctypes.POINTER(ctypes.c_double)
            fn = self.ctypes_fn
            xp = x.ctypes.data_as(c_double_p)
            yp = y.ctypes.data_as(c_double_p)

            def call() -> None:
                fn(yp, xp)

            # ctypes raw function: bypass the wrapper's numpy handling.
            call._buffers = (x, y)
            return call

        fn = self.raw_call

        def call() -> None:
            fn(y, x)

        call._buffers = (x, y)
        return call

    def timer_closure_many(self, batch: int,
                           threads: int | None = None) -> Callable[[], None]:
        """A zero-argument closure timing ``apply_many`` on a fixed
        random batch (buffer filling included — that is the honest
        per-batch cost a caller pays)."""
        rng = np.random.default_rng(0)
        n = self.routine.program.in_size
        X = rng.standard_normal((batch, n))
        if self.routine.program.element_width == 2 or \
                self.routine.program.datatype == "complex":
            X = X + 1j * rng.standard_normal((batch, n))
        apply_many = self.apply_many

        def call() -> None:
            apply_many(X, threads=threads)

        call._buffers = (X,)
        return call


def _build_cjit(routine: CompiledRoutine) -> ExecutableRoutine:
    """Build the in-process JIT tier for a codelet program.

    Raises :class:`~repro.perfeval.jit.JitError` for programs the
    emitter cannot lower; ``build_executable`` pre-checks eligibility
    and falls through to the plain C path instead.
    """
    from repro.perfeval import jit

    jitted = jit.compile_jit(routine.program)
    import ctypes

    c_double_p = ctypes.POINTER(ctypes.c_double)
    fn = jitted.fn

    def jit_call(y: np.ndarray, x: np.ndarray) -> None:
        fn(y.ctypes.data_as(c_double_p),
           np.ascontiguousarray(x).ctypes.data_as(c_double_p))

    return ExecutableRoutine(routine=routine, backend="cjit",
                             raw_call=jit_call, ctypes_fn=jitted.fn,
                             batch_fn=jitted.batch_fn)


def _jit_upgrade_enabled() -> bool:
    """True unless ``SPL_JIT_UPGRADE=0`` pins executables to the JIT
    tier (used by the cold-latency benchmark and deterministic tests)."""
    import os

    return os.environ.get("SPL_JIT_UPGRADE", "").strip() != "0"


def _upgrade_in_background(executable: ExecutableRoutine,
                           routine: CompiledRoutine,
                           cflags: tuple[str, ...]) -> threading.Thread:
    """Compile the gcc-optimized tier off-thread and promote to it.

    Any failure (no compiler after all, compile error, OOM) is
    swallowed: the JIT tier keeps serving, exactly as it would have
    without the upgrade attempt.  Returns the (daemon) thread so tests
    can join it.
    """

    def work() -> None:
        try:
            executable.promote(_build_c(routine, cflags))
        except Exception:  # noqa: BLE001 - upgrade is best-effort
            pass

    thread = threading.Thread(target=work, name=f"spl-jit-upgrade-"
                              f"{routine.name}", daemon=True)
    thread.start()
    return thread


def c_build_spec(routine: CompiledRoutine,
                 cflags: tuple[str, ...] = (), *,
                 openmp: bool | None = None,
                 simd: bool | None = None,
                 ) -> tuple[str, tuple[str, ...], bool, tuple[str, ...]]:
    """The exact ``compile_shared_object`` inputs for one C routine.

    Returns ``(source, cflags, openmp, key_extra)``.  ``openmp`` /
    ``simd`` default to the host probes (what :func:`build_executable`
    does); passing ``False`` for both yields the *portable* variant —
    the build a host with no toolchain at all would ask for, since its
    probes report False — which is what wisdom packs bundle so their
    artifacts cache-hit on a gcc-less replica.
    """
    program = routine.program
    source = (
        routine.source if routine.language in ("c", "cjit")
        else emit_c(program)
    )
    use_openmp = False
    codelet = False
    if not program.strided:
        use_openmp = ccompile.have_openmp() if openmp is None else openmp
        codelet = program.is_straight_line()
        source += ccompile.batch_driver_source(
            routine.name,
            in_len=program.in_size * program.element_width,
            out_len=program.out_size * program.element_width,
            openmp=use_openmp,
            codelet=codelet,
        )
        if codelet:
            use_simd = (simd is None) or simd
            if use_simd:
                cflags = cflags + ccompile.simd_cflags()
    key_extra = (f"driver={'codelet' if codelet else 'loop'}",)
    return source, tuple(cflags), use_openmp, key_extra


def _build_c(routine: CompiledRoutine,
             cflags: tuple[str, ...]) -> ExecutableRoutine:
    program = routine.program
    source, cflags, openmp, key_extra = c_build_spec(routine, cflags)
    batch_fn = None
    batch_omp_fn = None
    so_path = ccompile.compile_shared_object(
        source, cflags=cflags, openmp=openmp, key_extra=key_extra,
    )
    fn = ccompile.load_function(so_path, routine.name,
                                strided=program.strided)
    if not program.strided:
        batch_fn = ccompile.load_batch_function(so_path, routine.name)
        if openmp:
            batch_omp_fn = ccompile.load_batch_omp_function(
                so_path, routine.name)
    import ctypes

    c_double_p = ctypes.POINTER(ctypes.c_double)

    def c_call(y: np.ndarray, x: np.ndarray, *args) -> None:
        fn(y.ctypes.data_as(c_double_p),
           np.ascontiguousarray(x).ctypes.data_as(c_double_p), *args)

    return ExecutableRoutine(routine=routine, backend="c", raw_call=c_call,
                             ctypes_fn=fn, batch_fn=batch_fn,
                             batch_omp_fn=batch_omp_fn)


def _build_numpy(routine: CompiledRoutine) -> ExecutableRoutine:
    batch_call = compile_numpy(routine.program)

    def numpy_call(y: np.ndarray, x: np.ndarray) -> None:
        # Run the batch function on a degenerate B=1 batch (reshape on
        # contiguous 1-D buffers is a view, so y is written in place).
        batch_call(y.reshape(1, -1), x.reshape(1, -1))

    return ExecutableRoutine(routine=routine, backend="numpy",
                             raw_call=numpy_call, batch_call=batch_call)


def _build_python(routine: CompiledRoutine) -> ExecutableRoutine:
    from repro.core.backend_python import compile_python

    python_fn = compile_python(routine.program)

    # The generated Python mutates any indexable in place: hand it the
    # numpy buffers directly (no per-call list round-trip).
    def numpy_call(y: np.ndarray, x: np.ndarray) -> None:
        y.fill(0)
        python_fn(y, x)

    return ExecutableRoutine(routine=routine, backend="python",
                             raw_call=numpy_call)


def build_executable(routine: CompiledRoutine,
                     prefer: str = "c",
                     cflags: tuple[str, ...] = (),
                     threads: int = 1) -> ExecutableRoutine:
    """Compile a routine to an executable, preferring the fastest path.

    ``prefer`` names the first backend to try; remaining candidates
    follow the ``cjit > c > numpy > python`` order (a missing C
    compiler, or a complex-native program the C backend cannot
    express, falls through to the NumPy batch backend, then pure
    Python).  ``prefer="cjit"`` makes codelet programs executable
    immediately — machine code emitted in-process, no subprocess — and
    then upgrades to the gcc-optimized shared object in a background
    thread once the host compiler finishes (disable with
    ``SPL_JIT_UPGRADE=0``); non-codelet programs fall through to the
    plain C path unchanged.

    ``cflags`` appends host-compiler flags (e.g. ``("-O0",)`` to model
    a weak back-end compiler in ablation experiments); ``SPL_CFLAGS``
    in the environment appends further opt-in flags such as
    ``-march=native``.  ``threads`` sets the executable's default
    ``apply_many`` worker count (0 = one per CPU); per-call
    ``threads=`` overrides it.
    """
    chain = _PREFERENCE.get(prefer)
    if chain is None:
        raise SplSemanticError(
            f"prefer must be one of {tuple(_PREFERENCE)}, got {prefer!r}"
        )
    resolve_threads(threads)  # validate early (0 and None are fine)
    last_error: Exception | None = None
    for position, backend in enumerate(chain):
        executable: ExecutableRoutine | None = None
        upgrade = False
        if backend == "cjit":
            from repro.perfeval import jit

            if not (jit.jit_supported() and jit.can_jit(routine.program)):
                continue  # not a codelet — the plain C path is next
            try:
                executable = _build_cjit(routine)
            except SplSemanticError as exc:
                last_error = exc
                continue
            upgrade = (ccompile.have_c_compiler()
                       and _jit_upgrade_enabled())
        elif backend == "c":
            # No upfront have_c_compiler() gate: the shared-object
            # cache is consulted before the toolchain, so a host
            # booting from a wisdom pack's bundled artifacts serves
            # the C tier with no compiler at all.
            try:
                executable = _build_c(routine, cflags)
            except SplSemanticError as exc:
                last_error = exc  # e.g. complex-native program
                continue
            except ccompile.CCompileError as exc:
                if ccompile.have_c_compiler():
                    raise  # a real compile failure, not a missing cc
                last_error = exc
                continue
        elif backend == "numpy":
            executable = _build_numpy(routine)
        else:
            executable = _build_python(routine)
        executable.threads = threads
        # The backends below the chosen one arm the runtime circuit
        # breaker: a backend that faults mid-call degrades onto them.
        # The JIT tier skips "c" on *degradation* (a native fault is
        # no reason to trust another native build) but upgrades to it
        # on the promote path below.
        executable.fallback_chain = tuple(
            b for b in chain[position + 1:] if b != "c"
        ) if backend == "cjit" else tuple(chain[position + 1:])
        if upgrade:
            _upgrade_in_background(executable, routine, cflags)
        return executable
    raise last_error if last_error is not None else SplSemanticError(
        f"no executable backend available for {routine.name}"
    )
