"""Sandboxed candidate measurement: run untrusted generated code safely.

The search (§4) picks winners by *executing* generated C — code that a
miscompiled codelet can turn into a segfault, an endless loop, or a
NaN-producing kernel.  Run in-process via ctypes, any of those takes
down the whole search (and any serving process sharing it).  This
module executes the risky half — loading the shared object and timing
the routine — in a **separate worker process** with

* a wall-clock timeout (hung candidates are killed, not waited on),
* an address-space cap via ``resource.setrlimit`` (runaway allocations
  die in the worker, not in the search),
* crash detection (a signal-killed worker is reported with its signal),
* an output sanity check (a routine whose first run produces NaN/Inf
  is rejected before it can win a timing contest).

Failures come back as structured :class:`CandidateFailure` values —
never exceptions — so dp/large search and the FFTW planner can skip a
bad candidate and keep searching.  Transient failure kinds (compiler
trouble, worker machinery errors) are retried once with backoff;
deterministic ones (crash, hang, NaN) are not.  Every final failure is
recorded in a :class:`Quarantine` keyed by plan key, so a known-bad
candidate is never measured twice in a session.

Compilation happens in the *parent* (it is already a subprocess with
its own timeout, see :mod:`repro.perfeval.ccompile`), so the worker's
compile step is a cache hit and the measurement timeout budgets only
execution.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import Any

from repro.perfeval import ccompile

try:  # POSIX-only; the sandbox degrades gracefully without it
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]

#: Failure kinds that may be flukes (compiler OOM, pool machinery);
#: they get one retry with backoff.  Crashes, hangs and NaN outputs
#: are deterministic properties of the candidate and are not retried.
TRANSIENT_KINDS = frozenset({"compile", "error"})


def sandbox_supported() -> bool:
    """True when worker-process isolation is available on this host."""
    if os.name != "posix":
        return False
    try:
        import multiprocessing  # noqa: F401
    except ImportError:  # pragma: no cover
        return False
    return True


@dataclass(frozen=True)
class SandboxPolicy:
    """Knobs governing one sandboxed measurement.

    ``timeout`` is wall-clock seconds per attempt (execution only —
    compilation is budgeted separately by ``ccompile``); ``memory_mb``
    caps the worker's address space (0 disables the cap); ``retries``
    is the number of *extra* attempts granted to transient failures;
    ``enabled=False`` turns the sandbox off entirely (callers fall
    back to in-process measurement).
    """

    timeout: float = 30.0
    memory_mb: int = 4096
    retries: int = 1
    backoff: float = 0.05
    check_output: bool = True
    enabled: bool = True


@dataclass
class CandidateFailure:
    """A structured measurement failure (never raised, always returned).

    ``kind`` is one of ``"crash"`` (worker killed by a signal),
    ``"hang"`` (wall-clock timeout), ``"nan"`` (non-finite output),
    ``"compile"`` (host compiler failed or timed out) or ``"error"``
    (anything else that went wrong in the worker).
    """

    kind: str
    plan_key: str
    detail: str = ""
    signal: int | None = None
    attempts: int = 1

    def describe(self) -> str:
        extra = f" (signal {self.signal})" if self.signal is not None else ""
        detail = f": {self.detail}" if self.detail else ""
        return (
            f"candidate {self.plan_key[:12]} {self.kind}{extra} "
            f"after {self.attempts} attempt(s){detail}"
        )


@dataclass
class SandboxResult:
    """A successful sandboxed timing."""

    seconds: float
    attempts: int = 1


class Quarantine:
    """Known-bad candidates, keyed by plan key.

    Once a candidate fails for good (post-retry), its failure is
    remembered here; every later measurement of the same key returns
    the remembered failure instantly instead of re-running the
    candidate.  One instance may be shared across dp search, large
    search and the planner (they use disjoint key spaces).
    """

    def __init__(self) -> None:
        self.entries: dict[str, CandidateFailure] = {}
        self.skips = 0

    def add(self, failure: CandidateFailure) -> None:
        self.entries[failure.plan_key] = failure

    def check(self, plan_key: str) -> CandidateFailure | None:
        """The remembered failure for ``plan_key`` (counts a skip)."""
        failure = self.entries.get(plan_key)
        if failure is not None:
            self.skips += 1
        return failure

    def clear(self) -> None:
        self.entries.clear()

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, plan_key: str) -> bool:
        return plan_key in self.entries

    def stats(self) -> dict[str, Any]:
        kinds: dict[str, int] = {}
        for failure in self.entries.values():
            kinds[failure.kind] = kinds.get(failure.kind, 0) + 1
        return {"entries": len(self.entries), "skips": self.skips,
                "kinds": kinds}

    def describe(self) -> str:
        s = self.stats()
        kinds = ", ".join(f"{k}={v}" for k, v in sorted(s["kinds"].items()))
        return (
            f"quarantine: {s['entries']} candidates "
            f"({kinds or 'none'}), {s['skips']} skips"
        )


_DEFAULT_QUARANTINE = Quarantine()


def default_quarantine() -> Quarantine:
    """The process-wide quarantine used when callers pass none."""
    return _DEFAULT_QUARANTINE


def plan_key(*parts: object) -> str:
    """A stable key for quarantining one candidate plan."""
    text = "\x00".join(str(part) for part in parts)
    return hashlib.sha256(text.encode()).hexdigest()[:32]


def source_key(source: str, cflags: tuple[str, ...] = ()) -> str:
    """The plan key of a raw C candidate: its source + flag set."""
    return plan_key("source", "\x00".join(cflags), source)


# -- the worker ---------------------------------------------------------


def _limit_memory(memory_mb: int) -> None:
    if resource is None or memory_mb <= 0:
        return
    limit = memory_mb * 1024 * 1024
    try:
        soft, hard = resource.getrlimit(resource.RLIMIT_AS)
        if hard != resource.RLIM_INFINITY:
            limit = min(limit, hard)
        resource.setrlimit(resource.RLIMIT_AS, (limit, hard))
    except (OSError, ValueError):  # pragma: no cover - exotic rlimit state
        pass


def _sandbox_worker(conn, so_path: str, name: str, in_len: int,
                    out_len: int, strided: bool, min_time: float,
                    repeats: int, memory_mb: int,
                    check_output: bool) -> None:
    """Worker-process body: load, probe, time; report through ``conn``.

    Everything catchable is reported as a tagged tuple; a segfault or
    rlimit kill simply ends the process, which the parent observes as
    EOF + exit code.
    """
    try:
        _limit_memory(memory_mb)
        import ctypes

        import numpy as np

        from pathlib import Path

        from repro.perfeval.timing import time_callable

        fn = ccompile.load_function(Path(so_path), name, strided=strided)
        rng = np.random.default_rng(0)
        x = np.ascontiguousarray(rng.standard_normal(in_len))
        y = np.zeros(out_len)
        c_double_p = ctypes.POINTER(ctypes.c_double)
        xp = x.ctypes.data_as(c_double_p)
        yp = y.ctypes.data_as(c_double_p)
        extra = (1, 1, 0, 0) if strided else ()

        fn(yp, xp, *extra)  # the probe call: crash/hang happens here
        if check_output and not np.isfinite(y).all():
            conn.send(("nan", "probe output contains NaN/Inf"))
            return

        def call() -> None:
            fn(yp, xp, *extra)

        seconds = time_callable(call, min_time=min_time, repeats=repeats)
        conn.send(("ok", seconds))
    except MemoryError:
        conn.send(("error", f"memory cap ({memory_mb} MB) exceeded"))
    except BaseException as exc:  # noqa: BLE001 - reported, not raised
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:  # pragma: no cover - pipe already gone
            pass


def _run_attempt(so_path: str, name: str, *, in_len: int, out_len: int,
                 strided: bool, policy: SandboxPolicy, min_time: float,
                 repeats: int) -> tuple[str, Any, int | None]:
    """One sandboxed execution: ``(status, payload, signal)``."""
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0]
    )
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_sandbox_worker,
        args=(child_conn, so_path, name, in_len, out_len, strided,
              min_time, repeats, policy.memory_mb, policy.check_output),
        daemon=True,
    )
    proc.start()
    child_conn.close()
    try:
        if not parent_conn.poll(policy.timeout):
            return "hang", f"no result within {policy.timeout:g}s", None
        try:
            message = parent_conn.recv()
        except (EOFError, OSError):
            # The worker died without reporting: a crash (signal) or
            # an abrupt exit.  Negative exitcode is the signal number.
            proc.join(5.0)
            code = proc.exitcode
            if code is not None and code < 0:
                return "crash", f"worker killed by signal {-code}", -code
            return "crash", f"worker exited with code {code}", None
        return message[0], message[1], None
    finally:
        parent_conn.close()
        if proc.is_alive():
            proc.terminate()
            proc.join(5.0)
            if proc.is_alive():  # pragma: no cover - terminate refused
                proc.kill()
                proc.join(5.0)


# -- the public entry ---------------------------------------------------


def measure_candidate(source: str, name: str, *, in_len: int, out_len: int,
                      strided: bool = False,
                      cflags: tuple[str, ...] = (),
                      policy: SandboxPolicy | None = None,
                      min_time: float = 0.005, repeats: int = 2,
                      quarantine: Quarantine | None = None,
                      key: str | None = None,
                      ) -> SandboxResult | CandidateFailure:
    """Compile and time one C candidate inside the sandbox.

    Returns either a :class:`SandboxResult` or a structured
    :class:`CandidateFailure` — never raises for a misbehaving
    candidate.  ``key`` (default: hash of source + flags) names the
    candidate in the quarantine: a key already quarantined returns its
    remembered failure without running anything.
    """
    policy = policy if policy is not None else SandboxPolicy()
    # NB: ``or`` would misfire here — an *empty* Quarantine is falsy.
    quarantine = quarantine if quarantine is not None \
        else default_quarantine()
    key = key or source_key(source, cflags)
    known = quarantine.check(key)
    if known is not None:
        return known

    attempts = 0
    failure: CandidateFailure | None = None
    while attempts <= policy.retries:
        attempts += 1
        try:
            so_path = ccompile.compile_shared_object(source, cflags=cflags)
        except ccompile.CCompileError as exc:
            failure = CandidateFailure(kind="compile", plan_key=key,
                                       detail=str(exc)[:2000],
                                       attempts=attempts)
            if attempts <= policy.retries:
                time.sleep(policy.backoff * attempts)
                continue
            break
        status, payload, signum = _run_attempt(
            str(so_path), name, in_len=in_len, out_len=out_len,
            strided=strided, policy=policy, min_time=min_time,
            repeats=repeats,
        )
        if status == "ok":
            return SandboxResult(seconds=float(payload), attempts=attempts)
        failure = CandidateFailure(kind=status, plan_key=key,
                                   detail=str(payload), signal=signum,
                                   attempts=attempts)
        if status in TRANSIENT_KINDS and attempts <= policy.retries:
            time.sleep(policy.backoff * attempts)
            continue
        break
    assert failure is not None
    quarantine.add(failure)
    return failure
