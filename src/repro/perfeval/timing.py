"""Timing helpers and the paper's performance metric.

Section 4.1: "The performance is measured in terms of 'pseudo MFlops',
which is a value calculated by using the equation 5 N log2(N) / t where
N is the size of FFT and t is the execution time in microseconds."
"""

from __future__ import annotations

import math
import time
from typing import Callable


def time_callable(fn: Callable[[], None], *, min_time: float = 0.02,
                  repeats: int = 3) -> float:
    """Best-of-``repeats`` average seconds per call of ``fn``.

    Each repeat runs ``fn`` in a batch sized so the batch takes at
    least ``min_time`` seconds, then the per-call average is taken;
    the minimum over repeats rejects scheduling noise, as the paper's
    (and FFTW's) timing methodology does.

    The calibration batch doubles as warmup and is *discarded*: its
    first call pays allocator, icache and ctypes cold-start costs, so
    reusing it as a timed repeat would bias ``best`` upward whenever
    ``repeats`` is small.  All ``repeats`` timed batches run fresh.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    # Calibrate the batch size (also serves as the warmup run).
    calls = 1
    while True:
        start = time.perf_counter()
        for _ in range(calls):
            fn()
        elapsed = time.perf_counter() - start
        if elapsed >= min_time or calls >= 1 << 24:
            break
        growth = 2 if elapsed <= 0 else min(
            16, max(2, int(min_time / max(elapsed, 1e-9)) + 1)
        )
        calls *= growth
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(calls):
            fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / calls)
    return best


def pseudo_mflops(n: int, seconds: float) -> float:
    """``5 N log2(N) / t`` with t in microseconds."""
    if seconds <= 0:
        return float("inf")
    return 5.0 * n * math.log2(n) / (seconds * 1e6)
