"""Multicore execution runtime: worker pool, sharding, dynamic batching.

Beyond the paper (whose compiler targets a single core), this package
holds the pieces that turn compiled routines into a serving runtime:

* :mod:`repro.runtime.pool` — the process-wide worker pool plus batch
  sharding used by ``ExecutableRoutine.apply_many(threads=N)`` and
  ``FftwTransform.apply_many(threads=N)``;
* :mod:`repro.runtime.dispatcher` — :class:`BatchDispatcher`, an
  inference-server-style dynamic batcher that coalesces concurrent
  single-vector ``apply`` requests into one ``apply_many`` call.
"""

from repro.runtime.dispatcher import (
    BatchDispatcher,
    DispatcherClosed,
    DispatchStats,
)
from repro.runtime.pool import (
    cpu_count,
    get_pool,
    resolve_threads,
    run_sharded,
    shard_ranges,
)

__all__ = [
    "BatchDispatcher",
    "DispatcherClosed",
    "DispatchStats",
    "cpu_count",
    "get_pool",
    "resolve_threads",
    "run_sharded",
    "shard_ranges",
]
