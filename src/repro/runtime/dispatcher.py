"""Dynamic request batching: coalesce concurrent ``apply`` calls.

An inference-server-style batcher for transform execution.  Callers on
many threads each submit one vector; the dispatcher gathers concurrent
requests — bounded by a maximum batch size and a maximum added latency
— and executes them as a single ``apply_many`` batch, which is the
amortized fast path every backend provides (one ctypes crossing, one
NumPy call, OpenMP over the batch axis).  Each caller gets back
exactly the row it would have gotten from a serial ``apply``: batch
rows are computed independently with identical per-row arithmetic, so
results are bit-identical.

The flush policy is the standard one (size- and deadline-bounded):

* a batch is executed immediately once ``max_batch`` requests are
  waiting;
* otherwise it is executed ``max_delay`` seconds after its *first*
  request arrived, so a lone request never waits longer than
  ``max_delay``;
* ``close()`` flushes whatever is pending.

Counters (:class:`DispatchStats`) record how much coalescing actually
happened; ``stats.batches < stats.requests`` is the observable proof
that concurrent requests shared ``apply_many`` calls.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace

import numpy as np


@dataclass
class DispatchStats:
    """Counters accumulated over a dispatcher's lifetime."""

    requests: int = 0  # vectors submitted
    batches: int = 0  # apply_many calls issued
    coalesced_requests: int = 0  # requests served in a batch of >= 2
    max_batch: int = 0  # largest batch executed
    size_flushes: int = 0  # batches flushed because max_batch was hit
    deadline_flushes: int = 0  # batches flushed by the latency bound
    close_flushes: int = 0  # batches flushed during close()


class _Request:
    __slots__ = ("x", "result", "error", "done")

    def __init__(self, x: np.ndarray):
        self.x = x
        self.result: np.ndarray | None = None
        self.error: BaseException | None = None
        self.done = threading.Event()


class BatchDispatcher:
    """Coalesce concurrent single-vector requests into batched execution.

    ``target`` is anything with an ``apply_many(X)`` method over a
    ``(B, n)`` batch and an ``n`` attribute — an
    :class:`~repro.perfeval.runner.ExecutableRoutine` or an
    :class:`~repro.fftw.executor.FftwTransform`.  ``threads`` is
    forwarded to ``apply_many`` when given, composing dynamic batching
    with sharded/OpenMP execution.

    Usable as a context manager; ``close()`` drains pending requests
    before the worker exits.
    """

    def __init__(self, target, *, max_batch: int = 64,
                 max_delay: float = 0.002,
                 threads: int | None = None):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        self.target = target
        self.max_batch = int(max_batch)
        self.max_delay = float(max_delay)
        self.threads = threads
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._pending: list[_Request] = []
        self._deadline: float | None = None  # first pending request + delay
        self._closed = False
        self._stats = DispatchStats()
        self._worker = threading.Thread(
            target=self._run, name="spl-dispatch", daemon=True
        )
        self._worker.start()

    # -- client side ---------------------------------------------------------

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Submit one vector and block until its transform is ready.

        Bit-identical to ``target.apply(x)``; raises whatever the
        underlying execution raised.
        """
        request = self._submit(x)
        request.done.wait()
        if request.error is not None:
            raise request.error
        return request.result

    def _submit(self, x: np.ndarray) -> _Request:
        x = np.asarray(x)
        n = getattr(self.target, "n", None)
        if n is not None and x.shape != (n,):
            raise ValueError(f"expected a ({n},) vector, got shape {x.shape}")
        request = _Request(x)
        with self._lock:
            if self._closed:
                raise RuntimeError("BatchDispatcher is closed")
            self._pending.append(request)
            self._stats.requests += 1
            if self._deadline is None:
                self._deadline = time.monotonic() + self.max_delay
            self._wakeup.notify_all()
        return request

    @property
    def stats(self) -> DispatchStats:
        """A point-in-time copy of the coalescing counters."""
        with self._lock:
            return replace(self._stats)

    def close(self) -> None:
        """Flush pending requests and stop the worker (idempotent)."""
        with self._lock:
            if self._closed:
                self._worker.join()
                return
            self._closed = True
            self._wakeup.notify_all()
        self._worker.join()

    def __enter__(self) -> "BatchDispatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- worker side ---------------------------------------------------------

    def _take_batch(self) -> tuple[list[_Request], str] | None:
        """Block until a batch is due; None when closed and drained."""
        with self._lock:
            while True:
                if self._pending:
                    if self._closed:
                        reason = "close"
                    elif len(self._pending) >= self.max_batch:
                        reason = "size"
                    else:
                        remaining = self._deadline - time.monotonic()
                        if remaining > 0:
                            self._wakeup.wait(remaining)
                            continue
                        reason = "deadline"
                    batch = self._pending[: self.max_batch]
                    del self._pending[: len(batch)]
                    self._deadline = (
                        time.monotonic() + self.max_delay
                        if self._pending else None
                    )
                    return batch, reason
                if self._closed:
                    return None
                self._wakeup.wait()

    def _run(self) -> None:
        while True:
            taken = self._take_batch()
            if taken is None:
                return
            batch, reason = taken
            try:
                X = np.stack([request.x for request in batch])
                if self.threads is None:
                    Y = self.target.apply_many(X)
                else:
                    Y = self.target.apply_many(X, threads=self.threads)
            except BaseException as exc:  # noqa: BLE001 — forwarded
                for request in batch:
                    request.error = exc
                    request.done.set()
                continue
            finally:
                with self._lock:
                    self._stats.batches += 1
                    self._stats.max_batch = max(self._stats.max_batch,
                                                len(batch))
                    if len(batch) >= 2:
                        self._stats.coalesced_requests += len(batch)
                    field = f"{reason}_flushes"
                    setattr(self._stats, field,
                            getattr(self._stats, field) + 1)
            for i, request in enumerate(batch):
                request.result = Y[i].copy()
                request.done.set()
