"""Dynamic request batching: coalesce concurrent ``apply`` calls.

An inference-server-style batcher for transform execution.  Callers on
many threads each submit one vector; the dispatcher gathers concurrent
requests — bounded by a maximum batch size and a maximum added latency
— and executes them as a single ``apply_many`` batch, which is the
amortized fast path every backend provides (one ctypes crossing, one
NumPy call, OpenMP over the batch axis).  Each caller gets back
exactly the row it would have gotten from a serial ``apply``: batch
rows are computed independently with identical per-row arithmetic, so
results are bit-identical.

The flush policy is the standard one (size- and deadline-bounded):

* a batch is executed immediately once ``max_batch`` requests are
  waiting;
* otherwise it is executed ``max_delay`` seconds after the *oldest
  pending* request arrived, so no request ever waits longer than
  ``max_delay`` before its batch is taken — the latency bound is
  per-request (each request carries its arrival time), not a property
  of the queue, so a flush that leaves stragglers pending does not
  restart their clock;
* ``close()`` flushes whatever is pending (``close(drain=False)``
  cancels it with :class:`DispatcherClosed` instead).

Fault isolation: a batch whose ``apply_many`` raises is split and
retried request-by-request, so one poisoned vector fails *its own*
caller while every other future in the coalesced batch resolves
normally.  Poisoning is also prevented at the door: when the target
exposes a ``dtype``, every submitted vector is checked against it —
safe upcasts (float into a complex transform) are coerced per request,
unsafe ones (complex into a real transform, which ``np.stack`` would
otherwise silently propagate to every coalesced row) are rejected at
``submit`` with a :class:`ValueError` before they can touch a batch.
The worker loop itself is crash-proofed — however it exits, every
pending request is resolved (with :class:`DispatcherClosed` if
nothing better), so callers blocked in ``apply`` can never hang on a
dead worker.

Counters (:class:`DispatchStats`) record how much coalescing actually
happened; ``stats.batches < stats.requests`` is the observable proof
that concurrent requests shared ``apply_many`` calls.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from typing import Callable

import numpy as np


class DispatcherClosed(RuntimeError):
    """The dispatcher is closed (or its worker died): request not run."""


@dataclass
class DispatchStats:
    """Counters accumulated over a dispatcher's lifetime.

    Semantics (pinned by tests/runtime/test_dispatcher_regressions.py):

    * ``batches`` counts *flushes* — coalesced batches taken off the
      queue and attempted, whatever their outcome.  It always equals
      ``size_flushes + deadline_flushes + close_flushes``.
    * ``coalesced_requests`` counts requests actually *served* by a
      shared ``apply_many`` call of two or more — a batch that failed
      and was split request-by-request contributes nothing here.
    * ``isolation_splits`` counts failed multi-request batches that
      were split; ``retried_requests`` counts the singleton retry
      calls those splits issued, so the total number of ``apply_many``
      calls reaching the target is ``batches + retried_requests``.
    """

    requests: int = 0  # vectors submitted
    batches: int = 0  # coalesced flushes attempted (= sum of *_flushes)
    coalesced_requests: int = 0  # requests served in a shared batch >= 2
    max_batch: int = 0  # largest batch taken off the queue
    size_flushes: int = 0  # batches flushed because max_batch was hit
    deadline_flushes: int = 0  # batches flushed by the latency bound
    close_flushes: int = 0  # batches flushed during close()
    isolation_splits: int = 0  # failed batches retried request-by-request
    retried_requests: int = 0  # singleton retries issued by those splits
    failed_requests: int = 0  # requests resolved with an error
    cancelled_requests: int = 0  # requests resolved with DispatcherClosed


class _Request:
    """One submitted vector and its (eventual) resolution.

    ``arrival`` is the ``time.monotonic()`` submission stamp that the
    worker's latency bound is computed from.  ``on_done`` (optional)
    is invoked exactly once, after ``done`` is set, from whichever
    thread resolved the request — the hook the asyncio front-end uses
    to bridge back onto its event loop without burning a thread per
    in-flight request.
    """

    __slots__ = ("x", "result", "error", "done", "arrival", "on_done")

    def __init__(self, x: np.ndarray, arrival: float = 0.0,
                 on_done: Callable[["_Request"], None] | None = None):
        self.x = x
        self.result: np.ndarray | None = None
        self.error: BaseException | None = None
        self.done = threading.Event()
        self.arrival = arrival
        self.on_done = on_done

    def resolve(self, result: np.ndarray) -> None:
        self.result = result
        self._finish()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self._finish()

    def _finish(self) -> None:
        self.done.set()
        callback = self.on_done
        if callback is not None:
            try:
                callback(self)
            except Exception:  # noqa: BLE001 - a bad hook must not
                pass  # take the worker (or close()) down with it


class BatchDispatcher:
    """Coalesce concurrent single-vector requests into batched execution.

    ``target`` is anything with an ``apply_many(X)`` method over a
    ``(B, n)`` batch and an ``n`` attribute — an
    :class:`~repro.perfeval.runner.ExecutableRoutine` or an
    :class:`~repro.fftw.executor.FftwTransform`.  ``threads`` is
    forwarded to ``apply_many`` when given, composing dynamic batching
    with sharded/OpenMP execution.  ``dtype`` (default: the target's
    ``dtype`` attribute, when it has one) arms per-request dtype
    validation: safe upcasts are coerced, unsafe ones rejected at
    submission so they cannot poison a coalesced batch.

    Usable as a context manager; ``close()`` drains pending requests
    before the worker exits, and no request can outlive the worker
    unresolved — shutdown and worker death both resolve stragglers
    with :class:`DispatcherClosed` rather than leaving them blocked.
    """

    def __init__(self, target, *, max_batch: int = 64,
                 max_delay: float = 0.002,
                 threads: int | None = None,
                 dtype: np.dtype | str | None = None):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        self.target = target
        self.max_batch = int(max_batch)
        self.max_delay = float(max_delay)
        self.threads = threads
        if dtype is None:
            dtype = getattr(target, "dtype", None)
        self.dtype = np.dtype(dtype) if dtype is not None else None
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._pending: list[_Request] = []
        self._unresolved = 0  # submitted, not yet resolved
        self._closed = False
        self._stats = DispatchStats()
        self._worker = threading.Thread(
            target=self._run, name="spl-dispatch", daemon=True
        )
        self._worker.start()

    # -- client side ---------------------------------------------------------

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Submit one vector and block until its transform is ready.

        Bit-identical to ``target.apply(x)``; raises whatever the
        underlying execution raised for *this* vector (other requests
        coalesced into the same batch are unaffected), or
        :class:`DispatcherClosed` if the dispatcher shut down before
        the request ran.
        """
        request = self.submit(x)
        request.done.wait()
        if request.error is not None:
            raise request.error
        return request.result

    def submit(self, x: np.ndarray,
               on_done: Callable[[_Request], None] | None = None
               ) -> _Request:
        """Enqueue one vector without blocking; returns its handle.

        The handle exposes ``done`` (a :class:`threading.Event`),
        ``result`` and ``error``; exactly one of the latter two is set
        by the time ``done`` fires.  ``on_done`` is called once, after
        resolution, from an internal thread — it must be cheap and
        must not raise (the asyncio server passes
        ``loop.call_soon_threadsafe`` bridges here).

        Shape and dtype are validated *here*, before the request can
        join a batch: a wrong-shape or unsafely-typed vector raises
        :class:`ValueError` to its own caller and never poisons the
        coalesced batch it would have ridden in.
        """
        x = self._validate(x)
        request = _Request(x, time.monotonic(), on_done)
        with self._lock:
            if self._closed:
                raise DispatcherClosed("BatchDispatcher is closed")
            self._pending.append(request)
            self._unresolved += 1
            self._stats.requests += 1
            self._wakeup.notify_all()
        return request

    def _validate(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        n = getattr(self.target, "n", None)
        if n is not None and x.shape != (n,):
            raise ValueError(f"expected a ({n},) vector, got shape {x.shape}")
        if self.dtype is not None and x.dtype != self.dtype:
            # np.stack would silently upcast the whole coalesced batch
            # to the widest submitted dtype (complex into a float64
            # transform corrupts *every* row via discarded imaginary
            # parts) — so coerce or reject per request, at the door.
            if not np.can_cast(x.dtype, self.dtype, casting="safe"):
                raise ValueError(
                    f"cannot safely cast a {x.dtype} vector to the "
                    f"target dtype {self.dtype}"
                )
            x = x.astype(self.dtype)
        return x

    # Backwards-compatible alias (pre-serving internal name).
    def _submit(self, x: np.ndarray) -> _Request:
        return self.submit(x)

    @property
    def stats(self) -> DispatchStats:
        """A point-in-time copy of the coalescing counters."""
        with self._lock:
            return replace(self._stats)

    # -- drain hooks ---------------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Requests queued but not yet taken into a batch."""
        with self._lock:
            return len(self._pending)

    @property
    def unresolved_count(self) -> int:
        """Requests submitted whose futures have not resolved yet —
        queued *or* mid-execution.  Zero means the dispatcher is
        quiescent: a drain sequencer that has stopped submissions can
        poll this (or block in :meth:`wait_idle`) to know when every
        admitted request has been answered."""
        with self._lock:
            return self._unresolved

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until every submitted request has resolved.

        The drain hook: callers that have stopped submitting (a
        draining server, a test tearing down) wait here instead of
        spinning on futures.  Returns False if ``timeout`` (seconds)
        elapsed first.  Unlike ``close()`` this leaves the dispatcher
        open — new work may still be submitted afterwards.
        """
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        with self._lock:
            while self._unresolved > 0:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._idle.wait(remaining)
            return True

    def _mark_resolved(self, count: int = 1) -> None:
        with self._lock:
            self._mark_resolved_locked(count)

    def _mark_resolved_locked(self, count: int = 1) -> None:
        self._unresolved -= count
        if self._unresolved <= 0:
            self._idle.notify_all()

    def close(self, drain: bool = True) -> None:
        """Stop the worker (idempotent); never leaves a caller hanging.

        ``drain=True`` (default) executes pending requests as final
        batches before the worker exits; ``drain=False`` cancels them
        — each blocked caller gets :class:`DispatcherClosed`
        immediately.  Either way, after ``close()`` returns every
        submitted request has been resolved.

        Safe to call from *any* thread, including the worker itself
        (e.g. a fault-handling callback inside the target's
        ``apply_many``): a re-entrant close skips the self-join —
        which would deadlock — and lets the worker loop observe
        ``_closed`` and wind itself down.
        """
        with self._lock:
            self._closed = True
            if not drain:
                self._cancel_locked(self._pending)
                self._pending.clear()
            self._wakeup.notify_all()
        if threading.current_thread() is not self._worker:
            self._worker.join()

    def _cancel_locked(self, requests: list[_Request]) -> None:
        """Resolve ``requests`` with DispatcherClosed (lock held)."""
        for request in requests:
            if not request.done.is_set():
                self._stats.cancelled_requests += 1
                self._mark_resolved_locked()
                request.fail(DispatcherClosed(
                    "BatchDispatcher closed before this request ran"
                ))

    def __enter__(self) -> "BatchDispatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- worker side ---------------------------------------------------------

    def _take_batch(self) -> tuple[list[_Request], str] | None:
        """Block until a batch is due; None when closed and drained.

        The latency bound is per-request: the flush deadline is always
        ``oldest_pending_arrival + max_delay`` (pending is FIFO, so the
        oldest request is ``_pending[0]``).  A flush that leaves
        requests pending therefore does *not* restart their clock —
        the old code reset a queue-level deadline to ``now +
        max_delay`` after every flush, so stragglers could wait nearly
        ``2 x max_delay`` under sustained load.
        """
        with self._lock:
            while True:
                if self._pending:
                    if self._closed:
                        reason = "close"
                    elif len(self._pending) >= self.max_batch:
                        reason = "size"
                    else:
                        deadline = self._pending[0].arrival + self.max_delay
                        remaining = deadline - time.monotonic()
                        if remaining > 0:
                            self._wakeup.wait(remaining)
                            continue
                        reason = "deadline"
                    batch = self._pending[: self.max_batch]
                    del self._pending[: len(batch)]
                    return batch, reason
                if self._closed:
                    return None
                self._wakeup.wait()

    def _apply_one(self, request: _Request) -> None:
        """Run one request alone; resolve it with its own outcome."""
        with self._lock:
            self._stats.retried_requests += 1
        try:
            Y = (
                self.target.apply_many(request.x[np.newaxis, :])
                if self.threads is None
                else self.target.apply_many(request.x[np.newaxis, :],
                                            threads=self.threads)
            )
        except BaseException as exc:  # noqa: BLE001 - forwarded
            with self._lock:
                self._stats.failed_requests += 1
            self._mark_resolved()
            request.fail(exc)
            return
        self._mark_resolved()
        request.resolve(Y[0].copy())

    def _execute(self, batch: list[_Request], reason: str) -> None:
        """Run one coalesced batch, isolating per-request failures."""
        with self._lock:
            # Flush accounting happens per *attempt* so the flush-
            # reason counters always sum to ``batches``; whether the
            # requests were actually served coalesced is recorded
            # separately below, on the success path only.
            self._stats.batches += 1
            self._stats.max_batch = max(self._stats.max_batch, len(batch))
            field = f"{reason}_flushes"
            setattr(self._stats, field, getattr(self._stats, field) + 1)
        try:
            X = np.stack([request.x for request in batch])
            if self.threads is None:
                Y = self.target.apply_many(X)
            else:
                Y = self.target.apply_many(X, threads=self.threads)
        except BaseException as exc:  # noqa: BLE001 - isolated below
            if len(batch) == 1:
                with self._lock:
                    self._stats.failed_requests += 1
                self._mark_resolved()
                batch[0].fail(exc)
            else:
                # One poisoned vector must not fail the whole batch:
                # split and retry request-by-request so only the
                # culprit's future carries an error.
                with self._lock:
                    self._stats.isolation_splits += 1
                for request in batch:
                    self._apply_one(request)
            return
        with self._lock:
            if len(batch) >= 2:
                self._stats.coalesced_requests += len(batch)
            self._mark_resolved_locked(len(batch))
        for i, request in enumerate(batch):
            request.resolve(Y[i].copy())

    def _run(self) -> None:
        try:
            while True:
                taken = self._take_batch()
                if taken is None:
                    return
                batch, reason = taken
                self._execute(batch, reason)
        finally:
            # However this thread exits — clean shutdown or an
            # unexpected error in the loop itself — no submitted
            # request may be left unresolved, and no new request may
            # queue behind a dead worker.
            with self._lock:
                self._closed = True
                leftovers = list(self._pending)
                self._pending.clear()
                self._cancel_locked(leftovers)
