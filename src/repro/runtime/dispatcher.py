"""Dynamic request batching: coalesce concurrent ``apply`` calls.

An inference-server-style batcher for transform execution.  Callers on
many threads each submit one vector; the dispatcher gathers concurrent
requests — bounded by a maximum batch size and a maximum added latency
— and executes them as a single ``apply_many`` batch, which is the
amortized fast path every backend provides (one ctypes crossing, one
NumPy call, OpenMP over the batch axis).  Each caller gets back
exactly the row it would have gotten from a serial ``apply``: batch
rows are computed independently with identical per-row arithmetic, so
results are bit-identical.

The flush policy is the standard one (size- and deadline-bounded):

* a batch is executed immediately once ``max_batch`` requests are
  waiting;
* otherwise it is executed ``max_delay`` seconds after its *first*
  request arrived, so a lone request never waits longer than
  ``max_delay``;
* ``close()`` flushes whatever is pending (``close(drain=False)``
  cancels it with :class:`DispatcherClosed` instead).

Fault isolation: a batch whose ``apply_many`` raises is split and
retried request-by-request, so one poisoned vector fails *its own*
caller while every other future in the coalesced batch resolves
normally.  The worker loop itself is crash-proofed — however it exits,
every pending request is resolved (with :class:`DispatcherClosed` if
nothing better), so callers blocked in ``apply`` can never hang on a
dead worker.

Counters (:class:`DispatchStats`) record how much coalescing actually
happened; ``stats.batches < stats.requests`` is the observable proof
that concurrent requests shared ``apply_many`` calls.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace

import numpy as np


class DispatcherClosed(RuntimeError):
    """The dispatcher is closed (or its worker died): request not run."""


@dataclass
class DispatchStats:
    """Counters accumulated over a dispatcher's lifetime."""

    requests: int = 0  # vectors submitted
    batches: int = 0  # apply_many calls issued
    coalesced_requests: int = 0  # requests served in a batch of >= 2
    max_batch: int = 0  # largest batch executed
    size_flushes: int = 0  # batches flushed because max_batch was hit
    deadline_flushes: int = 0  # batches flushed by the latency bound
    close_flushes: int = 0  # batches flushed during close()
    isolation_splits: int = 0  # failed batches retried request-by-request
    failed_requests: int = 0  # requests resolved with an error
    cancelled_requests: int = 0  # requests resolved with DispatcherClosed


class _Request:
    __slots__ = ("x", "result", "error", "done")

    def __init__(self, x: np.ndarray):
        self.x = x
        self.result: np.ndarray | None = None
        self.error: BaseException | None = None
        self.done = threading.Event()


class BatchDispatcher:
    """Coalesce concurrent single-vector requests into batched execution.

    ``target`` is anything with an ``apply_many(X)`` method over a
    ``(B, n)`` batch and an ``n`` attribute — an
    :class:`~repro.perfeval.runner.ExecutableRoutine` or an
    :class:`~repro.fftw.executor.FftwTransform`.  ``threads`` is
    forwarded to ``apply_many`` when given, composing dynamic batching
    with sharded/OpenMP execution.

    Usable as a context manager; ``close()`` drains pending requests
    before the worker exits, and no request can outlive the worker
    unresolved — shutdown and worker death both resolve stragglers
    with :class:`DispatcherClosed` rather than leaving them blocked.
    """

    def __init__(self, target, *, max_batch: int = 64,
                 max_delay: float = 0.002,
                 threads: int | None = None):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        self.target = target
        self.max_batch = int(max_batch)
        self.max_delay = float(max_delay)
        self.threads = threads
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._pending: list[_Request] = []
        self._deadline: float | None = None  # first pending request + delay
        self._closed = False
        self._stats = DispatchStats()
        self._worker = threading.Thread(
            target=self._run, name="spl-dispatch", daemon=True
        )
        self._worker.start()

    # -- client side ---------------------------------------------------------

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Submit one vector and block until its transform is ready.

        Bit-identical to ``target.apply(x)``; raises whatever the
        underlying execution raised for *this* vector (other requests
        coalesced into the same batch are unaffected), or
        :class:`DispatcherClosed` if the dispatcher shut down before
        the request ran.
        """
        request = self._submit(x)
        request.done.wait()
        if request.error is not None:
            raise request.error
        return request.result

    def _submit(self, x: np.ndarray) -> _Request:
        x = np.asarray(x)
        n = getattr(self.target, "n", None)
        if n is not None and x.shape != (n,):
            raise ValueError(f"expected a ({n},) vector, got shape {x.shape}")
        request = _Request(x)
        with self._lock:
            if self._closed:
                raise DispatcherClosed("BatchDispatcher is closed")
            self._pending.append(request)
            self._stats.requests += 1
            if self._deadline is None:
                self._deadline = time.monotonic() + self.max_delay
            self._wakeup.notify_all()
        return request

    @property
    def stats(self) -> DispatchStats:
        """A point-in-time copy of the coalescing counters."""
        with self._lock:
            return replace(self._stats)

    def close(self, drain: bool = True) -> None:
        """Stop the worker (idempotent); never leaves a caller hanging.

        ``drain=True`` (default) executes pending requests as final
        batches before the worker exits; ``drain=False`` cancels them
        — each blocked caller gets :class:`DispatcherClosed`
        immediately.  Either way, after ``close()`` returns every
        submitted request has been resolved.
        """
        with self._lock:
            already = self._closed
            self._closed = True
            if not drain:
                self._cancel_locked(self._pending)
                self._pending.clear()
                self._deadline = None
            self._wakeup.notify_all()
        self._worker.join()
        if already:
            return

    def _cancel_locked(self, requests: list[_Request]) -> None:
        """Resolve ``requests`` with DispatcherClosed (lock held)."""
        for request in requests:
            if not request.done.is_set():
                request.error = DispatcherClosed(
                    "BatchDispatcher closed before this request ran"
                )
                self._stats.cancelled_requests += 1
                request.done.set()

    def __enter__(self) -> "BatchDispatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- worker side ---------------------------------------------------------

    def _take_batch(self) -> tuple[list[_Request], str] | None:
        """Block until a batch is due; None when closed and drained."""
        with self._lock:
            while True:
                if self._pending:
                    if self._closed:
                        reason = "close"
                    elif len(self._pending) >= self.max_batch:
                        reason = "size"
                    else:
                        remaining = self._deadline - time.monotonic()
                        if remaining > 0:
                            self._wakeup.wait(remaining)
                            continue
                        reason = "deadline"
                    batch = self._pending[: self.max_batch]
                    del self._pending[: len(batch)]
                    self._deadline = (
                        time.monotonic() + self.max_delay
                        if self._pending else None
                    )
                    return batch, reason
                if self._closed:
                    return None
                self._wakeup.wait()

    def _apply_one(self, request: _Request) -> None:
        """Run one request alone; resolve it with its own outcome."""
        try:
            Y = (
                self.target.apply_many(request.x[np.newaxis, :])
                if self.threads is None
                else self.target.apply_many(request.x[np.newaxis, :],
                                            threads=self.threads)
            )
            request.result = Y[0].copy()
        except BaseException as exc:  # noqa: BLE001 - forwarded
            request.error = exc
            with self._lock:
                self._stats.failed_requests += 1
        request.done.set()

    def _execute(self, batch: list[_Request], reason: str) -> None:
        """Run one coalesced batch, isolating per-request failures."""
        try:
            X = np.stack([request.x for request in batch])
            if self.threads is None:
                Y = self.target.apply_many(X)
            else:
                Y = self.target.apply_many(X, threads=self.threads)
        except BaseException as exc:  # noqa: BLE001 - isolated below
            if len(batch) == 1:
                batch[0].error = exc
                with self._lock:
                    self._stats.failed_requests += 1
                batch[0].done.set()
            else:
                # One poisoned vector must not fail the whole batch:
                # split and retry request-by-request so only the
                # culprit's future carries an error.
                with self._lock:
                    self._stats.isolation_splits += 1
                for request in batch:
                    self._apply_one(request)
            return
        finally:
            with self._lock:
                self._stats.batches += 1
                self._stats.max_batch = max(self._stats.max_batch,
                                            len(batch))
                if len(batch) >= 2:
                    self._stats.coalesced_requests += len(batch)
                field = f"{reason}_flushes"
                setattr(self._stats, field,
                        getattr(self._stats, field) + 1)
        for i, request in enumerate(batch):
            request.result = Y[i].copy()
            request.done.set()

    def _run(self) -> None:
        try:
            while True:
                taken = self._take_batch()
                if taken is None:
                    return
                batch, reason = taken
                self._execute(batch, reason)
        finally:
            # However this thread exits — clean shutdown or an
            # unexpected error in the loop itself — no submitted
            # request may be left unresolved, and no new request may
            # queue behind a dead worker.
            with self._lock:
                self._closed = True
                leftovers = list(self._pending)
                self._pending.clear()
                self._deadline = None
                self._cancel_locked(leftovers)
