"""Persistent worker pool and batch sharding for parallel execution.

One process-wide :class:`~concurrent.futures.ThreadPoolExecutor` is
shared by every sharded ``apply_many`` call (and by anything else that
wants short CPU-bound tasks): threads are started once and reused, so
per-batch dispatch cost is two queue hops per shard, not a thread
spawn.  The pool grows on demand when a caller asks for more workers
than it currently has; it never shrinks (worker threads are cheap and
idle ones cost nothing).

Threads — not processes — are the right vehicle here because the
compiled C routines are called through ctypes, which releases the GIL
for the duration of the native call: N shards of a batch run on N
cores.  NumPy similarly releases the GIL inside large ufunc loops.
The pure-Python backend stays GIL-bound (correct, no speedup), which
is why callers gate parallel dispatch on batch size rather than
assuming it always pays.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable

_lock = threading.Lock()
_executor: ThreadPoolExecutor | None = None
_workers = 0


def cpu_count() -> int:
    """Usable CPUs (``sched_getaffinity`` when available)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def resolve_threads(threads: int | None) -> int:
    """Normalize a ``threads`` argument: ``None``/1 → 1, 0 → one per
    CPU, negative is an error."""
    if threads is None:
        return 1
    threads = int(threads)
    if threads < 0:
        raise ValueError(f"threads must be >= 0, got {threads}")
    if threads == 0:
        return cpu_count()
    return threads


#: Parallel dispatch is skipped when each worker would get fewer than
#: this many batch rows ...
MIN_ROWS_PER_THREAD = 2
#: ... or when the whole batch holds fewer than this many elements
#: (rows x physical row length): dispatching a shard costs a few
#: microseconds, which tiny batches cannot amortize.
MIN_PARALLEL_ELEMENTS = 1 << 12


def effective_threads(threads: int | None, rows: int, row_len: int) -> int:
    """Clamp a requested worker count to what one batch can amortize.

    Returns 1 (serial) for small work: fewer than
    ``MIN_ROWS_PER_THREAD`` rows per worker, or fewer than
    ``MIN_PARALLEL_ELEMENTS`` total elements in the batch.
    """
    n = resolve_threads(threads)
    if n <= 1 or rows * row_len < MIN_PARALLEL_ELEMENTS:
        return 1
    return max(1, min(n, rows // MIN_ROWS_PER_THREAD))


def get_pool(threads: int) -> ThreadPoolExecutor:
    """The shared executor, grown to at least ``threads`` workers."""
    global _executor, _workers
    with _lock:
        if _executor is None or _workers < threads:
            old = _executor
            _workers = max(_workers, threads)
            _executor = ThreadPoolExecutor(
                max_workers=_workers, thread_name_prefix="spl-shard"
            )
            if old is not None:
                # Tasks already submitted keep running; the old pool's
                # threads exit when they drain.
                old.shutdown(wait=False)
        return _executor


def shard_ranges(count: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(count)`` into ``parts`` contiguous, nearly equal
    ``(lo, hi)`` chunks (fewer when ``count < parts``)."""
    parts = max(1, min(int(parts), int(count)))
    base, rem = divmod(int(count), parts)
    ranges = []
    lo = 0
    for i in range(parts):
        hi = lo + base + (1 if i < rem else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def run_sharded(work: Callable[[int, int], None], count: int,
                threads: int) -> None:
    """Run ``work(lo, hi)`` over contiguous shards of ``range(count)``.

    The first shard runs on the calling thread (no reason to idle it);
    the rest go to the shared pool.  Exceptions from any shard are
    re-raised after all shards finish, so buffers are never abandoned
    mid-write.
    """
    ranges = shard_ranges(count, threads)
    if len(ranges) == 1:
        work(*ranges[0])
        return
    pool = get_pool(len(ranges) - 1)
    futures = [pool.submit(work, lo, hi) for lo, hi in ranges[1:]]
    error: Exception | None = None
    try:
        work(*ranges[0])
    except Exception as exc:  # noqa: BLE001 — re-raised below
        error = exc
    for future in futures:
        try:
            future.result()
        except Exception as exc:  # noqa: BLE001
            if error is None:
                error = exc
    if error is not None:
        raise error
