"""The search engine (Figure 1): timing-driven dynamic programming.

Implements the two-stage strategy of Section 4:

* :mod:`repro.search.dp` — small sizes (2..64): exhaustive dynamic
  programming over the Equation-10 factorizations, straight-line code;
* :mod:`repro.search.large` — large sizes: right-most binary
  Cooley-Tukey with codelet leaves (r <= 64), dynamic programming that
  keeps the *three* best results per size.
"""

from repro.search.dp import SearchResult, search_small_sizes
from repro.search.large import LargeSearch, register_codelet_template

__all__ = [
    "LargeSearch",
    "SearchResult",
    "register_codelet_template",
    "search_small_sizes",
]
