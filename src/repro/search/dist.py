"""Distributed small-size search: the DP search over a fault-tolerant
work queue.

Semantically this is :func:`repro.search.dp.search_small_sizes` — same
candidate enumeration (Equation 10 factorizations), same wisdom replay
with re-validation, same ``-B`` threshold sweep, same first-minimum
winner selection — but every (candidate, threshold) measurement runs
as a *leased task* on a pool of forked workers managed by
:class:`repro.search.queue.TaskQueueCoordinator`.  The worker process
IS the sandbox: a candidate that segfaults or wedges takes down only
its worker, the lease brings the task back, and a candidate that kills
workers repeatedly is poisoned into the shared quarantine exactly like
the serial sandbox path.

Determinism: tasks are keyed by a stable hash of (transform, size,
compiler options, threshold, candidate index, SPL text), measurements
are re-ordered into enumeration order before selection, and the winner
is the first minimum — so given identical timings the distributed
search crowns *identical winners* to the serial search regardless of
worker count, scheduling, injected crashes, or how many times the
coordinator itself was restarted mid-run (the journal replays finished
keys; only the remainder is re-measured).

Sizes are still processed serially in increasing order — the DP leaf
substitution makes size ``n`` depend on every solved ``m < n`` — but
within a size the whole candidate×threshold grid fans out.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.core.compiler import SplCompiler
from repro.core.errors import SplError
from repro.core.nodes import Formula, fourier
from repro.core.parser import parse_formula_text
from repro.generator.fft_rules import enumerate_ct_formulas
from repro.perfeval.sandbox import Quarantine, plan_key
from repro.search.dp import (
    SMALL_TRANSFORM,
    SearchResult,
    compiler_with_threshold,
    default_small_compiler,
)
from repro.search.measure import validate_fft_formula
from repro.search.queue import (
    QueueOutcome,
    QueuePolicy,
    SearchChaos,
    TaskJournal,
    TaskQueueCoordinator,
)
from repro.wisdom.keys import options_fingerprint
from repro.wisdom.store import WisdomStore


def _default_task_runner(compiler: SplCompiler,
                         variants: dict[int, SplCompiler],
                         min_time: float,
                         repeats: int) -> Callable[[dict], dict]:
    """Compile-and-time inside a worker; failures are data, not raises.

    The closure crosses into workers by fork, so the compiler (with its
    templates/defines/memo) is shared copy-on-write.  A compile or
    validation failure returns ``{"ok": False, ...}`` — a *terminal*
    result the coordinator journals rather than retries; only crashes
    and hangs (which never return at all) consume lease retries.
    """

    def run_task(payload: dict) -> dict:
        import numpy as np

        from repro.perfeval.runner import build_executable
        from repro.perfeval.timing import pseudo_mflops, time_callable

        threshold = payload.get("threshold")
        variant = compiler if threshold is None else variants[threshold]
        try:
            formula = parse_formula_text(payload["spl"], variant.defines)
            routine = variant.compile_formula(
                formula, payload["name"], language="c")
        except Exception as exc:  # noqa: BLE001 - terminal, journaled
            return {"ok": False, "kind": "compile",
                    "detail": f"{type(exc).__name__}: {exc}"[:500]}
        try:
            executable = build_executable(routine)
            # Probe once before timing: a NaN/Inf-emitting candidate
            # must be a structured failure, not a recorded "winner".
            probe = executable.apply(
                np.zeros(routine.program.in_size, dtype=complex))
            if not np.all(np.isfinite(np.asarray(probe, dtype=complex))):
                return {"ok": False, "kind": "nan",
                        "detail": "non-finite output on zero input"}
            seconds = time_callable(executable.timer_closure(),
                                    min_time=min_time, repeats=repeats)
        except Exception as exc:  # noqa: BLE001
            return {"ok": False, "kind": "error",
                    "detail": f"{type(exc).__name__}: {exc}"[:500]}
        if not math.isfinite(seconds) or seconds <= 0:
            return {"ok": False, "kind": "nan",
                    "detail": f"unusable timing {seconds!r}"}
        return {"ok": True, "seconds": seconds,
                "mflops": pseudo_mflops(routine.program.in_size, seconds)}

    return run_task


def distributed_search_small_sizes(
        sizes: tuple[int, ...] = (2, 4, 8, 16, 32, 64), *,
        compiler: SplCompiler | None = None,
        rules: tuple[str, ...] = ("multi",),
        max_candidates: int | None = None,
        min_time: float = 0.005,
        repeats: int = 2,
        wisdom: WisdomStore | None = None,
        policy: QueuePolicy | None = None,
        journal_path: str | None = None,
        quarantine: Quarantine | None = None,
        unroll_thresholds: tuple[int, ...] | None = None,
        task_runner: Callable[[dict], Any] | None = None,
        chaos: SearchChaos | None = None,
        verbose: bool = False) -> dict[int, SearchResult]:
    """The paper's small-size DP search, fanned over forked workers.

    Drop-in alternative to
    :func:`repro.search.dp.search_small_sizes`: same arguments where
    they overlap, same :class:`SearchResult` per size, same wisdom
    entries recorded (merge-on-save applies as usual).  ``policy``
    sizes the worker pool and the lease/retry/poison knobs;
    ``journal_path`` makes the run resumable — a coordinator killed
    mid-search restarts from the journal and re-measures only the
    missing keys.  ``task_runner`` substitutes the in-worker
    measurement function (tests inject deterministic timings);
    ``chaos`` injects worker kills (default: ``SPL_SEARCH_CHAOS``).
    """
    compiler = compiler or default_small_compiler()
    policy = policy or QueuePolicy()
    sweep = tuple(sorted(set(unroll_thresholds))) \
        if unroll_thresholds else None
    variants = {
        threshold: compiler_with_threshold(compiler, threshold)
        for threshold in (sweep or ())
    }
    if task_runner is None:
        task_runner = _default_task_runner(compiler, variants,
                                           min_time, repeats)
    journal = TaskJournal(journal_path) if journal_path else None
    options_print = options_fingerprint(compiler.options)
    best: dict[int, SearchResult] = {}

    def leaf(m: int) -> Formula:
        result = best.get(m)
        return result.formula if result is not None else fourier(m)

    for n in sorted(sizes):
        entry = None
        if wisdom is not None:
            replayed: dict[str, Formula] = {}

            def check(candidate_entry, n=n, replayed=replayed) -> bool:
                recorded_sweep = candidate_entry.meta.get(
                    "threshold_sweep") or []
                if list(sweep or ()) != list(recorded_sweep):
                    return False
                formula = parse_formula_text(candidate_entry.formula,
                                             compiler.defines)
                if not validate_fft_formula(compiler, formula, n):
                    return False
                replayed["formula"] = formula
                return True

            entry = wisdom.validated_lookup(SMALL_TRANSFORM, n,
                                            compiler.options, validate=check)
        if entry is not None:
            best[n] = SearchResult(
                n=n,
                formula=replayed["formula"],
                seconds=entry.seconds,
                mflops=entry.mflops,
                candidates_tried=0,
                from_wisdom=True,
                unroll_threshold=entry.meta.get("unroll_threshold"),
            )
            if verbose:
                print(best[n].describe())
            continue
        candidates = list(enumerate_ct_formulas(
            n, leaf=leaf, rules=rules, limit=max_candidates
        ))
        if not candidates:
            candidates = [leaf(n)]
        # One task per (threshold, candidate) in the exact order the
        # serial search measures them; the key is stable across runs
        # (the enumeration is deterministic), which is what lets a
        # restarted coordinator resume from the journal.
        ordered_keys: list[str] = []
        tasks: dict[str, dict] = {}
        meta_by_key: dict[str, tuple[int | None, int]] = {}
        for threshold in ([None] if sweep is None else list(sweep)):
            prefix = (f"spl_fft{n}_c" if threshold is None
                      else f"spl_fft{n}_b{threshold}_c")
            for index, formula in enumerate(candidates):
                spl = formula.to_spl()
                key = plan_key("dist", SMALL_TRANSFORM, str(n),
                               options_print, str(threshold),
                               str(index), spl)
                tasks[key] = {"n": n, "index": index,
                              "threshold": threshold,
                              "name": f"{prefix}{index}", "spl": spl}
                ordered_keys.append(key)
                meta_by_key[key] = (threshold, index)
        coordinator = TaskQueueCoordinator(
            task_runner, policy=policy, journal=journal,
            quarantine=quarantine, chaos=chaos)
        outcome: QueueOutcome = coordinator.run(tasks)
        # Re-assemble in enumeration order and pick the first minimum —
        # byte-for-byte the serial search's pick_winner semantics.
        usable: list[tuple[str, dict]] = []
        failed = 0
        for key in ordered_keys:
            result = outcome.results.get(key)
            if result is not None and result.get("ok"):
                usable.append((key, result))
            else:
                failed += 1
        tried = len(ordered_keys)
        if not usable:
            details = "; ".join(
                f"{failure.kind}: {failure.detail}"
                for failure in outcome.failures.values())
            message = (
                f"distributed search produced no measurable candidate for "
                f"F_{n} (rules={rules!r}, max_candidates={max_candidates!r}"
            )
            if details:
                message += f"; failures: {details[:400]}"
            raise SplError(message + ")")
        winner_key = usable[0][0]
        winner_seconds = usable[0][1]["seconds"]
        for key, result in usable[1:]:
            if result["seconds"] < winner_seconds:
                winner_key, winner_seconds = key, result["seconds"]
        winner_threshold, winner_index = meta_by_key[winner_key]
        winner_result = outcome.results[winner_key]
        best[n] = SearchResult(
            n=n,
            formula=candidates[winner_index],
            seconds=winner_result["seconds"],
            mflops=winner_result["mflops"],
            candidates_tried=tried,
            candidates_failed=failed,
            unroll_threshold=winner_threshold,
        )
        if wisdom is not None:
            meta = {
                "rules": list(rules),
                "candidates_tried": tried,
            }
            if sweep is not None:
                meta["unroll_threshold"] = winner_threshold
                meta["threshold_sweep"] = list(sweep)
            wisdom.record(
                SMALL_TRANSFORM, n, compiler.options,
                formula=best[n].formula.to_spl(),
                seconds=best[n].seconds,
                mflops=best[n].mflops,
                **meta,
            )
        if verbose:
            print(best[n].describe())
    return best
