"""Small-size FFT search: dynamic programming over Equation 10 (§4.1).

"For the small sizes, we used dynamic programming over all possible
factorizations using Equation 10 and, for each size, we selected the
factorization with the lowest execution time."

Sizes are processed in increasing order; when a factorization uses a
sub-transform ``F_m`` for an already-solved ``m``, the best known
formula for ``m`` is substituted as the leaf, which is what makes this
dynamic programming rather than exhaustive tree search.

With a :class:`repro.wisdom.WisdomStore` attached, previously found
winners are replayed without any re-measurement (FFTW's wisdom) —
after being re-validated against the interpreter backend, so a stale
or tampered store entry is evicted instead of trusted; with
``jobs > 1`` cold searches compile and time candidates concurrently
with a deterministic winner (ties broken on candidate index).

Fault tolerance: with a ``sandbox`` policy, candidates are timed in
isolated worker processes; one that segfaults, hangs or emits NaN is
skipped (and quarantined) and the search keeps going over the
survivors instead of aborting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.compiler import CompilerOptions, SplCompiler
from repro.core.errors import SplError
from repro.core.nodes import Formula, fourier
from repro.core.parser import parse_formula_text
from repro.generator.fft_rules import enumerate_ct_formulas
from repro.perfeval.sandbox import Quarantine, SandboxPolicy
from repro.search.measure import measure_formulas, validate_fft_formula
from repro.wisdom.parallel import pick_winner
from repro.wisdom.store import WisdomStore

SMALL_TRANSFORM = "fft-small"


@dataclass
class SearchResult:
    """Best formula found for one transform size."""

    n: int
    formula: Formula
    seconds: float
    mflops: float
    candidates_tried: int
    from_wisdom: bool = False
    candidates_failed: int = 0  # quarantined/skipped during measurement

    def describe(self) -> str:
        source = "wisdom" if self.from_wisdom \
            else f"{self.candidates_tried} candidates"
        if self.candidates_failed:
            source += f", {self.candidates_failed} failed"
        return (
            f"F_{self.n}: {self.mflops:8.1f} pseudo-MFlops "
            f"({source}) {self.formula.to_spl()}"
        )


def default_small_compiler() -> SplCompiler:
    """Straight-line code, real arithmetic — the paper's §4.1 setup."""
    return SplCompiler(CompilerOptions(
        unroll=True, optimize="default", datatype="complex",
        codetype="real", language="c",
    ))


def search_small_sizes(sizes: tuple[int, ...] = (2, 4, 8, 16, 32, 64), *,
                       compiler: SplCompiler | None = None,
                       rules: tuple[str, ...] = ("multi",),
                       max_candidates: int | None = None,
                       min_time: float = 0.005,
                       wisdom: WisdomStore | None = None,
                       jobs: int = 1,
                       sandbox: SandboxPolicy | None = None,
                       quarantine: Quarantine | None = None,
                       verbose: bool = False) -> dict[int, SearchResult]:
    """Run the paper's small-size dynamic-programming search.

    Returns, for each size, the fastest formula found together with
    its measured time.  ``max_candidates`` caps the per-size candidate
    count for quick runs; ``wisdom`` replays remembered winners with
    zero re-measurement (each replayed formula is first re-validated
    numerically and evicted on mismatch); ``jobs`` measures candidates
    concurrently; ``sandbox`` isolates each measurement in a worker
    process so crashing/hanging/NaN candidates are skipped and
    quarantined rather than fatal.
    """
    compiler = compiler or default_small_compiler()
    best: dict[int, SearchResult] = {}

    def leaf(m: int) -> Formula:
        result = best.get(m)
        return result.formula if result is not None else fourier(m)

    for n in sorted(sizes):
        entry = None
        if wisdom is not None:
            replayed: dict[str, Formula] = {}

            def check(candidate_entry, n=n, replayed=replayed) -> bool:
                formula = parse_formula_text(candidate_entry.formula,
                                             compiler.defines)
                if not validate_fft_formula(compiler, formula, n):
                    return False
                replayed["formula"] = formula
                return True

            entry = wisdom.validated_lookup(SMALL_TRANSFORM, n,
                                            compiler.options, validate=check)
        if entry is not None:
            best[n] = SearchResult(
                n=n,
                formula=replayed["formula"],
                seconds=entry.seconds,
                mflops=entry.mflops,
                candidates_tried=0,
                from_wisdom=True,
            )
            if verbose:
                print(best[n].describe())
            continue
        # enumerate_ct_formulas returns a list today, but custom
        # enumerators may be lazy: materialize before counting.
        candidates = list(enumerate_ct_formulas(
            n, leaf=leaf, rules=rules, limit=max_candidates
        ))
        if not candidates:
            # Degenerate spaces (prime sizes under exotic rule sets, a
            # zero candidate cap) fall back to the direct O(n^2) leaf.
            candidates = [leaf(n)]
        measurements = measure_formulas(
            compiler, candidates, name_prefix=f"spl_fft{n}_c",
            min_time=min_time, jobs=jobs,
            sandbox=sandbox, quarantine=quarantine,
        )
        # getattr: stubbed/duck-typed measurements count as successes.
        usable = [m for m in measurements if getattr(m, "ok", True)]
        failed = len(measurements) - len(usable)
        if not usable:
            details = "; ".join(
                m.failure.describe() for m in measurements
                if getattr(m, "failure", None) is not None
            )
            message = (
                f"small-size search produced no measurable candidate for "
                f"F_{n} (rules={rules!r}, max_candidates={max_candidates!r}"
            )
            if details:
                message += f"; failures: {details[:400]}"
            raise SplError(message + ")")
        _, winner = pick_winner(usable, key=lambda m: m.seconds)
        best[n] = SearchResult(
            n=n,
            formula=winner.formula,
            seconds=winner.seconds,
            mflops=winner.mflops,
            candidates_tried=len(candidates),
            candidates_failed=failed,
        )
        if wisdom is not None:
            wisdom.record(
                SMALL_TRANSFORM, n, compiler.options,
                formula=winner.formula.to_spl(),
                seconds=winner.seconds,
                mflops=winner.mflops,
                rules=list(rules),
                candidates_tried=len(candidates),
            )
        if verbose:
            print(best[n].describe())
    return best
