"""Small-size FFT search: dynamic programming over Equation 10 (§4.1).

"For the small sizes, we used dynamic programming over all possible
factorizations using Equation 10 and, for each size, we selected the
factorization with the lowest execution time."

Sizes are processed in increasing order; when a factorization uses a
sub-transform ``F_m`` for an already-solved ``m``, the best known
formula for ``m`` is substituted as the leaf, which is what makes this
dynamic programming rather than exhaustive tree search.

With a :class:`repro.wisdom.WisdomStore` attached, previously found
winners are replayed without any re-measurement (FFTW's wisdom) —
after being re-validated against the interpreter backend, so a stale
or tampered store entry is evicted instead of trusted; with
``jobs > 1`` cold searches compile and time candidates concurrently
with a deterministic winner (ties broken on candidate index).

Fault tolerance: with a ``sandbox`` policy, candidates are timed in
isolated worker processes; one that segfaults, hangs or emits NaN is
skipped (and quarantined) and the search keeps going over the
survivors instead of aborting.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.compiler import CompilerOptions, SplCompiler
from repro.core.errors import SplError
from repro.core.nodes import Formula, fourier
from repro.core.parser import parse_formula_text
from repro.generator.fft_rules import enumerate_ct_formulas
from repro.perfeval.sandbox import Quarantine, SandboxPolicy
from repro.search.measure import measure_formulas, validate_fft_formula
from repro.wisdom.parallel import pick_winner
from repro.wisdom.store import WisdomStore

SMALL_TRANSFORM = "fft-small"


@dataclass
class SearchResult:
    """Best formula found for one transform size."""

    n: int
    formula: Formula
    seconds: float
    mflops: float
    candidates_tried: int
    from_wisdom: bool = False
    candidates_failed: int = 0  # quarantined/skipped during measurement
    # The winning "-B" unroll threshold when the search swept one
    # (None: the compiler's own unroll setting was used unswept).
    unroll_threshold: int | None = None

    def describe(self) -> str:
        source = "wisdom" if self.from_wisdom \
            else f"{self.candidates_tried} candidates"
        if self.candidates_failed:
            source += f", {self.candidates_failed} failed"
        suffix = ""
        if self.unroll_threshold is not None:
            suffix = f" [-B {self.unroll_threshold}]"
        return (
            f"F_{self.n}: {self.mflops:8.1f} pseudo-MFlops "
            f"({source}){suffix} {self.formula.to_spl()}"
        )


def default_small_compiler() -> SplCompiler:
    """Straight-line code, real arithmetic — the paper's §4.1 setup."""
    return SplCompiler(CompilerOptions(
        unroll=True, optimize="default", datatype="complex",
        codetype="real", language="c",
    ))


def compiler_with_threshold(compiler: SplCompiler,
                            threshold: int) -> SplCompiler:
    """A variant compiler unrolling only transforms of size <= threshold.

    The paper's ``-B`` knob as a search dimension: ``unroll`` is
    forced off so the threshold alone decides which sub-transforms
    become straight-line codelets.  Templates and defines are shared
    with the source compiler (they are read-only during measurement);
    the compile memo is not, since memo keys include the options.
    """
    variant = SplCompiler(
        replace(compiler.options, unroll=False,
                unroll_threshold=threshold),
        compiler.limits,
    )
    variant.templates = compiler.templates
    variant.defines = compiler.defines
    return variant


def search_small_sizes(sizes: tuple[int, ...] = (2, 4, 8, 16, 32, 64), *,
                       compiler: SplCompiler | None = None,
                       rules: tuple[str, ...] = ("multi",),
                       max_candidates: int | None = None,
                       min_time: float = 0.005,
                       wisdom: WisdomStore | None = None,
                       jobs: int = 1,
                       sandbox: SandboxPolicy | None = None,
                       quarantine: Quarantine | None = None,
                       unroll_thresholds: tuple[int, ...] | None = None,
                       verbose: bool = False) -> dict[int, SearchResult]:
    """Run the paper's small-size dynamic-programming search.

    Returns, for each size, the fastest formula found together with
    its measured time.  ``max_candidates`` caps the per-size candidate
    count for quick runs; ``wisdom`` replays remembered winners with
    zero re-measurement (each replayed formula is first re-validated
    numerically and evicted on mismatch); ``jobs`` measures candidates
    concurrently; ``sandbox`` isolates each measurement in a worker
    process so crashing/hanging/NaN candidates are skipped and
    quarantined rather than fatal.

    ``unroll_thresholds`` adds the paper's ``-B`` knob as a second
    search dimension: every candidate formula is compiled and measured
    once per threshold (``unroll`` forced off, so the threshold alone
    decides which sub-transforms unroll into codelets), and the
    (formula, threshold) pair with the lowest time wins.  The winning
    threshold is recorded in wisdom (``meta["unroll_threshold"]``)
    along with the swept values (``meta["threshold_sweep"]``); a
    replayed entry whose sweep differs from the current call's is
    treated as a miss and evicted, so wisdom produced under one search
    space is never silently replayed in another.
    """
    compiler = compiler or default_small_compiler()
    sweep = tuple(sorted(set(unroll_thresholds))) \
        if unroll_thresholds else None
    variants = {
        threshold: compiler_with_threshold(compiler, threshold)
        for threshold in (sweep or ())
    }
    best: dict[int, SearchResult] = {}

    def leaf(m: int) -> Formula:
        result = best.get(m)
        return result.formula if result is not None else fourier(m)

    for n in sorted(sizes):
        entry = None
        if wisdom is not None:
            replayed: dict[str, Formula] = {}

            def check(candidate_entry, n=n, replayed=replayed) -> bool:
                # An entry searched under a different -B sweep answers
                # a different question: treat it as a miss (and evict)
                # rather than replay it into this search space.
                recorded_sweep = candidate_entry.meta.get(
                    "threshold_sweep") or []
                if list(sweep or ()) != list(recorded_sweep):
                    return False
                formula = parse_formula_text(candidate_entry.formula,
                                             compiler.defines)
                if not validate_fft_formula(compiler, formula, n):
                    return False
                replayed["formula"] = formula
                return True

            entry = wisdom.validated_lookup(SMALL_TRANSFORM, n,
                                            compiler.options, validate=check)
        if entry is not None:
            best[n] = SearchResult(
                n=n,
                formula=replayed["formula"],
                seconds=entry.seconds,
                mflops=entry.mflops,
                candidates_tried=0,
                from_wisdom=True,
                unroll_threshold=entry.meta.get("unroll_threshold"),
            )
            if verbose:
                print(best[n].describe())
            continue
        # enumerate_ct_formulas returns a list today, but custom
        # enumerators may be lazy: materialize before counting.
        candidates = list(enumerate_ct_formulas(
            n, leaf=leaf, rules=rules, limit=max_candidates
        ))
        if not candidates:
            # Degenerate spaces (prime sizes under exotic rule sets, a
            # zero candidate cap) fall back to the direct O(n^2) leaf.
            candidates = [leaf(n)]
        # Without a sweep, candidates are measured once under the
        # session compiler; with one, once per threshold variant, and
        # the (formula, threshold) pair with the lowest time wins.
        tagged: list[tuple[int | None, object]] = []
        tried = 0
        for threshold, variant in (
                [(None, compiler)] if sweep is None
                else [(b, variants[b]) for b in sweep]):
            prefix = (f"spl_fft{n}_c" if threshold is None
                      else f"spl_fft{n}_b{threshold}_c")
            measurements = measure_formulas(
                variant, candidates, name_prefix=prefix,
                min_time=min_time, jobs=jobs,
                sandbox=sandbox, quarantine=quarantine,
            )
            tried += len(candidates)
            tagged.extend((threshold, m) for m in measurements)
        # getattr: stubbed/duck-typed measurements count as successes.
        usable = [(b, m) for b, m in tagged if getattr(m, "ok", True)]
        failed = len(tagged) - len(usable)
        if not usable:
            details = "; ".join(
                m.failure.describe() for _, m in tagged
                if getattr(m, "failure", None) is not None
            )
            message = (
                f"small-size search produced no measurable candidate for "
                f"F_{n} (rules={rules!r}, max_candidates={max_candidates!r}"
            )
            if details:
                message += f"; failures: {details[:400]}"
            raise SplError(message + ")")
        _, (winner_threshold, winner) = pick_winner(
            usable, key=lambda item: item[1].seconds)
        best[n] = SearchResult(
            n=n,
            formula=winner.formula,
            seconds=winner.seconds,
            mflops=winner.mflops,
            candidates_tried=tried,
            candidates_failed=failed,
            unroll_threshold=winner_threshold,
        )
        if wisdom is not None:
            meta = {
                "rules": list(rules),
                "candidates_tried": tried,
            }
            if sweep is not None:
                meta["unroll_threshold"] = winner_threshold
                meta["threshold_sweep"] = list(sweep)
            wisdom.record(
                SMALL_TRANSFORM, n, compiler.options,
                formula=winner.formula.to_spl(),
                seconds=winner.seconds,
                mflops=winner.mflops,
                **meta,
            )
        if verbose:
            print(best[n].describe())
    return best
