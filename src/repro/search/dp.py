"""Small-size FFT search: dynamic programming over Equation 10 (§4.1).

"For the small sizes, we used dynamic programming over all possible
factorizations using Equation 10 and, for each size, we selected the
factorization with the lowest execution time."

Sizes are processed in increasing order; when a factorization uses a
sub-transform ``F_m`` for an already-solved ``m``, the best known
formula for ``m`` is substituted as the leaf, which is what makes this
dynamic programming rather than exhaustive tree search.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.compiler import CompilerOptions, SplCompiler
from repro.core.nodes import Formula, fourier
from repro.generator.fft_rules import enumerate_ct_formulas
from repro.search.measure import Measurement, measure_formula


@dataclass
class SearchResult:
    """Best formula found for one transform size."""

    n: int
    formula: Formula
    seconds: float
    mflops: float
    candidates_tried: int

    def describe(self) -> str:
        return (
            f"F_{self.n}: {self.mflops:8.1f} pseudo-MFlops "
            f"({self.candidates_tried} candidates) {self.formula.to_spl()}"
        )


def default_small_compiler() -> SplCompiler:
    """Straight-line code, real arithmetic — the paper's §4.1 setup."""
    return SplCompiler(CompilerOptions(
        unroll=True, optimize="default", datatype="complex",
        codetype="real", language="c",
    ))


def search_small_sizes(sizes: tuple[int, ...] = (2, 4, 8, 16, 32, 64), *,
                       compiler: SplCompiler | None = None,
                       rules: tuple[str, ...] = ("multi",),
                       max_candidates: int | None = None,
                       min_time: float = 0.005,
                       verbose: bool = False) -> dict[int, SearchResult]:
    """Run the paper's small-size dynamic-programming search.

    Returns, for each size, the fastest formula found together with
    its measured time.  ``max_candidates`` caps the per-size candidate
    count for quick runs.
    """
    compiler = compiler or default_small_compiler()
    best: dict[int, SearchResult] = {}

    def leaf(m: int) -> Formula:
        result = best.get(m)
        return result.formula if result is not None else fourier(m)

    for n in sorted(sizes):
        candidates = enumerate_ct_formulas(
            n, leaf=leaf, rules=rules, limit=max_candidates
        )
        winner: Measurement | None = None
        for index, formula in enumerate(candidates):
            measured = measure_formula(
                compiler, formula, f"spl_fft{n}_c{index}", min_time=min_time
            )
            if winner is None or measured.seconds < winner.seconds:
                winner = measured
        assert winner is not None
        best[n] = SearchResult(
            n=n,
            formula=winner.formula,
            seconds=winner.seconds,
            mflops=winner.mflops,
            candidates_tried=len(candidates),
        )
        if verbose:
            print(best[n].describe())
    return best
