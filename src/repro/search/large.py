"""Large-size FFT search (§4.2): right-most binary CT with codelets.

"The search space was restricted to binary Cooley-Tukey style
factorization, as expressed in Equation 5, and to right-most
factorization ... the dynamic programming algorithm kept the three
best results at each stage instead of just one."

The best small-size formulas (from :mod:`repro.search.dp`) are
registered as *templates* for ``(F r)``, r <= 64 — the paper's §4.2
mechanism — so the large-size loop code embeds the tuned straight-line
codelets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.compiler import CompilerOptions, SplCompiler
from repro.core.nodes import (
    Formula,
    compose,
    fourier,
    identity,
    stride,
    tensor,
    twiddle,
)
from repro.core.parser import parse_formula_text
from repro.core.errors import SplError
from repro.core.pattern import PatParam
from repro.core.templates import Template
from repro.perfeval.sandbox import Quarantine, SandboxPolicy
from repro.search.dp import SearchResult
from repro.search.measure import Measurement, measure_formula, \
    measure_formulas, validate_fft_formula
from repro.wisdom.store import WisdomStore

LARGE_TRANSFORM = "fft-large"


def register_codelet_template(compiler: SplCompiler, n: int,
                              formula: Formula) -> None:
    """Register ``formula`` as the expansion of ``(F n)``.

    The formula subtree is marked for full unrolling so every use of
    the codelet becomes straight-line code, exactly like the paper's
    search-generated templates.  When the winning formula is the
    direct definition ``(F n)`` itself, no template is needed — the
    start-up definition already covers it (and registering it would
    make the expansion self-recursive).
    """
    if formula == fourier(n):
        return
    compiler.templates.add(Template(
        pattern=PatParam("F", (n,)),
        condition=None,
        expansion=formula.with_unroll(True),
        source_name=f"codelet F_{n}",
    ))


@dataclass
class LargeCandidate:
    """One (radix, rest) plan kept by the keep-k dynamic programming."""

    n: int
    radix: int
    formula: Formula
    seconds: float
    mflops: float


def default_large_compiler() -> SplCompiler:
    """Looped code with straight-line codelets — the §4.2 setup."""
    return SplCompiler(CompilerOptions(
        optimize="default", datatype="complex", codetype="real",
        language="c",
    ))


class LargeSearch:
    """Keep-k dynamic programming over right-most binary factorizations."""

    def __init__(self, small: dict[int, SearchResult], *, keep: int = 3,
                 max_codelet: int = 64,
                 radix_log2_range: tuple[int, ...] = (1, 2, 3, 4, 5, 6),
                 compiler: SplCompiler | None = None,
                 min_time: float = 0.005,
                 wisdom: WisdomStore | None = None,
                 jobs: int = 1,
                 sandbox: SandboxPolicy | None = None,
                 quarantine: Quarantine | None = None,
                 verbose: bool = False):
        self.keep = keep
        self.max_codelet = max_codelet
        self.radix_log2_range = radix_log2_range
        self.min_time = min_time
        self.wisdom = wisdom
        self.jobs = jobs
        self.sandbox = sandbox
        self.quarantine = quarantine
        self.candidates_failed = 0  # skipped/quarantined, all sizes
        self.verbose = verbose
        self.compiler = compiler or default_large_compiler()
        self.codelet_sizes: list[int] = []
        for n, result in sorted(small.items()):
            if n <= max_codelet:
                register_codelet_template(self.compiler, n, result.formula)
                self.codelet_sizes.append(n)
        # size -> the k best candidates, fastest first.
        self.best: dict[int, list[LargeCandidate]] = {}

    # -- formula assembly ------------------------------------------------------

    def _right_factored(self, r: int, right: Formula, s: int) -> Formula:
        """``F_rs = (F_r (x) I_s) T^rs_s (I_r (x) right) L^rs_r``."""
        n = r * s
        return compose(
            tensor(fourier(r), identity(s)),
            twiddle(n, s),
            tensor(identity(r), right),
            stride(n, r),
        )

    def _right_formulas(self, s: int) -> list[Formula]:
        if s <= self.max_codelet:
            return [fourier(s)]  # expands through the codelet template
        return [cand.formula for cand in self.best[s]]

    # -- the search ------------------------------------------------------------

    def _wisdom_options(self) -> tuple:
        """Everything (beyond transform and n) that shapes the result.

        Folded into the wisdom key's options hash, so a store produced
        under different codelets, keep depth or radix range never
        matches.
        """
        return (self.compiler.options, self.keep, self.max_codelet,
                tuple(self.codelet_sizes), tuple(self.radix_log2_range))

    def search_up_to(self, n: int) -> None:
        """Fill the DP table for every power of two up to ``n``."""
        k = n.bit_length() - 1
        if 2 ** k != n:
            raise ValueError(f"large-size search needs a power of two, got {n}")
        size = self.max_codelet * 2
        while size <= n:
            if size not in self.best:
                self._search_size(size)
            size *= 2

    def _search_size(self, n: int) -> None:
        if self.wisdom is not None:
            replayed: dict[str, list[LargeCandidate]] = {}

            def check(entry, n=n, replayed=replayed) -> bool:
                kept = [
                    LargeCandidate(
                        n=n, radix=int(item["radix"]),
                        formula=parse_formula_text(item["formula"],
                                                   self.compiler.defines),
                        seconds=float(item["seconds"]),
                        mflops=float(item["mflops"]),
                    )
                    for item in entry.meta["kept"]
                ]
                if not kept or not validate_fft_formula(
                        self.compiler, kept[0].formula, n):
                    return False
                replayed["kept"] = kept
                return True

            entry = self.wisdom.validated_lookup(LARGE_TRANSFORM, n,
                                                 self._wisdom_options(),
                                                 validate=check)
            if entry is not None:
                self.best[n] = replayed["kept"]
                return
        pairs: list[tuple[int, Formula]] = []
        for a in self.radix_log2_range:
            r = 2 ** a
            if r > self.max_codelet or n // r < 2:
                continue
            if r not in self.codelet_sizes:
                continue
            s = n // r
            if s > self.max_codelet and s not in self.best:
                self._search_size(s)
            for right in self._right_formulas(s):
                pairs.append((r, self._right_factored(r, right, s)))
        measurements = measure_formulas(
            self.compiler, [formula for _, formula in pairs],
            name_prefix=f"spl_fft{n}_v", min_time=self.min_time,
            jobs=self.jobs, sandbox=self.sandbox,
            quarantine=self.quarantine,
        )
        # getattr: stubbed/duck-typed measurements count as successes.
        failed = sum(1 for measured in measurements
                     if not getattr(measured, "ok", True))
        self.candidates_failed += failed
        if measurements and failed == len(measurements):
            details = "; ".join(
                measured.failure.describe() for measured in measurements
                if getattr(measured, "failure", None) is not None
            )
            raise SplError(
                f"large-size search: every candidate for F_{n} failed "
                f"measurement ({details[:400]})"
            )
        kept = [
            LargeCandidate(n=n, radix=r, formula=measured.formula,
                           seconds=measured.seconds, mflops=measured.mflops)
            for (r, _), measured in zip(pairs, measurements)
            if getattr(measured, "ok", True)
        ]
        # Stable sort: equal timings keep candidate (index) order, so
        # parallel and serial runs agree on the kept set.
        kept.sort(key=lambda cand: cand.seconds)
        self.best[n] = kept[: self.keep]
        if self.wisdom is not None and kept:
            top = self.best[n][0]
            self.wisdom.record(
                LARGE_TRANSFORM, n, self._wisdom_options(),
                formula=top.formula.to_spl(),
                seconds=top.seconds,
                mflops=top.mflops,
                kept=[
                    {"radix": cand.radix, "formula": cand.formula.to_spl(),
                     "seconds": cand.seconds, "mflops": cand.mflops}
                    for cand in self.best[n]
                ],
            )
        if self.verbose and kept:
            top = kept[0]
            print(
                f"F_{n}: best radix {top.radix}, {top.mflops:.1f} "
                f"pseudo-MFlops ({len(pairs)} candidates)"
            )

    def best_candidate(self, n: int) -> LargeCandidate:
        self.search_up_to(n)
        if n <= self.max_codelet:
            raise ValueError("use the small-size search below the codelet cap")
        return self.best[n][0]

    def best_measurement(self, n: int) -> Measurement:
        """Re-measure the winning plan for ``n`` (fresh executable)."""
        candidate = self.best_candidate(n)
        return measure_formula(
            self.compiler, candidate.formula, f"spl_fft{n}_best",
            min_time=self.min_time,
        )
