"""Compile-and-time one formula candidate.

The measurement path is: SPL compiler (straight-line or looped code)
-> C backend -> host C compiler at -O3 -> ctypes -> best-of timing.
When no C compiler is available the Python backend is timed instead
(relative comparisons between candidates remain meaningful).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.compiler import CompiledRoutine, SplCompiler
from repro.core.nodes import Formula
from repro.perfeval import ccompile
from repro.perfeval.runner import ExecutableRoutine, build_executable
from repro.perfeval.timing import pseudo_mflops, time_callable
from repro.wisdom.parallel import map_indexed, precompile_sources


@dataclass
class Measurement:
    """One timed candidate."""

    formula: Formula
    routine: CompiledRoutine
    executable: ExecutableRoutine
    seconds: float

    @property
    def mflops(self) -> float:
        return pseudo_mflops(self.routine.in_size, self.seconds)


def measure_formula(compiler: SplCompiler, formula: Formula, name: str, *,
                    min_time: float = 0.005,
                    repeats: int = 2) -> Measurement:
    """Compile ``formula`` with ``compiler`` and time it."""
    routine = compiler.compile_formula(formula, name, language="c")
    executable = build_executable(routine)
    seconds = time_callable(executable.timer_closure(),
                            min_time=min_time, repeats=repeats)
    return Measurement(formula=formula, routine=routine,
                       executable=executable, seconds=seconds)


def measure_formulas(compiler: SplCompiler, formulas: Sequence[Formula], *,
                     name_prefix: str = "spl_cand",
                     min_time: float = 0.005,
                     repeats: int = 2,
                     jobs: int = 1) -> list[Measurement]:
    """Compile and time a batch of candidates, optionally in parallel.

    With ``jobs > 1`` the expensive half of the C path — the host
    compiler subprocess per candidate — is fanned out over a process
    pool (see :mod:`repro.wisdom.parallel`), after which the timing
    runs fan out over a thread pool.  Results are returned in candidate
    order, so selecting the first minimum yields the same winner as a
    serial run given the same timings.
    """
    formulas = list(formulas)
    routines = [
        compiler.compile_formula(formula, f"{name_prefix}{index}",
                                 language="c")
        for index, formula in enumerate(formulas)
    ]
    if jobs > 1 and len(routines) > 1 and ccompile.have_c_compiler():
        # Warm the shared-object cache concurrently; the build step
        # below then loads the cached .so without re-invoking cc.
        precompile_sources([routine.source for routine in routines],
                           jobs=jobs)

    def measure_one(index: int, routine: CompiledRoutine) -> Measurement:
        executable = build_executable(routine)
        seconds = time_callable(executable.timer_closure(),
                                min_time=min_time, repeats=repeats)
        return Measurement(formula=formulas[index], routine=routine,
                           executable=executable, seconds=seconds)

    return map_indexed(routines, measure_one, jobs=jobs)
