"""Compile-and-time one formula candidate.

The measurement path is: SPL compiler (straight-line or looped code)
-> C backend -> host C compiler at -O3 -> ctypes -> best-of timing.
When no C compiler is available the Python backend is timed instead
(relative comparisons between candidates remain meaningful).

Fault tolerance: with a :class:`repro.perfeval.sandbox.SandboxPolicy`,
the risky half — executing generated native code — runs in a worker
process per candidate (wall-clock timeout, memory cap, crash
detection).  A candidate that segfaults, hangs or emits NaN comes back
as a :class:`Measurement` carrying a structured
:class:`~repro.perfeval.sandbox.CandidateFailure` (``ok`` is False,
``seconds`` is inf) instead of raising, and is quarantined by plan key
so no later search re-measures it.  The search layers above simply
skip non-``ok`` measurements and keep going.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from typing import Sequence

from repro.core.compiler import CompiledRoutine, SplCompiler
from repro.core.nodes import Formula
from repro.perfeval import ccompile
from repro.perfeval.runner import ExecutableRoutine, build_executable
from repro.perfeval.sandbox import (
    CandidateFailure,
    Quarantine,
    SandboxPolicy,
    SandboxResult,
    default_quarantine,
    sandbox_supported,
)
from repro.perfeval.timing import pseudo_mflops, time_callable
from repro.wisdom.parallel import map_indexed, precompile_sources


@dataclass
class Measurement:
    """One timed candidate (or its structured failure).

    ``executable`` is None for sandboxed measurements (the executable
    lives and dies in the worker; the winner can be rebuilt from its
    formula) and for failed candidates.  ``ok`` distinguishes a real
    timing from a failure: failed candidates time as ``inf`` so a
    naive min() can never crown them, but callers should filter on
    ``ok`` and surface ``failure.describe()``.
    """

    formula: Formula
    routine: CompiledRoutine
    executable: ExecutableRoutine | None
    seconds: float
    failure: CandidateFailure | None = None
    sandboxed: bool = False

    @property
    def ok(self) -> bool:
        return self.failure is None

    @property
    def mflops(self) -> float:
        if not self.ok:
            return 0.0
        return pseudo_mflops(self.routine.in_size, self.seconds)


def validate_fft_formula(compiler: SplCompiler, formula: Formula, n: int, *,
                         rtol: float = 1e-6, atol: float = 1e-8,
                         seed: int = 5) -> bool:
    """Check that ``formula`` really computes the ``n``-point DFT.

    Runs the compiled i-code through the reference interpreter (the
    backend every other backend must agree with) on one random complex
    vector and compares against ``numpy.fft.fft``.  Used to re-validate
    plans replayed from a wisdom store before they are trusted; any
    compile/parse/run failure counts as invalid.
    """
    import numpy as np

    from repro.core.interpreter import run_program

    try:
        routine = compiler.compile_formula(formula, f"spl_check{n}",
                                           language="c")
    except Exception:  # noqa: BLE001 - invalid wisdom must not raise
        return False
    program = routine.program
    if program.in_size != n or program.out_size != n or program.strided:
        return False
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    try:
        if program.element_width == 2:
            buf = np.zeros(2 * n)
            buf[0::2] = x.real
            buf[1::2] = x.imag
            out = run_program(program, list(buf))
            y = np.asarray(out[0::2]) + 1j * np.asarray(out[1::2])
        else:
            out = run_program(program, list(x.astype(complex)))
            y = np.asarray(out, dtype=complex)
    except Exception:  # noqa: BLE001
        return False
    return bool(np.allclose(y, np.fft.fft(x), rtol=rtol, atol=atol))


def _use_sandbox(sandbox: SandboxPolicy | None,
                 routine: CompiledRoutine) -> bool:
    return (
        sandbox is not None
        and sandbox.enabled
        and sandbox_supported()
        and routine.language == "c"
        and ccompile.have_c_compiler()
    )


def _measure_sandboxed(routine: CompiledRoutine, formula: Formula, *,
                       sandbox: SandboxPolicy,
                       quarantine: Quarantine | None,
                       min_time: float, repeats: int) -> Measurement:
    from repro.perfeval import sandbox as sandbox_mod

    program = routine.program
    outcome = sandbox_mod.measure_candidate(
        routine.source, routine.name,
        in_len=program.in_size * program.element_width,
        out_len=program.out_size * program.element_width,
        strided=program.strided,
        policy=sandbox,
        min_time=min_time, repeats=repeats,
        quarantine=quarantine,
    )
    if isinstance(outcome, SandboxResult):
        return Measurement(formula=formula, routine=routine,
                           executable=None, seconds=outcome.seconds,
                           sandboxed=True)
    return Measurement(formula=formula, routine=routine, executable=None,
                       seconds=math.inf, failure=outcome, sandboxed=True)


def measure_formula(compiler: SplCompiler, formula: Formula, name: str, *,
                    min_time: float = 0.005,
                    repeats: int = 2,
                    sandbox: SandboxPolicy | None = None,
                    quarantine: Quarantine | None = None) -> Measurement:
    """Compile ``formula`` with ``compiler`` and time it.

    With a ``sandbox`` policy the timing runs in an isolated worker
    process and misbehaving candidates come back as failed
    measurements instead of taking the caller down.
    """
    routine = compiler.compile_formula(formula, name, language="c")
    if _use_sandbox(sandbox, routine):
        return _measure_sandboxed(routine, formula, sandbox=sandbox,
                                  quarantine=quarantine,
                                  min_time=min_time, repeats=repeats)
    executable = build_executable(routine)
    seconds = time_callable(executable.timer_closure(),
                            min_time=min_time, repeats=repeats)
    return Measurement(formula=formula, routine=routine,
                       executable=executable, seconds=seconds)


def measure_formulas(compiler: SplCompiler, formulas: Sequence[Formula], *,
                     name_prefix: str = "spl_cand",
                     min_time: float = 0.005,
                     repeats: int = 2,
                     jobs: int = 1,
                     sandbox: SandboxPolicy | None = None,
                     quarantine: Quarantine | None = None,
                     ) -> list[Measurement]:
    """Compile and time a batch of candidates, optionally in parallel.

    With ``jobs > 1`` the expensive half of the C path — the host
    compiler subprocess per candidate — is fanned out over a process
    pool (see :mod:`repro.wisdom.parallel`), after which the timing
    runs fan out over a thread pool.  Results are returned in candidate
    order, so selecting the first minimum yields the same winner as a
    serial run given the same timings.

    With a ``sandbox`` policy each timing runs in a worker process;
    the returned list keeps one :class:`Measurement` per candidate in
    order — failed candidates included, marked ``ok=False`` — so
    callers can both skip failures and report them.  ``quarantine``
    (default: the process-wide one) suppresses re-measurement of
    candidates that already failed.
    """
    formulas = list(formulas)
    routines = [
        compiler.compile_formula(formula, f"{name_prefix}{index}",
                                 language="c")
        for index, formula in enumerate(formulas)
    ]
    if jobs > 1 and len(routines) > 1 and ccompile.have_c_compiler():
        # Warm the shared-object cache concurrently; the build step
        # below then loads the cached .so without re-invoking cc.
        # Candidates whose *compilation* fails are reported one at a
        # time below, so a bad apple here must not abort the batch.
        try:
            precompile_sources([routine.source for routine in routines],
                               jobs=jobs)
        except ccompile.CCompileError:
            pass

    def measure_one(index: int, routine: CompiledRoutine) -> Measurement:
        if _use_sandbox(sandbox, routine):
            return _measure_sandboxed(
                routine, formulas[index], sandbox=sandbox,
                quarantine=quarantine, min_time=min_time, repeats=repeats,
            )
        executable = build_executable(routine)
        seconds = time_callable(executable.timer_closure(),
                                min_time=min_time, repeats=repeats)
        return Measurement(formula=formulas[index], routine=routine,
                           executable=executable, seconds=seconds)

    return map_indexed(routines, measure_one, jobs=jobs)
