"""Compile-and-time one formula candidate.

The measurement path is: SPL compiler (straight-line or looped code)
-> C backend -> host C compiler at -O3 -> ctypes -> best-of timing.
When no C compiler is available the Python backend is timed instead
(relative comparisons between candidates remain meaningful).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.compiler import CompiledRoutine, SplCompiler
from repro.core.nodes import Formula
from repro.perfeval.runner import ExecutableRoutine, build_executable
from repro.perfeval.timing import pseudo_mflops, time_callable


@dataclass
class Measurement:
    """One timed candidate."""

    formula: Formula
    routine: CompiledRoutine
    executable: ExecutableRoutine
    seconds: float

    @property
    def mflops(self) -> float:
        return pseudo_mflops(self.routine.in_size, self.seconds)


def measure_formula(compiler: SplCompiler, formula: Formula, name: str, *,
                    min_time: float = 0.005,
                    repeats: int = 2) -> Measurement:
    """Compile ``formula`` with ``compiler`` and time it."""
    routine = compiler.compile_formula(formula, name, language="c")
    executable = build_executable(routine)
    seconds = time_callable(executable.timer_closure(),
                            min_time=min_time, repeats=repeats)
    return Measurement(formula=formula, routine=routine,
                       executable=executable, seconds=seconds)
