"""Crash-tolerant distributed work queue for plan-key measurement.

The search is the expensive offline half of the system (§4: every
candidate formula is compiled and *executed* to be timed), and PR 4
already isolates one measurement in a forked sandbox.  This module
scales that out: a coordinator fans measurement tasks over a pool of
forked workers and survives every failure mode a hostile candidate or
an unlucky host can produce:

* **Leases** — a task handed to a worker is *leased*, not gone.  A
  worker that dies (segfault, OOM kill, chaos SIGKILL), wedges past
  the lease timeout, or stops heartbeating is SIGKILLed and its task
  is reclaimed and re-queued under exponential backoff.
* **Poison cap** — a task that repeatedly kills workers is not retried
  forever: after ``max_attempts`` total attempts it is quarantined as
  a structured :class:`~repro.perfeval.sandbox.CandidateFailure`
  (exactly like PR 4's in-process quarantine), and the queue moves on.
* **Journal** — every completed result is appended to a checksummed,
  append-only JSONL journal *before* it is surfaced, so a coordinator
  crash (or Ctrl-C) loses nothing: a restarted run replays the
  journal, counts the replays, and resumes from the remaining keys.
  Corrupt or truncated journal lines (a crash mid-append, bit rot) are
  skipped and counted, never fatal.
* **Exactly-once results** — a lease reclaimed from a worker that had
  in fact finished (the race is unavoidable) can produce a second
  completion; the coordinator keeps the first and counts the
  duplicate, so downstream consumers never see a key twice.

The worker body is deliberately dumb: receive a task, run
``task_fn(payload)``, send the result, heartbeat from a side thread
while running.  Anything smart — retries, quarantine, persistence —
lives in the coordinator, where a bug cannot be killed by a segfault.

Chaos: :class:`SearchChaos` (env ``SPL_SEARCH_CHAOS``, e.g.
``kill=0.3,seed=7``) makes workers SIGKILL themselves immediately
before executing a doomed task's first attempt — deterministic per
(key, seed), so an injected kill is always retried into a success and
an end-to-end run still converges.
"""

from __future__ import annotations

import collections
import hashlib
import json
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.perfeval.sandbox import (
    CandidateFailure,
    Quarantine,
    default_quarantine,
)

#: Environment variable carrying the search chaos spec (mirrors the
#: serving fleet's ``SPL_CHAOS`` convention).
SEARCH_CHAOS_ENV = "SPL_SEARCH_CHAOS"

_STOP = ("stop",)


def queue_supported() -> bool:
    """Forked-worker fan-out needs a POSIX fork; mirrors the sandbox."""
    if os.name != "posix" or not hasattr(os, "fork"):
        return False
    try:
        import multiprocessing

        return "fork" in multiprocessing.get_all_start_methods()
    except ImportError:  # pragma: no cover
        return False


# ---------------------------------------------------------------------------
# Chaos injection.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SearchChaos:
    """Deterministic worker-kill injection for the search queue.

    ``kill_rate`` of task keys are doomed: a worker about to execute
    such a key SIGKILLs itself instead — but only for the first
    ``kill_attempts`` attempts of that key, so the lease/retry
    machinery always converges.  The doomed set is a pure function of
    (key, seed): every worker, every restart, every test run agrees on
    which keys die, which is what makes "distributed equals serial"
    assertable under injected faults.
    """

    kill_rate: float = 0.0
    kill_attempts: int = 1
    seed: int = 0

    @property
    def enabled(self) -> bool:
        return self.kill_rate > 0

    def should_kill(self, key: str, attempt: int) -> bool:
        if not self.enabled or attempt > self.kill_attempts:
            return False
        digest = hashlib.sha256(f"{self.seed}:{key}".encode()).digest()
        draw = int.from_bytes(digest[:4], "big") / 2 ** 32
        return draw < self.kill_rate

    @classmethod
    def from_spec(cls, spec: str) -> "SearchChaos":
        """Parse ``kill=RATE[,attempts=N][,seed=N]`` (typos raise)."""
        kill_rate = 0.0
        kill_attempts = 1
        seed = 0
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            if not sep:
                raise ValueError(
                    f"bad search-chaos element {part!r} (want key=value)")
            try:
                if key == "kill":
                    kill_rate = float(value)
                elif key == "attempts":
                    kill_attempts = int(value)
                elif key == "seed":
                    seed = int(value)
                else:
                    raise ValueError(f"unknown search-chaos key {key!r}")
            except ValueError as exc:
                raise ValueError(
                    f"bad search-chaos element {part!r}: {exc}") from None
        if not 0 <= kill_rate <= 1:
            raise ValueError(
                f"search-chaos kill rate must be in [0, 1], got {kill_rate}")
        return cls(kill_rate=kill_rate, kill_attempts=kill_attempts,
                   seed=seed)

    def to_spec(self) -> str:
        return (f"kill={self.kill_rate},attempts={self.kill_attempts},"
                f"seed={self.seed}")

    @classmethod
    def from_env(cls, environ=os.environ) -> "SearchChaos | None":
        spec = environ.get(SEARCH_CHAOS_ENV, "").strip()
        if not spec:
            return None
        return cls.from_spec(spec)


# ---------------------------------------------------------------------------
# The journal.
# ---------------------------------------------------------------------------


def _record_checksum(key: str, result: Any) -> str:
    canonical = json.dumps({"key": key, "result": result},
                           sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


@dataclass
class JournalReplay:
    """What :meth:`TaskJournal.replay` recovered from disk."""

    results: dict[str, Any] = field(default_factory=dict)
    corrupt_lines: int = 0  # bad JSON / failed checksum (truncation)
    duplicate_keys: int = 0  # later lines for an already-seen key


class TaskJournal:
    """Append-only, per-line-checksummed completion log.

    One JSON object per line: ``{"key", "result", "sha"}`` where
    ``sha`` covers the canonical rendering of key+result.  Appends are
    flushed line-at-a-time, so a coordinator killed mid-run loses at
    most the line being written — and that line fails its checksum (or
    does not parse) on replay and is skipped, never trusted.  The file
    is only ever appended to; dedup on replay keeps the *first* record
    for a key, so a journal assembled across crashes and restarts
    still yields exactly one result per key.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self.appends = 0
        self.append_errors = 0

    def replay(self) -> JournalReplay:
        """Recover completed results; never raises for a damaged file."""
        replay = JournalReplay()
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return replay
        except (OSError, UnicodeDecodeError):
            replay.corrupt_lines += 1
            return replay
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                key = record["key"]
                result = record["result"]
                sha = record["sha"]
            except (json.JSONDecodeError, KeyError, TypeError):
                replay.corrupt_lines += 1
                continue
            if not isinstance(key, str) or sha != _record_checksum(
                    key, result):
                replay.corrupt_lines += 1
                continue
            if key in replay.results:
                replay.duplicate_keys += 1
                continue
            replay.results[key] = result
        return replay

    def append(self, key: str, result: Any) -> bool:
        """Durably record one completion (False on an unwritable path).

        Failure to journal must never lose the in-memory result or
        abort the run — it just means a crash after this point would
        re-measure the key.
        """
        record = {"key": key, "result": result,
                  "sha": _record_checksum(key, result)}
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                handle.flush()
            self.appends += 1
            return True
        except (OSError, TypeError, ValueError):
            self.append_errors += 1
            return False


# ---------------------------------------------------------------------------
# Policy + outcome types.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class QueuePolicy:
    """Knobs governing one coordinator run.

    ``lease_timeout_s`` bounds one attempt's wall clock (a wedged task
    is killed past it); ``heartbeat_timeout_s`` catches a frozen
    worker *process* much sooner (its heartbeat thread goes silent
    even though the lease has time left).  ``max_attempts`` is the
    poison cap: total attempts per key, after which the key is
    quarantined instead of retried.
    """

    workers: int = 2
    lease_timeout_s: float = 30.0
    heartbeat_interval_s: float = 0.1
    heartbeat_timeout_s: float = 5.0
    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 2.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")

    def backoff_s(self, attempts: int) -> float:
        """Delay before re-queueing after the ``attempts``-th failure."""
        k = max(1, attempts)
        return min(self.backoff_max_s,
                   self.backoff_base_s * self.backoff_multiplier ** (k - 1))


@dataclass
class QueueOutcome:
    """Everything one :meth:`TaskQueueCoordinator.run` produced."""

    results: dict[str, Any] = field(default_factory=dict)
    failures: dict[str, CandidateFailure] = field(default_factory=dict)
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def completed(self) -> int:
        return len(self.results)


# ---------------------------------------------------------------------------
# The worker body.
# ---------------------------------------------------------------------------


def _worker_main(conn, task_fn: Callable[[dict], Any],
                 heartbeat_interval: float,
                 chaos: SearchChaos | None) -> None:
    """Receive tasks, run them, heartbeat while running, report.

    Runs in a forked child.  ``conn`` sends are serialized by a lock
    (the heartbeat thread and the task loop share the pipe).  A task
    whose ``task_fn`` raises reports a ``fail`` message — the
    coordinator decides whether to retry; a task that crashes the
    process reports nothing, which the coordinator observes as EOF.
    """
    for signum in (signal.SIGTERM, signal.SIGINT, signal.SIGHUP):
        try:
            signal.signal(signum, signal.SIG_DFL)
        except (OSError, ValueError):  # pragma: no cover
            pass
    send_lock = threading.Lock()

    def send(message: tuple) -> bool:
        with send_lock:
            try:
                conn.send(message)
                return True
            except (OSError, ValueError, BrokenPipeError):
                return False

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return  # coordinator is gone: die quietly
        if message[0] == "stop":
            return
        _, key, payload, attempt = message
        if chaos is not None and chaos.should_kill(key, attempt):
            os.kill(os.getpid(), signal.SIGKILL)
        done = threading.Event()

        def beat(task_key: str = key) -> None:
            while not done.wait(heartbeat_interval):
                if not send(("beat", task_key)):
                    return

        beater = threading.Thread(target=beat, daemon=True)
        beater.start()
        try:
            result = task_fn(payload)
        except BaseException as exc:  # noqa: BLE001 - reported, not raised
            done.set()
            sent = send(("fail", key, type(exc).__name__, str(exc)[:500]))
        else:
            done.set()
            sent = send(("done", key, result))
        finally:
            done.set()
            beater.join(timeout=1.0)
        if not sent:
            return


# ---------------------------------------------------------------------------
# The coordinator.
# ---------------------------------------------------------------------------


@dataclass
class _Worker:
    """Coordinator-side state for one forked worker."""

    proc: Any
    conn: Any
    key: str | None = None  # leased task, None when idle
    leased_at: float = 0.0
    last_beat: float = 0.0

    @property
    def idle(self) -> bool:
        return self.key is None


class TaskQueueCoordinator:
    """Fan tasks over forked workers; lease, journal, retry, quarantine.

    ``task_fn(payload) -> result`` runs inside the worker process and
    must return something JSON-serializable (the journal stores it
    verbatim).  A raising ``task_fn`` counts as a failed attempt and
    is retried under backoff like a crash; code that wants a failure
    to be a *terminal data point* (e.g. "this candidate does not
    compile") should catch its own exceptions and return a structured
    result instead.
    """

    def __init__(self, task_fn: Callable[[dict], Any], *,
                 policy: QueuePolicy | None = None,
                 journal: TaskJournal | None = None,
                 quarantine: Quarantine | None = None,
                 chaos: SearchChaos | None = None):
        if not queue_supported():
            raise RuntimeError(
                "distributed search needs POSIX fork "
                "(use the serial search here)")
        self.task_fn = task_fn
        self.policy = policy or QueuePolicy()
        self.journal = journal
        self.quarantine = (quarantine if quarantine is not None
                           else default_quarantine())
        self.chaos = chaos if chaos is not None else SearchChaos.from_env()
        self.stats: dict[str, int] = collections.defaultdict(int)

    # -- worker lifecycle ----------------------------------------------

    def _spawn_worker(self) -> _Worker:
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, self.task_fn,
                  self.policy.heartbeat_interval_s, self.chaos),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self.stats["workers_spawned"] += 1
        now = time.monotonic()
        return _Worker(proc=proc, conn=parent_conn, last_beat=now)

    def _kill_worker(self, worker: _Worker) -> None:
        try:
            if worker.proc.pid is not None:
                os.kill(worker.proc.pid, signal.SIGKILL)
        except (ProcessLookupError, OSError):
            pass
        worker.proc.join(5.0)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass

    def _stop_worker(self, worker: _Worker) -> None:
        try:
            worker.conn.send(_STOP)
        except (OSError, ValueError, BrokenPipeError):
            pass
        worker.proc.join(1.0)
        if worker.proc.is_alive():
            self._kill_worker(worker)
        else:
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass

    # -- the run -------------------------------------------------------

    def run(self, tasks: dict[str, dict]) -> QueueOutcome:
        """Execute every task exactly once; blocks until all settle.

        ``tasks`` maps stable string keys to JSON-serializable
        payloads.  Keys already completed in the journal are replayed
        without running anything; keys already quarantined return
        their remembered failure.  The outcome holds one entry per
        key — in ``results`` or in ``failures`` — with zero losses and
        zero duplicates by construction.
        """
        outcome = QueueOutcome()
        policy = self.policy
        pending: collections.deque[str] = collections.deque()
        attempts: dict[str, int] = {key: 0 for key in tasks}
        # Last observed failure cause per key, so the eventual
        # CandidateFailure names the real reason, not a generic one.
        last_cause: dict[str, tuple[str, str]] = {}
        ready_at: dict[str, float] = {}

        if self.journal is not None:
            replay = self.journal.replay()
            self.stats["journal_corrupt_lines"] += replay.corrupt_lines
            self.stats["journal_duplicates"] += replay.duplicate_keys
            for key in tasks:
                if key in replay.results:
                    outcome.results[key] = replay.results[key]
                    self.stats["journal_replayed"] += 1
        for key in tasks:
            if key in outcome.results:
                continue
            known = self.quarantine.check(key)
            if known is not None:
                outcome.failures[key] = known
                self.stats["quarantine_skips"] += 1
                continue
            pending.append(key)
        self.stats["tasks_total"] += len(tasks)

        if not pending:
            outcome.stats = dict(self.stats)
            return outcome

        workers = [self._spawn_worker()
                   for _ in range(min(policy.workers, len(pending)))]

        def settle_poison(key: str) -> None:
            kind, detail = last_cause.get(key, ("crash", "worker lost"))
            failure = CandidateFailure(
                kind=kind, plan_key=key, detail=detail,
                attempts=attempts[key])
            self.quarantine.add(failure)
            outcome.failures[key] = failure
            self.stats["poisoned"] += 1

        def retry_or_poison(key: str) -> None:
            if attempts[key] >= policy.max_attempts:
                settle_poison(key)
            else:
                ready_at[key] = (time.monotonic()
                                 + policy.backoff_s(attempts[key]))
                pending.append(key)
                self.stats["retries"] += 1

        def reclaim(worker: _Worker, *, reason: str) -> None:
            key, worker.key = worker.key, None
            if key is None or key in outcome.results:
                return
            self.stats[f"reclaims_{reason}"] += 1
            last_cause.setdefault(
                key, ("hang" if reason in ("wedged", "silent") else "crash",
                      f"worker lost ({reason})"))
            retry_or_poison(key)

        def replace(worker: _Worker) -> None:
            workers[workers.index(worker)] = self._spawn_worker()

        def drain(worker: _Worker) -> None:
            """Consume every queued message from one worker pipe."""
            while True:
                try:
                    if not worker.conn.poll(0):
                        return
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    # Worker died: crash, chaos SIGKILL, rlimit, OOM.
                    self.stats["worker_deaths"] += 1
                    self._kill_worker(worker)
                    reclaim(worker, reason="dead")
                    replace(worker)
                    return
                kind = message[0]
                if kind == "beat":
                    worker.last_beat = time.monotonic()
                elif kind == "done":
                    _, key, result = message
                    if worker.key == key:
                        worker.key = None
                    if key in outcome.results:
                        # A reclaimed lease finished anyway: keep the
                        # first result, count the duplicate.
                        self.stats["duplicates_ignored"] += 1
                        continue
                    if key not in attempts:
                        continue  # stale message for an unknown key
                    outcome.results[key] = result
                    outcome.failures.pop(key, None)
                    if self.journal is not None:
                        self.journal.append(key, result)
                    self.stats["completed"] += 1
                elif kind == "fail":
                    _, key, exc_type, detail = message
                    if worker.key == key:
                        worker.key = None
                    if key in outcome.results or key not in attempts:
                        self.stats["duplicates_ignored"] += 1
                        continue
                    self.stats["task_errors"] += 1
                    last_cause[key] = ("error", f"{exc_type}: {detail}")
                    retry_or_poison(key)

        def outstanding() -> int:
            running = sum(1 for w in workers if not w.idle)
            return len(pending) + running

        import multiprocessing.connection as mpc

        try:
            while outstanding() > 0:
                now = time.monotonic()
                # Assign ready tasks to idle workers.
                for worker in workers:
                    if not worker.idle or not pending:
                        continue
                    key = None
                    for _ in range(len(pending)):
                        candidate = pending.popleft()
                        if now >= ready_at.get(candidate, 0.0):
                            key = candidate
                            break
                        pending.append(candidate)
                    if key is None:
                        break  # everything pending is backing off
                    attempts[key] += 1
                    worker.key = key
                    worker.leased_at = now
                    worker.last_beat = now
                    try:
                        worker.conn.send(
                            ("task", key, tasks[key], attempts[key]))
                    except (OSError, ValueError, BrokenPipeError):
                        # Worker died between assignments.
                        self.stats["worker_deaths"] += 1
                        self._kill_worker(worker)
                        reclaim(worker, reason="dead")
                        replace(worker)
                # Wait for messages or the next deadline.
                timeout = self._poll_timeout(workers, pending, ready_at)
                conns = [w.conn for w in workers]
                try:
                    ready = mpc.wait(conns, timeout)
                except OSError:  # pragma: no cover - torn-down conn
                    ready = []
                for conn in ready:
                    match = [w for w in workers if w.conn is conn]
                    if match:
                        drain(match[0])
                # Lease and heartbeat enforcement.
                now = time.monotonic()
                for worker in list(workers):
                    if worker.idle:
                        continue
                    over_lease = (now - worker.leased_at
                                  > policy.lease_timeout_s)
                    silent = (now - worker.last_beat
                              > policy.heartbeat_timeout_s)
                    if over_lease or silent:
                        self.stats["workers_killed"] += 1
                        self._kill_worker(worker)
                        reclaim(worker,
                                reason="wedged" if over_lease else "silent")
                        replace(worker)
        finally:
            for worker in workers:
                self._stop_worker(worker)
        outcome.stats = dict(self.stats)
        return outcome

    def _poll_timeout(self, workers: list[_Worker],
                      pending: collections.deque,
                      ready_at: dict[str, float]) -> float:
        now = time.monotonic()
        horizon = now + 0.5
        for worker in workers:
            if not worker.idle:
                horizon = min(
                    horizon,
                    worker.leased_at + self.policy.lease_timeout_s,
                    worker.last_beat + self.policy.heartbeat_timeout_s,
                )
        for key in pending:
            if key in ready_at:
                horizon = min(horizon, ready_at[key])
        return max(0.01, horizon - now)
