"""repro.serve — the asyncio transform service.

An inference-server-style front-end over the SPL runtime: requests
arrive on a length-prefixed socket protocol, are routed by
``(transform, n, dtype)`` to per-plan batch dispatchers, admitted
through bounded queues with deadline-aware shedding, and executed on
circuit-breaker-guarded compiled backends.  See ``docs/serving.md``.
"""

from repro.serve.admission import AdmissionController, AdmissionStats
from repro.serve.client import AsyncSplClient, SplClient
from repro.serve.errors import (
    BadRequest,
    DeadlineExceeded,
    Overloaded,
    ServeError,
    Unavailable,
)
from repro.serve.loadgen import (
    LoadReport,
    WorkloadSpec,
    mixed_fft_specs,
    run_load,
    run_load_sync,
)
from repro.serve.plans import Plan, PlanKey, PlanRegistry
from repro.serve.server import PlanService, Router, SplServer

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "AsyncSplClient",
    "BadRequest",
    "DeadlineExceeded",
    "LoadReport",
    "Overloaded",
    "Plan",
    "PlanKey",
    "PlanRegistry",
    "PlanService",
    "Router",
    "ServeError",
    "SplClient",
    "SplServer",
    "Unavailable",
    "WorkloadSpec",
    "mixed_fft_specs",
    "run_load",
    "run_load_sync",
]
