"""repro.serve — the asyncio transform service.

An inference-server-style front-end over the SPL runtime: requests
arrive on a length-prefixed socket protocol, are routed by
``(transform, n, dtype)`` to per-plan batch dispatchers, admitted
through bounded queues with deadline-aware shedding, and executed on
circuit-breaker-guarded compiled backends.  ``spl serve --workers N``
runs a supervised multi-process fleet (crash recovery, graceful
drain, rolling restart); clients retry retryable failures under a
jittered-backoff policy with a retry budget.  See
``docs/serving.md``.
"""

from repro.serve.admission import AdmissionController, AdmissionStats
from repro.serve.chaos import (
    ChaosConfig,
    ChaosInjector,
    ChaosReport,
    FleetProcess,
    fleet_supported,
    run_chaos,
)
from repro.serve.client import (
    AsyncSplClient,
    ResilientAsyncClient,
    SplClient,
)
from repro.serve.errors import (
    BadRequest,
    DeadlineExceeded,
    Overloaded,
    ServeError,
    SplTimeout,
    Unavailable,
)
from repro.serve.loadgen import (
    LoadReport,
    WorkloadSpec,
    mixed_fft_specs,
    run_load,
    run_load_sync,
)
from repro.serve.plans import Plan, PlanKey, PlanRegistry
from repro.serve.retry import RetryBudget, RetryPolicy, call_with_retry
from repro.serve.server import PlanService, Router, SplServer
from repro.serve.supervisor import (
    BackoffPolicy,
    RestartBudget,
    ServeConfig,
    Supervisor,
    fork_supported,
    run_worker,
)

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "AsyncSplClient",
    "BackoffPolicy",
    "BadRequest",
    "ChaosConfig",
    "ChaosInjector",
    "ChaosReport",
    "DeadlineExceeded",
    "FleetProcess",
    "LoadReport",
    "Overloaded",
    "Plan",
    "PlanKey",
    "PlanRegistry",
    "PlanService",
    "ResilientAsyncClient",
    "RestartBudget",
    "RetryBudget",
    "RetryPolicy",
    "Router",
    "ServeConfig",
    "ServeError",
    "SplClient",
    "SplServer",
    "SplTimeout",
    "Supervisor",
    "Unavailable",
    "WorkloadSpec",
    "call_with_retry",
    "fleet_supported",
    "fork_supported",
    "mixed_fft_specs",
    "run_chaos",
    "run_load",
    "run_load_sync",
    "run_worker",
]
