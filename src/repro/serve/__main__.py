"""``python -m repro.serve`` / ``spl serve`` — run the server.

Examples::

    spl serve --port 7462 --warm fft:64 fft:1024
    spl serve --wisdom wisdom.json --warm fft:64 --max-delay-ms 1

``--warm`` prebuilds routes at boot; with ``--wisdom`` pointing at a
store produced by ``spl-compile --search --wisdom ...`` the warmed
plans replay the search winners (hot boot) instead of the default
factorization.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.serve.plans import PlanKey, PlanRegistry
from repro.serve.protocol import DTYPES
from repro.serve.server import Router, SplServer
from repro.wisdom.store import WisdomStore


def _parse_warm_spec(spec: str) -> PlanKey:
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise argparse.ArgumentTypeError(
            f"bad warm spec {spec!r} (want transform:n[:dtype])")
    transform, n_text = parts[0], parts[1]
    try:
        n = int(n_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad size in warm spec {spec!r}") from None
    if len(parts) == 3:
        dtype = parts[2]
    else:
        dtype = "float64" if transform == "wht" else "complex128"
    if dtype not in DTYPES:
        raise argparse.ArgumentTypeError(
            f"bad dtype in warm spec {spec!r}")
    return PlanKey(transform=transform, n=n, dtype=dtype)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="spl serve",
        description="Serve SPL transforms over the batch dispatcher.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7462,
                        help="0 picks an ephemeral port")
    parser.add_argument("--warm", nargs="*", type=_parse_warm_spec,
                        default=[], metavar="TRANSFORM:N[:DTYPE]",
                        help="routes to prebuild before accepting "
                             "connections, e.g. fft:64 wht:256")
    parser.add_argument("--wisdom", default=None, metavar="PATH",
                        help="wisdom store to boot plans from")
    parser.add_argument("--prefer", default=None,
                        choices=["cjit", "c", "numpy", "python"],
                        help="backend chain head (default: cjit when "
                             "the in-process JIT is available, else c "
                             "if a compiler is available)")
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--max-delay-ms", type=float, default=2.0,
                        help="per-request coalescing latency bound")
    parser.add_argument("--queue-limit", type=int, default=256,
                        help="per-plan in-flight bound (overload "
                             "rejections beyond it)")
    parser.add_argument("--threads", type=int, default=None,
                        help="OpenMP threads per batch call")
    return parser


async def _run(args: argparse.Namespace) -> int:
    wisdom = WisdomStore(args.wisdom) if args.wisdom else None
    registry = PlanRegistry(prefer=args.prefer, wisdom=wisdom)
    router = Router(
        registry,
        max_batch=args.max_batch,
        max_delay=args.max_delay_ms / 1e3,
        queue_limit=args.queue_limit,
        threads=args.threads,
    )
    server = SplServer(router, host=args.host, port=args.port,
                       warm=args.warm)
    host, port = await server.start()
    warmed = ", ".join(k.describe() for k in args.warm) or "none"
    print(f"spl serve: listening on {host}:{port} "
          f"(prefer={registry.prefer}, warmed: {warmed})",
          file=sys.stderr)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(_run(args))
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
