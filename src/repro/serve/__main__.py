"""``python -m repro.serve`` / ``spl serve`` — run the server.

Examples::

    spl serve --port 7462 --warm fft:64 fft:1024
    spl serve --wisdom wisdom.json --warm fft:64 --max-delay-ms 1
    spl serve --port 7462 --workers 4 --warm fft:64

``--warm`` prebuilds routes at boot; with ``--wisdom`` pointing at a
store produced by ``spl-compile --search --wisdom ...`` the warmed
plans replay the search winners (hot boot) instead of the default
factorization.

``--workers N`` (N >= 2) runs a supervised fleet: N forked worker
processes share the port via ``SO_REUSEPORT``, crashed workers are
restarted under backoff and a restart budget, SIGTERM drains the
fleet gracefully and SIGHUP performs a rolling restart.  See
``docs/serving.md`` ("Running a fleet").  In every mode SIGTERM and
SIGINT trigger a graceful drain: stop accepting, answer everything
already admitted, then exit.
"""

from __future__ import annotations

import argparse
import sys

from repro.serve.plans import PlanKey
from repro.serve.protocol import DTYPES
from repro.serve.supervisor import (
    BackoffPolicy,
    RestartBudget,
    ServeConfig,
    Supervisor,
    fork_supported,
    run_worker,
)


def _parse_warm_spec(spec: str) -> PlanKey:
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise argparse.ArgumentTypeError(
            f"bad warm spec {spec!r} (want transform:n[:dtype])")
    transform, n_text = parts[0], parts[1]
    try:
        n = int(n_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad size in warm spec {spec!r}") from None
    if len(parts) == 3:
        dtype = parts[2]
    else:
        dtype = "float64" if transform == "wht" else "complex128"
    if dtype not in DTYPES:
        raise argparse.ArgumentTypeError(
            f"bad dtype in warm spec {spec!r}")
    return PlanKey(transform=transform, n=n, dtype=dtype)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="spl serve",
        description="Serve SPL transforms over the batch dispatcher.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7462,
                        help="0 picks an ephemeral port")
    parser.add_argument("--warm", nargs="*", type=_parse_warm_spec,
                        default=[], metavar="TRANSFORM:N[:DTYPE]",
                        help="routes to prebuild before accepting "
                             "connections, e.g. fft:64 wht:256")
    parser.add_argument("--wisdom", default=None, metavar="PATH",
                        help="wisdom store to boot plans from")
    parser.add_argument("--pack", default=None, metavar="PATH",
                        help="read-only wisdom pack (spl pack build) "
                             "to boot plans from; preferred over "
                             "--wisdom, degrades gracefully when the "
                             "pack is corrupt or foreign")
    parser.add_argument("--prefer", default=None,
                        choices=["cjit", "c", "numpy", "python"],
                        help="backend chain head (default: cjit when "
                             "the in-process JIT is available, else c "
                             "if a compiler is available)")
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--max-delay-ms", type=float, default=2.0,
                        help="per-request coalescing latency bound")
    parser.add_argument("--queue-limit", type=int, default=256,
                        help="per-plan in-flight bound (overload "
                             "rejections beyond it)")
    parser.add_argument("--threads", type=int, default=None,
                        help="OpenMP threads per batch call")
    fleet = parser.add_argument_group("fleet (supervised serving)")
    fleet.add_argument("--workers", type=int, default=1,
                       help="worker processes; >= 2 runs the "
                            "supervisor with SO_REUSEPORT workers "
                            "(default: 1, single process)")
    fleet.add_argument("--drain-grace-s", type=float, default=30.0,
                       help="seconds a draining worker may spend "
                            "finishing admitted requests")
    fleet.add_argument("--restart-budget", type=int, default=6,
                       help="max worker restarts per window before "
                            "the supervisor degrades the fleet")
    fleet.add_argument("--restart-window-s", type=float, default=30.0,
                       help="sliding window for --restart-budget")
    fleet.add_argument("--heartbeat-timeout-s", type=float,
                       default=5.0,
                       help="silent-worker threshold before a wedge "
                            "kill")
    fleet.add_argument("--port-file", default=None, metavar="PATH",
                       help="write 'host:port' here once listening "
                            "(useful with --port 0)")
    fleet.add_argument("--status-file", default=None, metavar="PATH",
                       help="atomically rewrite this file with the "
                            "supervisor's status() JSON on every "
                            "fleet state change")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.workers < 1:
        print("spl serve: --workers must be >= 1", file=sys.stderr)
        return 2
    config = ServeConfig(
        host=args.host,
        port=args.port,
        warm=tuple(args.warm),
        wisdom_path=args.wisdom,
        pack_path=args.pack,
        prefer=args.prefer,
        max_batch=args.max_batch,
        max_delay=args.max_delay_ms / 1e3,
        queue_limit=args.queue_limit,
        threads=args.threads,
        drain_grace_s=args.drain_grace_s,
    )
    try:
        if args.workers == 1:
            return run_worker(config, port_file=args.port_file)
        if not fork_supported():
            print("spl serve: --workers needs fork, SIGCHLD and "
                  "SO_REUSEPORT; falling back to a single process",
                  file=sys.stderr)
            return run_worker(config, port_file=args.port_file)
        supervisor = Supervisor(
            config,
            workers=args.workers,
            heartbeat_timeout=args.heartbeat_timeout_s,
            backoff=BackoffPolicy(),
            budget=RestartBudget(budget=args.restart_budget,
                                 window_s=args.restart_window_s),
            port_file=args.port_file,
            status_file=args.status_file,
        )
        return supervisor.run()
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
