"""Admission control: bounded queues and deadline-aware shedding.

Every plan route has its own :class:`AdmissionController`.  The policy
is the standard serving ladder, applied *before* a request touches the
dispatcher:

1. **Expired deadline** — a request whose deadline has already passed
   is shed with a ``deadline`` rejection: executing it would burn
   backend time on an answer nobody is waiting for.
2. **Predicted miss** — with an observed service-time EWMA, a request
   whose remaining budget is smaller than the predicted wait
   (``ewma x (1 + inflight / batch_hint)`` — every ``batch_hint``
   queued requests add roughly one more batch in front of it) is shed
   the same way.  Prediction only ever *sheds*; it never admits a
   request the queue bound would reject.
3. **Bounded queue** — at most ``queue_limit`` requests may be
   in flight (admitted and unresolved) per plan; the next one is
   rejected with a typed ``overload`` error carrying the depth.  This
   is the 429 analog that keeps latency bounded under overload
   instead of letting the queue (and every caller's wait) grow
   without limit.

Everything is O(1) per request under one small lock; counters are
exposed for the ``stats`` op and the serving benchmark.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace

from repro.serve.errors import DeadlineExceeded, Overloaded


@dataclass
class AdmissionStats:
    """Counters for one plan's admission controller."""

    admitted: int = 0
    completed: int = 0
    failed: int = 0  # admitted but resolved with an error
    rejected_overload: int = 0  # bounded-queue rejections
    shed_deadline: int = 0  # expired or predicted-miss sheds
    peak_inflight: int = 0
    ewma_service_s: float = 0.0  # smoothed per-request service time


class AdmissionController:
    """Per-plan bounded admission with deadline-aware shedding."""

    def __init__(self, *, queue_limit: int = 256,
                 batch_hint: int = 64, ewma_alpha: float = 0.1):
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.queue_limit = int(queue_limit)
        self.batch_hint = max(1, int(batch_hint))
        self.ewma_alpha = float(ewma_alpha)
        self._lock = threading.Lock()
        self._inflight = 0
        self._ewma: float | None = None
        self._stats = AdmissionStats()

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def try_admit(self, now: float,
                  deadline: float | None = None) -> None:
        """Admit one request or raise a typed rejection.

        ``now``/``deadline`` are ``time.monotonic()`` values.  On
        success the caller *must* later call :meth:`complete` exactly
        once, whatever the outcome.
        """
        with self._lock:
            if deadline is not None:
                if now >= deadline:
                    self._stats.shed_deadline += 1
                    raise DeadlineExceeded(
                        "deadline expired before admission")
                if self._ewma is not None:
                    predicted = self._ewma * (
                        1.0 + self._inflight / self.batch_hint
                    )
                    if now + predicted >= deadline:
                        self._stats.shed_deadline += 1
                        raise DeadlineExceeded(
                            f"predicted wait {predicted * 1e3:.1f}ms "
                            f"exceeds the remaining deadline budget"
                        )
            if self._inflight >= self.queue_limit:
                self._stats.rejected_overload += 1
                raise Overloaded(
                    f"plan queue full ({self._inflight} in flight)",
                    queue_depth=self._inflight,
                    queue_limit=self.queue_limit,
                )
            self._inflight += 1
            self._stats.admitted += 1
            self._stats.peak_inflight = max(self._stats.peak_inflight,
                                            self._inflight)

    def complete(self, started: float, now: float, *,
                 ok: bool = True) -> None:
        """Release one admitted slot and fold its service time into
        the EWMA (failures release the slot but do not pollute the
        service-time estimate)."""
        with self._lock:
            self._inflight = max(0, self._inflight - 1)
            if ok:
                self._stats.completed += 1
                sample = max(0.0, now - started)
                if self._ewma is None:
                    self._ewma = sample
                else:
                    alpha = self.ewma_alpha
                    self._ewma = alpha * sample + (1 - alpha) * self._ewma
                self._stats.ewma_service_s = self._ewma
            else:
                self._stats.failed += 1

    def stats(self) -> AdmissionStats:
        with self._lock:
            snapshot = replace(self._stats)
            return snapshot
