"""Chaos fault injection for the serving fleet.

Resilience claims that are never exercised are fiction, so this
module makes the failure modes injectable and the recovery assertions
runnable:

* **worker SIGKILL** — the harness kills a live worker process
  mid-load; the supervisor must restart it and the client retry layer
  must mask the gap;
* **stalled responses** — a worker holds a finished response for
  ``stall_s`` seconds; the client per-request timeout must fire
  instead of hanging the caller;
* **truncated frames** — a worker writes half a response frame and
  hangs up; the client must classify it as a connection loss and
  retry elsewhere;
* **forced breaker trips** — a plan's circuit breaker is tripped
  mid-load, degrading the backend a tier; answers must stay correct.

Server-side injection is armed by the ``SPL_CHAOS`` environment
variable (so it crosses the fork into supervised workers), e.g.::

    SPL_CHAOS="stall=0.01:2.0,truncate=0.005,trip=0.002,seed=7"

``rate`` values are per-response probabilities.  Everything is off by
default: an unset/empty ``SPL_CHAOS`` means zero injection and zero
overhead.

:func:`run_chaos` is the harness: it boots a real supervised fleet
(``spl serve --workers N`` in a subprocess), drives it with an
open-loop arrival schedule through reconnecting/retrying clients,
SIGKILLs workers at configured times, **verifies every completed
transform against the numpy oracle**, and reports availability —
overall and after the restart/backoff recovery window.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import random
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field

import numpy as np

from repro.serve.errors import ServeError
from repro.serve.retry import RetryBudget, RetryPolicy

#: Environment variable carrying the server-side injection spec.
CHAOS_ENV = "SPL_CHAOS"


@dataclass(frozen=True)
class ChaosConfig:
    """Parsed server-side injection rates (all off by default)."""

    stall_rate: float = 0.0
    stall_s: float = 1.0
    truncate_rate: float = 0.0
    trip_rate: float = 0.0
    seed: int = 0

    @property
    def enabled(self) -> bool:
        return (self.stall_rate > 0 or self.truncate_rate > 0
                or self.trip_rate > 0)

    @classmethod
    def from_spec(cls, spec: str) -> "ChaosConfig":
        """Parse ``stall=RATE[:SECONDS],truncate=RATE,trip=RATE``.

        Unknown keys raise — a typo'd chaos spec silently injecting
        nothing would report fake resilience.
        """
        values: dict[str, float] = {}
        stall_s = 1.0
        seed = 0
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"bad chaos element {part!r} "
                                 f"(want key=value)")
            key, _, value = part.partition("=")
            key = key.strip()
            try:
                if key == "stall":
                    rate, _, hold = value.partition(":")
                    values["stall_rate"] = float(rate)
                    if hold:
                        stall_s = float(hold)
                elif key in ("truncate", "trip"):
                    values[f"{key}_rate"] = float(value)
                elif key == "seed":
                    seed = int(value)
                else:
                    raise ValueError(f"unknown chaos key {key!r}")
            except ValueError as exc:
                raise ValueError(
                    f"bad chaos spec element {part!r}: {exc}"
                ) from None
        for name, rate in values.items():
            if rate < 0 or rate > 1:
                raise ValueError(
                    f"chaos {name} must be in [0, 1], got {rate}")
        return cls(stall_s=stall_s, seed=seed, **values)

    @classmethod
    def from_env(cls, environ=os.environ) -> "ChaosConfig | None":
        spec = environ.get(CHAOS_ENV, "").strip()
        if not spec:
            return None
        return cls.from_spec(spec)

    def to_spec(self) -> str:
        """The inverse of :meth:`from_spec` (for subprocess env)."""
        parts = []
        if self.stall_rate:
            parts.append(f"stall={self.stall_rate}:{self.stall_s}")
        if self.truncate_rate:
            parts.append(f"truncate={self.truncate_rate}")
        if self.trip_rate:
            parts.append(f"trip={self.trip_rate}")
        parts.append(f"seed={self.seed}")
        return ",".join(parts)


class ChaosInjector:
    """Draws faults at the configured rates; counts what it injected.

    Lives on the server's event loop thread, so plain counters are
    race-free.  ``force_trip`` walks a plan's circuit breaker one tier
    down exactly the way a real backend fault would.
    """

    def __init__(self, config: ChaosConfig):
        self.config = config
        self._rng = random.Random(config.seed or None)
        self.stalls = 0
        self.truncations = 0
        self.trips = 0

    @property
    def stall_s(self) -> float:
        return self.config.stall_s

    def _draw(self, rate: float) -> bool:
        return rate > 0 and self._rng.random() < rate

    def take_stall(self) -> bool:
        if self._draw(self.config.stall_rate):
            self.stalls += 1
            return True
        return False

    def take_truncate(self) -> bool:
        if self._draw(self.config.truncate_rate):
            self.truncations += 1
            return True
        return False

    def take_trip(self) -> bool:
        if self._draw(self.config.trip_rate):
            self.trips += 1
            return True
        return False

    def force_trip(self, executable) -> None:
        """Trip ``executable``'s breaker as if its backend faulted."""
        generation = getattr(executable, "_generation", None)
        degrade = getattr(executable, "_degrade", None)
        if degrade is None or generation is None:
            return
        degrade(RuntimeError("chaos: forced breaker trip"),
                "chaos", generation)


def injector_from_env(environ=os.environ) -> ChaosInjector | None:
    config = ChaosConfig.from_env(environ)
    if config is None or not config.enabled:
        return None
    return ChaosInjector(config)


# ---------------------------------------------------------------------------
# The harness: a real fleet, open-loop load, injected kills, oracles.
# ---------------------------------------------------------------------------


def fleet_supported() -> bool:
    """Can this host run a supervised fleet at all?"""
    import socket

    return (hasattr(os, "fork") and hasattr(signal, "SIGCHLD")
            and hasattr(socket, "SO_REUSEPORT"))


class FleetProcess:
    """``spl serve --workers N`` as a context-managed subprocess.

    Used by the chaos harness, the resilience benchmark and the
    supervisor tests: boots the real CLI (signals, fork, SO_REUSEPORT
    — nothing mocked), learns the bound port through ``--port-file``,
    and guarantees teardown.
    """

    def __init__(self, *, workers: int = 2, prefer: str = "numpy",
                 warm: tuple[str, ...] = (), extra_args: tuple[str, ...] = (),
                 chaos: ChaosConfig | None = None,
                 env_extra: dict[str, str] | None = None,
                 boot_timeout: float = 60.0):
        self.workers = workers
        self.prefer = prefer
        self.warm = tuple(warm)
        self.extra_args = tuple(extra_args)
        self.chaos = chaos
        self.env_extra = dict(env_extra or {})
        self.boot_timeout = boot_timeout
        self.proc: subprocess.Popen | None = None
        self.host = "127.0.0.1"
        self.port = 0
        self._port_file = ""
        self._stderr_path = ""

    def __enter__(self) -> "FleetProcess":
        import tempfile

        fd, self._port_file = tempfile.mkstemp(prefix="spl-port-")
        os.close(fd)
        os.unlink(self._port_file)  # the supervisor creates it
        argv = [
            sys.executable, "-m", "repro.serve",
            "--host", self.host, "--port", "0",
            "--workers", str(self.workers),
            "--prefer", self.prefer,
            "--port-file", self._port_file,
        ]
        for spec in self.warm:
            argv += ["--warm", spec]
        argv += list(self.extra_args)
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_root, env.get("PYTHONPATH")) if p)
        if self.chaos is not None and self.chaos.enabled:
            env[CHAOS_ENV] = self.chaos.to_spec()
        else:
            env.pop(CHAOS_ENV, None)
        env.update(self.env_extra)
        # stderr goes to a file, not a pipe: nobody drains a pipe
        # mid-run, and a supervisor busy logging restarts must never
        # block on a full pipe buffer.
        stderr_fd, self._stderr_path = tempfile.mkstemp(
            prefix="spl-fleet-err-")
        try:
            self.proc = subprocess.Popen(argv, env=env,
                                         stdout=subprocess.DEVNULL,
                                         stderr=stderr_fd)
        finally:
            os.close(stderr_fd)
        deadline = time.monotonic() + self.boot_timeout
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"fleet exited during boot "
                    f"(code {self.proc.returncode}):\n"
                    f"{self.stderr_text()}")
            try:
                text = open(self._port_file).read().strip()
            except FileNotFoundError:
                text = ""
            if text:
                host, port = text.rsplit(":", 1)
                self.host, self.port = host, int(port)
                return self
            time.sleep(0.02)
        self.terminate(kill=True)
        raise RuntimeError("fleet did not publish its port in time")

    def __exit__(self, *exc_info) -> None:
        self.terminate()
        for path in (self._port_file, self._stderr_path):
            if path:
                try:
                    os.unlink(path)
                except OSError:
                    pass

    def stderr_text(self) -> str:
        """Everything the fleet wrote to stderr so far."""
        if not self._stderr_path:
            return ""
        try:
            with open(self._stderr_path, "rb") as handle:
                return handle.read().decode(errors="replace")
        except OSError:
            return ""

    # -- control -------------------------------------------------------

    def signal(self, signum: int) -> None:
        assert self.proc is not None
        self.proc.send_signal(signum)

    def terminate(self, kill: bool = False,
                  timeout: float = 30.0) -> int | None:
        if self.proc is None:
            return None
        if self.proc.poll() is None:
            self.proc.send_signal(
                signal.SIGKILL if kill else signal.SIGTERM)
            try:
                self.proc.wait(timeout)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(10)
        return self.proc.returncode

    def worker_pids(self, want: int | None = None,
                    timeout: float = 20.0,
                    attempts: int = 64) -> set[int]:
        """Worker pids discovered by dialing the fleet repeatedly.

        SO_REUSEPORT load-balances connections, so fresh connections
        land on different workers; each reports its pid in ``stats``.
        """
        from repro.serve.client import SplClient

        want = self.workers if want is None else want
        pids: set[int] = set()
        deadline = time.monotonic() + timeout
        for _ in range(attempts):
            if len(pids) >= want or time.monotonic() > deadline:
                break
            try:
                with SplClient(self.host, self.port, timeout=5.0,
                               request_timeout=5.0) as client:
                    pids.add(client.stats()["pid"])
            except (ConnectionError, OSError, ServeError):
                time.sleep(0.05)
        return pids


@dataclass
class ChaosReport:
    """Outcome accounting for one chaos run."""

    offered: int = 0
    ok: int = 0
    wrong: int = 0  # completed with an incorrect vector: must be 0
    errors: dict[str, int] = field(default_factory=dict)
    duration_s: float = 0.0
    kill_times_s: list[float] = field(default_factory=list)
    killed_pids: list[int] = field(default_factory=list)
    recovery_window_s: float = 0.0
    post_recovery_offered: int = 0
    post_recovery_ok: int = 0
    reconnects: int = 0
    retries_spent: int = 0
    latencies_s: list[float] = field(default_factory=list)

    @property
    def availability(self) -> float:
        return self.ok / self.offered if self.offered else 0.0

    @property
    def post_recovery_availability(self) -> float:
        """Success rate over arrivals after every kill's backoff
        window — the steady-state-after-recovery number the
        acceptance gate holds at >= 99%."""
        if not self.post_recovery_offered:
            return 0.0
        return self.post_recovery_ok / self.post_recovery_offered

    def percentile_ms(self, q: float) -> float:
        if not self.latencies_s:
            return float("nan")
        return float(np.percentile(self.latencies_s, q) * 1e3)

    def summary(self) -> dict:
        return {
            "offered": self.offered,
            "ok": self.ok,
            "wrong": self.wrong,
            "errors": dict(sorted(self.errors.items())),
            "duration_s": self.duration_s,
            "kill_times_s": list(self.kill_times_s),
            "workers_killed": len(self.killed_pids),
            "recovery_window_s": self.recovery_window_s,
            "availability": self.availability,
            "post_recovery_offered": self.post_recovery_offered,
            "post_recovery_availability":
                self.post_recovery_availability,
            "reconnects": self.reconnects,
            "retries_spent": self.retries_spent,
            "p50_ms": self.percentile_ms(50),
            "p99_ms": self.percentile_ms(99),
        }


async def _drive_chaos(fleet: FleetProcess, report: ChaosReport, *,
                       n: int, rate: float, duration: float,
                       kill_at: tuple[float, ...],
                       recovery_window_s: float,
                       connections: int, seed: int,
                       request_timeout: float,
                       policy: RetryPolicy) -> None:
    from repro.serve.client import ResilientAsyncClient

    rng = random.Random(seed)
    nprng = np.random.default_rng(seed)
    pool = []
    for _ in range(16):
        x = nprng.standard_normal(n) + 1j * nprng.standard_normal(n)
        pool.append((x, np.fft.fft(x)))

    clients = [
        ResilientAsyncClient(fleet.host, fleet.port, policy=policy,
                             request_timeout=request_timeout,
                             rng=random.Random(seed + i))
        for i in range(max(1, connections))
    ]
    # Arrivals are open-loop: the schedule is fixed up front and never
    # slows down because the fleet is hurting.
    arrivals: list[float] = []
    t = 0.0
    while True:
        t += rng.expovariate(rate)
        if t >= duration:
            break
        arrivals.append(t)
    last_kill = max(kill_at) if kill_at else 0.0
    recovered_after = last_kill + recovery_window_s

    tasks = []
    start = time.monotonic()

    async def killer() -> None:
        for when in sorted(kill_at):
            delay = start + when - time.monotonic()
            if delay > 0:
                await asyncio.sleep(delay)
            pids = await asyncio.get_running_loop().run_in_executor(
                None, lambda: fleet.worker_pids(want=1, timeout=5.0))
            if not pids:
                continue
            victim = sorted(pids)[0]
            try:
                os.kill(victim, signal.SIGKILL)
            except ProcessLookupError:
                continue
            report.kill_times_s.append(time.monotonic() - start)
            report.killed_pids.append(victim)

    async def one_request(offset: float, index: int) -> None:
        x, expected = pool[index % len(pool)]
        client = clients[index % len(clients)]
        post_recovery = offset >= recovered_after
        if post_recovery:
            report.post_recovery_offered += 1
        issued = time.monotonic()
        try:
            y = await client.transform("fft", x)
        except ServeError as exc:
            report.errors[exc.code] = report.errors.get(exc.code,
                                                        0) + 1
            return
        except Exception:  # noqa: BLE001 - transport-level loss
            report.errors["transport"] = \
                report.errors.get("transport", 0) + 1
            return
        report.latencies_s.append(time.monotonic() - issued)
        if np.allclose(y, expected, atol=1e-6 * max(1.0, n)):
            report.ok += 1
            if post_recovery:
                report.post_recovery_ok += 1
        else:
            report.wrong += 1

    kill_task = asyncio.ensure_future(killer())
    try:
        for index, offset in enumerate(arrivals):
            wait = start + offset - time.monotonic()
            if wait > 0:
                await asyncio.sleep(wait)
            report.offered += 1
            tasks.append(asyncio.ensure_future(
                one_request(offset, index)))
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        await kill_task
    finally:
        kill_task.cancel()
        report.duration_s = time.monotonic() - start
        report.reconnects = sum(c.reconnects for c in clients)
        if policy.budget is not None:
            report.retries_spent = policy.budget.spent
        for client in clients:
            await client.close()


def run_chaos(*, workers: int = 2, n: int = 16, rate: float = 300.0,
              duration: float = 6.0,
              kill_at: tuple[float, ...] = (1.5,),
              recovery_window_s: float = 2.5,
              server_chaos: ChaosConfig | None = None,
              connections: int = 4, seed: int = 0,
              request_timeout: float = 0.5,
              policy: RetryPolicy | None = None,
              prefer: str = "numpy") -> ChaosReport:
    """One full chaos experiment against a real supervised fleet.

    Boots ``spl serve --workers N`` (optionally with server-side
    ``SPL_CHAOS`` injection), offers ``rate`` req/s open-loop for
    ``duration`` seconds through retrying clients, SIGKILLs one worker
    at each offset in ``kill_at``, and verifies every completed
    result against ``numpy.fft``.  The caller asserts on the report;
    the harness never hides an outcome.
    """
    if not fleet_supported():
        raise RuntimeError("supervised fleets need fork + SO_REUSEPORT")
    if policy is None:
        policy = RetryPolicy(
            attempts=5, base_backoff_s=0.02, max_backoff_s=0.4,
            budget=RetryBudget(ratio=0.5, max_tokens=64.0,
                               min_reserve=8.0),
        )
    report = ChaosReport(recovery_window_s=recovery_window_s)
    warm = (f"fft:{n}",)
    with FleetProcess(workers=workers, prefer=prefer, warm=warm,
                      chaos=server_chaos) as fleet:
        # Make sure every worker slot is up before the clock starts.
        fleet.worker_pids(timeout=20.0)
        asyncio.run(_drive_chaos(
            fleet, report, n=n, rate=rate, duration=duration,
            kill_at=tuple(kill_at),
            recovery_window_s=recovery_window_s,
            connections=connections, seed=seed,
            request_timeout=request_timeout, policy=policy))
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.chaos",
        description="Chaos harness: kill workers under load and "
                    "check the fleet recovers with zero wrong "
                    "answers.",
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--n", type=int, default=16)
    parser.add_argument("--rate", type=float, default=300.0)
    parser.add_argument("--duration", type=float, default=6.0)
    parser.add_argument("--kill-at", type=float, nargs="*",
                        default=[1.5], metavar="SECONDS")
    parser.add_argument("--recovery-window", type=float, default=2.5)
    parser.add_argument("--server-chaos", default=None,
                        metavar="SPEC",
                        help='e.g. "stall=0.01:2.0,truncate=0.005"')
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--min-availability", type=float,
                        default=0.99,
                        help="post-recovery availability gate")
    args = parser.parse_args(argv)

    if not fleet_supported():
        print("chaos: fork/SO_REUSEPORT unavailable; skipping",
              file=sys.stderr)
        return 0
    server_chaos = (ChaosConfig.from_spec(args.server_chaos)
                    if args.server_chaos else None)
    report = run_chaos(
        workers=args.workers, n=args.n, rate=args.rate,
        duration=args.duration, kill_at=tuple(args.kill_at),
        recovery_window_s=args.recovery_window,
        server_chaos=server_chaos, seed=args.seed)
    print(json.dumps(report.summary(), indent=2))
    if report.wrong:
        print(f"chaos: {report.wrong} INCORRECT results",
              file=sys.stderr)
        return 1
    if report.post_recovery_availability < args.min_availability:
        print(f"chaos: post-recovery availability "
              f"{report.post_recovery_availability:.4f} < "
              f"{args.min_availability}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
