"""Clients for the transform service.

:class:`SplClient` is the simple blocking client: one request in
flight at a time, typed errors raised from the wire ``code``.  The
load generator and benchmark use :class:`AsyncSplClient`, which
pipelines — requests are tagged with a client-side ``id``, responses
are matched back to their futures as they arrive, in any order.

Both clients carry the resilience layer from :mod:`repro.serve.retry`:

* a **per-request timeout** — a stalled or wedged server raises a
  typed :class:`~repro.serve.errors.SplTimeout` instead of hanging
  the caller forever.  For the blocking client a timeout poisons the
  connection (a late response would desynchronize the stream), so the
  socket is discarded and rebuilt on next use; the pipelining client
  just abandons the tagged future — its stream stays valid.
* a **retry policy** (optional) — jittered exponential backoff on
  ``overload``, reconnect-and-retry on connection loss / timeout /
  ``unavailable``, all under a retry budget.  Safe because every
  served transform is idempotent.

:class:`ResilientAsyncClient` packages the same policy around the
pipelining client for drivers (the chaos harness) that must survive
worker kills mid-stream.
"""

from __future__ import annotations

import asyncio
import random
import socket

import numpy as np

from repro.serve.errors import ServeError, SplTimeout, Unavailable, from_code
from repro.serve.protocol import (
    bytes_to_vector,
    dtype_name,
    encode_frame,
    read_frame,
    read_frame_sync,
    resolve_dtype,
)
from repro.serve.retry import RetryPolicy, call_with_retry

_UNSET = object()


def _raise_for_status(header: dict) -> None:
    if header.get("status") == "ok":
        return
    raise from_code(header.get("code", "internal"),
                    header.get("message", "request failed"),
                    queue_depth=header.get("queue_depth"),
                    queue_limit=header.get("queue_limit"))


class _SockReader:
    """``read(n)`` adapter over a raw socket, timeout-transparent.

    ``socket.makefile`` documents undefined behavior when the socket
    has a timeout; this reads via ``recv`` directly so a timeout
    surfaces as the standard ``TimeoutError`` mid-read instead of
    corrupting a buffered file object."""

    def __init__(self, sock: socket.socket):
        self._sock = sock

    def read(self, n: int) -> bytes:
        chunks = b""
        while len(chunks) < n:
            chunk = self._sock.recv(n - len(chunks))
            if not chunk:
                break
            chunks += chunk
        return chunks


class SplClient:
    """Blocking client; one outstanding request at a time.

    ``timeout`` bounds connection establishment; ``request_timeout``
    (seconds, ``None`` = wait forever) bounds every round trip and
    raises :class:`SplTimeout` when it expires — after which the
    connection is discarded (the response stream can no longer be
    trusted) and transparently rebuilt on the next call.  ``retry``
    (a :class:`~repro.serve.retry.RetryPolicy`) arms automatic
    backoff-and-retry in :meth:`transform`.
    """

    def __init__(self, host: str, port: int,
                 timeout: float | None = 30.0,
                 request_timeout: float | None = None,
                 retry: RetryPolicy | None = None,
                 rng: random.Random | None = None):
        self.host = host
        self.port = port
        self._connect_timeout = timeout
        self.request_timeout = request_timeout
        self.retry = retry
        self._rng = rng or random.Random()
        self._sock: socket.socket | None = None
        self._reader: _SockReader | None = None
        self._closed = False
        self._connect()

    # -- connection lifecycle ------------------------------------------

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self._connect_timeout)
        self._sock.settimeout(self.request_timeout)
        self._reader = _SockReader(self._sock)

    def _discard_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self._reader = None

    def reconnect(self) -> None:
        """Drop the current connection and dial a fresh one."""
        self._discard_connection()
        self._connect()

    def close(self) -> None:
        self._closed = True
        self._discard_connection()

    def __enter__(self) -> "SplClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the wire ------------------------------------------------------

    def _roundtrip(self, header: dict, payload: bytes = b"",
                   timeout: float | None = _UNSET) -> tuple[dict, bytes]:
        if self._closed:
            raise ConnectionError("client is closed")
        if self._sock is None:
            self._connect()
        if timeout is not _UNSET and timeout != self.request_timeout:
            self._sock.settimeout(timeout)
        try:
            self._sock.sendall(encode_frame(header, payload))
            frame = read_frame_sync(self._reader)
        except (socket.timeout, TimeoutError) as exc:
            # The response may still arrive later; this stream can no
            # longer be matched to requests.  Poison the connection.
            self._discard_connection()
            raise SplTimeout(
                "no response within the request timeout") from exc
        except (ConnectionError, OSError):
            self._discard_connection()
            raise
        finally:
            if self._sock is not None and timeout is not _UNSET \
                    and timeout != self.request_timeout:
                self._sock.settimeout(self.request_timeout)
        if frame is None:
            self._discard_connection()
            raise ConnectionError("server closed the connection")
        response, response_payload = frame
        _raise_for_status(response)
        return response, response_payload

    def ping(self) -> None:
        self._roundtrip({"op": "ping"})

    def stats(self) -> dict:
        response, _ = self._roundtrip({"op": "stats"})
        return response["stats"]

    def transform(self, transform: str, x: np.ndarray, *,
                  deadline_ms: float | None = None,
                  timeout: float | None = _UNSET,
                  retry: RetryPolicy | None = _UNSET) -> np.ndarray:
        """One transform round trip, under the client's resilience
        policy.  ``timeout``/``retry`` override the instance defaults
        for this call (``None`` disables)."""
        x = np.ascontiguousarray(x)
        header = {
            "op": "transform",
            "transform": transform,
            "n": int(x.shape[0]),
            "dtype": dtype_name(x.dtype),
        }
        if deadline_ms is not None:
            header["deadline_ms"] = deadline_ms
        payload = x.tobytes()
        policy = self.retry if retry is _UNSET else retry

        def attempt() -> np.ndarray:
            response, result = self._roundtrip(header, payload,
                                               timeout=timeout)
            return bytes_to_vector(result, response["n"],
                                   resolve_dtype(response["dtype"]))

        if policy is None:
            return attempt()

        def on_retry(exc: BaseException, retry_index: int) -> None:
            # Connection-level failures (and Unavailable: the worker
            # is draining) dial fresh — under SO_REUSEPORT the kernel
            # may well land the new connection on a healthy worker.
            # _roundtrip already discarded poisoned sockets; the next
            # attempt reconnects lazily, so connect refusals during a
            # restart gap are themselves retried with backoff.
            if isinstance(exc, (ConnectionError, OSError, SplTimeout,
                                Unavailable)):
                self._discard_connection()

        return call_with_retry(attempt, policy, rng=self._rng,
                               on_retry=on_retry)


class AsyncSplClient:
    """Pipelining asyncio client.

    ``submit`` returns immediately with a future; a background reader
    task resolves futures as tagged responses arrive.  Used by the
    open-loop load generator, where issuing must never wait on
    completion.  ``submit(..., timeout=...)`` arms a per-request timer
    that fails the future with :class:`SplTimeout` — the connection
    stays usable (responses are tagged, so a late answer is simply
    dropped)."""

    def __init__(self) -> None:
        self.host = ""
        self.port = 0
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._reader_task: asyncio.Task | None = None
        self._closed = False

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncSplClient":
        client = cls()
        client.host, client.port = host, port
        client._reader, client._writer = await asyncio.open_connection(
            host, port)
        client._reader_task = asyncio.ensure_future(client._read_loop())
        return client

    @property
    def connected(self) -> bool:
        """Liveness: the reader loop still runs and close() was not
        called.  A dead connection fails new submits immediately."""
        return (not self._closed and self._reader_task is not None
                and not self._reader_task.done())

    async def close(self) -> None:
        self._closed = True
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._fail_pending(ConnectionError("client closed"))

    def _fail_pending(self, exc: Exception) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                frame = await read_frame(self._reader)
                if frame is None:
                    break
                header, payload = frame
                future = self._pending.pop(header.get("id"), None)
                if future is None or future.done():
                    continue
                try:
                    _raise_for_status(header)
                except ServeError as exc:
                    future.set_exception(exc)
                    continue
                if payload:
                    result = bytes_to_vector(
                        payload, header["n"],
                        resolve_dtype(header["dtype"]))
                    future.set_result((header, result))
                else:
                    future.set_result((header, None))
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - fail all waiters
            self._fail_pending(exc)
            return
        if not self._closed:
            self._fail_pending(
                ConnectionError("server closed the connection"))

    def submit(self, header: dict, payload: bytes = b"",
               timeout: float | None = None) -> asyncio.Future:
        """Send one frame; the returned future resolves to
        ``(response_header, vector_or_None)`` or a typed error.

        Submitting on a dead connection raises ``ConnectionError``
        immediately (a future parked behind a finished reader loop
        would never resolve).  ``timeout`` arms a timer that fails
        the future with :class:`SplTimeout`.
        """
        assert self._writer is not None
        if not self.connected:
            raise ConnectionError("connection is closed")
        request_id = self._next_id
        self._next_id += 1
        header = dict(header, id=request_id)
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending[request_id] = future
        self._writer.write(encode_frame(header, payload))
        if timeout is not None:
            handle = loop.call_later(timeout, self._expire,
                                     request_id)
            future.add_done_callback(lambda _: handle.cancel())
        return future

    def _expire(self, request_id: int) -> None:
        future = self._pending.pop(request_id, None)
        if future is not None and not future.done():
            future.set_exception(SplTimeout(
                "no response within the request timeout"))

    async def drain(self) -> None:
        assert self._writer is not None
        await self._writer.drain()

    async def transform(self, transform: str, x: np.ndarray, *,
                        deadline_ms: float | None = None,
                        timeout: float | None = None
                        ) -> np.ndarray:
        x = np.ascontiguousarray(x)
        header = {
            "op": "transform",
            "transform": transform,
            "n": int(x.shape[0]),
            "dtype": dtype_name(x.dtype),
        }
        if deadline_ms is not None:
            header["deadline_ms"] = deadline_ms
        future = self.submit(header, x.tobytes(), timeout=timeout)
        await self.drain()
        _, result = await future
        return result

    async def ping(self) -> None:
        future = self.submit({"op": "ping"})
        await self.drain()
        await future

    async def stats(self) -> dict:
        future = self.submit({"op": "stats"})
        await self.drain()
        header, _ = await future
        return header["stats"]


class ResilientAsyncClient:
    """A reconnecting, retrying wrapper around the pipelining client.

    One logical connection that survives worker death: a transform
    whose attempt fails on a retryable cause (connection loss,
    timeout, ``overload``, ``unavailable``) backs off with jitter,
    re-dials if the underlying connection died, and tries again under
    the policy's attempt and budget bounds.  Reconnection is lazy and
    per-attempt, so a restart gap (connection refused while the
    supervisor restarts a worker) is retried like any other failure.
    """

    def __init__(self, host: str, port: int, *,
                 policy: RetryPolicy | None = None,
                 request_timeout: float | None = None,
                 rng: random.Random | None = None):
        self.host = host
        self.port = port
        self.policy = policy or RetryPolicy()
        self.request_timeout = request_timeout
        self._rng = rng or random.Random()
        self._client: AsyncSplClient | None = None
        self._dial_lock = asyncio.Lock()
        self._closed = False
        self.reconnects = 0

    async def _ensure(self) -> AsyncSplClient:
        if self._closed:
            raise ConnectionError("client is closed")
        # Serialized: concurrent in-flight requests that all lose the
        # connection must share one re-dial, not each open (and leak)
        # their own.
        async with self._dial_lock:
            client = self._client
            if client is not None and not client.connected:
                await client.close()
                self._client = client = None
            if client is None:
                self._client = client = await AsyncSplClient.connect(
                    self.host, self.port)
                self.reconnects += 1
            return client

    async def close(self) -> None:
        self._closed = True
        if self._client is not None:
            await self._client.close()
            self._client = None

    async def transform(self, transform: str, x: np.ndarray, *,
                        deadline_ms: float | None = None
                        ) -> np.ndarray:
        policy = self.policy
        budget = policy.budget
        if budget is not None:
            budget.record_attempt()
        for retry_index in range(policy.attempts):
            try:
                client = await self._ensure()
                return await client.transform(
                    transform, x, deadline_ms=deadline_ms,
                    timeout=self.request_timeout)
            except BaseException as exc:  # noqa: BLE001 - classified
                if self._closed:
                    raise
                last_try = retry_index >= policy.attempts - 1
                if last_try or not policy.retryable(exc):
                    raise
                if budget is not None and not budget.allow_retry():
                    raise
                delay = policy.backoff_s(retry_index, self._rng)
                if delay > 0:
                    await asyncio.sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    async def ping(self) -> None:
        client = await self._ensure()
        await client.ping()

    async def stats(self) -> dict:
        client = await self._ensure()
        return await client.stats()
