"""Clients for the transform service.

:class:`SplClient` is the simple blocking client: one request in
flight at a time, typed errors raised from the wire ``code``.  The
load generator and benchmark use :class:`AsyncSplClient`, which
pipelines — requests are tagged with a client-side ``id``, responses
are matched back to their futures as they arrive, in any order.
"""

from __future__ import annotations

import asyncio
import socket

import numpy as np

from repro.serve.errors import ServeError, from_code
from repro.serve.protocol import (
    bytes_to_vector,
    dtype_name,
    encode_frame,
    read_frame,
    read_frame_sync,
    resolve_dtype,
)


def _raise_for_status(header: dict) -> None:
    if header.get("status") == "ok":
        return
    raise from_code(header.get("code", "internal"),
                    header.get("message", "request failed"),
                    queue_depth=header.get("queue_depth"),
                    queue_limit=header.get("queue_limit"))


class SplClient:
    """Blocking client; one outstanding request at a time."""

    def __init__(self, host: str, port: int,
                 timeout: float | None = 30.0):
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._rfile = self._sock.makefile("rb")

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "SplClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _roundtrip(self, header: dict,
                   payload: bytes = b"") -> tuple[dict, bytes]:
        self._sock.sendall(encode_frame(header, payload))
        frame = read_frame_sync(self._rfile)
        if frame is None:
            raise ConnectionError("server closed the connection")
        response, response_payload = frame
        _raise_for_status(response)
        return response, response_payload

    def ping(self) -> None:
        self._roundtrip({"op": "ping"})

    def stats(self) -> dict:
        response, _ = self._roundtrip({"op": "stats"})
        return response["stats"]

    def transform(self, transform: str, x: np.ndarray, *,
                  deadline_ms: float | None = None) -> np.ndarray:
        x = np.ascontiguousarray(x)
        header = {
            "op": "transform",
            "transform": transform,
            "n": int(x.shape[0]),
            "dtype": dtype_name(x.dtype),
        }
        if deadline_ms is not None:
            header["deadline_ms"] = deadline_ms
        response, payload = self._roundtrip(header, x.tobytes())
        return bytes_to_vector(payload, response["n"],
                               resolve_dtype(response["dtype"]))


class AsyncSplClient:
    """Pipelining asyncio client.

    ``submit`` returns immediately with a future; a background reader
    task resolves futures as tagged responses arrive.  Used by the
    open-loop load generator, where issuing must never wait on
    completion.
    """

    def __init__(self) -> None:
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._reader_task: asyncio.Task | None = None
        self._closed = False

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncSplClient":
        client = cls()
        client._reader, client._writer = await asyncio.open_connection(
            host, port)
        client._reader_task = asyncio.ensure_future(client._read_loop())
        return client

    async def close(self) -> None:
        self._closed = True
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._fail_pending(ConnectionError("client closed"))

    def _fail_pending(self, exc: Exception) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                frame = await read_frame(self._reader)
                if frame is None:
                    break
                header, payload = frame
                future = self._pending.pop(header.get("id"), None)
                if future is None or future.done():
                    continue
                try:
                    _raise_for_status(header)
                except ServeError as exc:
                    future.set_exception(exc)
                    continue
                if payload:
                    result = bytes_to_vector(
                        payload, header["n"],
                        resolve_dtype(header["dtype"]))
                    future.set_result((header, result))
                else:
                    future.set_result((header, None))
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - fail all waiters
            self._fail_pending(exc)
            return
        if not self._closed:
            self._fail_pending(
                ConnectionError("server closed the connection"))

    def submit(self, header: dict,
               payload: bytes = b"") -> asyncio.Future:
        """Send one frame; the returned future resolves to
        ``(response_header, vector_or_None)`` or a typed error."""
        assert self._writer is not None
        request_id = self._next_id
        self._next_id += 1
        header = dict(header, id=request_id)
        future: asyncio.Future = \
            asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(encode_frame(header, payload))
        return future

    async def drain(self) -> None:
        assert self._writer is not None
        await self._writer.drain()

    async def transform(self, transform: str, x: np.ndarray, *,
                        deadline_ms: float | None = None
                        ) -> np.ndarray:
        x = np.ascontiguousarray(x)
        header = {
            "op": "transform",
            "transform": transform,
            "n": int(x.shape[0]),
            "dtype": dtype_name(x.dtype),
        }
        if deadline_ms is not None:
            header["deadline_ms"] = deadline_ms
        future = self.submit(header, x.tobytes())
        await self.drain()
        _, result = await future
        return result

    async def ping(self) -> None:
        future = self.submit({"op": "ping"})
        await self.drain()
        await future

    async def stats(self) -> dict:
        future = self.submit({"op": "stats"})
        await self.drain()
        header, _ = await future
        return header["stats"]
