"""Typed serving errors and their wire codes.

Every way a request can fail without being executed has a distinct
type and a stable wire ``code``, so clients (and the load generator's
outcome accounting) can react per cause instead of pattern-matching
message strings:

* ``overload`` — the plan's bounded admission queue is full; the 429
  analog.  Back off and retry.
* ``deadline`` — the request's deadline already passed, or admission
  predicted it would pass before service; the work was shed *before*
  burning backend time on an answer nobody is waiting for.
* ``bad_request`` — malformed frame, unknown transform, wrong shape
  or an unsafely-cast dtype.  Retrying identical bytes cannot help.
* ``unavailable`` — the server (or this plan's dispatcher) is
  shutting down; the request was never run.
* ``internal`` — execution failed on every backend tier (the circuit
  breakers degrade c -> numpy -> python in place first, so this is
  the chain-exhausted case, not the first fault).

One code is *client-side only*: ``timeout`` (:class:`SplTimeout`) is
raised by a client whose per-request timer expired before a response
arrived.  The server never sends it — a timed-out request may still
be executing — which is exactly why retrying it is only safe for
idempotent transforms.
"""

from __future__ import annotations


class ServeError(Exception):
    """Base class for every typed serving failure."""

    code = "internal"

    def to_header(self) -> dict:
        return {"status": "error", "code": self.code,
                "message": str(self)}


class BadRequest(ServeError):
    """The request itself is invalid; retrying it cannot succeed."""

    code = "bad_request"


class Overloaded(ServeError):
    """The plan's bounded queue is full (admission-control rejection)."""

    code = "overload"

    def __init__(self, message: str, *, queue_depth: int | None = None,
                 queue_limit: int | None = None):
        super().__init__(message)
        self.queue_depth = queue_depth
        self.queue_limit = queue_limit

    def to_header(self) -> dict:
        header = super().to_header()
        if self.queue_depth is not None:
            header["queue_depth"] = self.queue_depth
        if self.queue_limit is not None:
            header["queue_limit"] = self.queue_limit
        return header


class DeadlineExceeded(ServeError):
    """The deadline passed (or provably would) before service."""

    code = "deadline"


class Unavailable(ServeError):
    """The server or plan is shutting down; the request never ran."""

    code = "unavailable"


class SplTimeout(ServeError):
    """No response within the client's per-request timeout.

    Client-side only: the server may still be executing the request
    (or may be wedged), so the outcome is *unknown* — safe to retry
    only because every served transform is idempotent and read-only.
    """

    code = "timeout"


#: Wire code -> exception class, for clients raising typed errors.
ERROR_TYPES: dict[str, type[ServeError]] = {
    cls.code: cls
    for cls in (BadRequest, Overloaded, DeadlineExceeded, Unavailable,
                SplTimeout, ServeError)
}


def from_code(code: str, message: str, **extras) -> ServeError:
    """Rebuild the typed error a server response encodes."""
    cls = ERROR_TYPES.get(code, ServeError)
    if cls is Overloaded:
        return Overloaded(message,
                          queue_depth=extras.get("queue_depth"),
                          queue_limit=extras.get("queue_limit"))
    return cls(message)
