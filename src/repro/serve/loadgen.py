"""An open-loop load generator for the transform service.

Open-loop means arrivals follow a schedule fixed *before* the run —
they never slow down because the server is slow.  Closed-loop drivers
(issue, wait, issue) self-throttle under overload and report
flattering latencies; an open-loop driver keeps offering work at the
configured rate, which is exactly what exposes queue growth, deadline
misses, and the bounded-queue rejections the admission controller
exists to produce.

Three arrival processes (``pattern``):

* ``uniform`` — evenly spaced, rate vectors/sec;
* ``poisson`` — exponential inter-arrivals at the same mean rate;
* ``burst`` — Poisson arrivals whose rate multiplies by
  ``burst_factor`` during periodic bursts (``burst_every`` /
  ``burst_duration`` seconds), stressing the coalescing window.

``mix`` maps transform specs to weights, so one run can interleave
sizes (e.g. 64-point and 1024-point FFTs) against the same router.
Outcomes are counted by wire code; latencies are recorded only for
completed requests.
"""

from __future__ import annotations

import asyncio
import math
import random
import time
from dataclasses import dataclass, field

import numpy as np

from repro.serve.client import AsyncSplClient
from repro.serve.errors import ServeError
from repro.serve.protocol import resolve_dtype


@dataclass(frozen=True)
class WorkloadSpec:
    """One request shape in the traffic mix."""

    transform: str
    n: int
    dtype: str = "complex128"

    def describe(self) -> str:
        return f"{self.transform}:{self.n}:{self.dtype}"


@dataclass
class LoadReport:
    """Everything the benchmark needs from one load run."""

    offered: int = 0  # scheduled arrivals actually issued
    completed: int = 0
    errors: dict[str, int] = field(default_factory=dict)
    latencies_s: list[float] = field(default_factory=list)
    duration_s: float = 0.0
    target_rate: float = 0.0

    @property
    def achieved_rate(self) -> float:
        """Completed vectors/sec over the issuing window."""
        if self.duration_s <= 0:
            return 0.0
        return self.completed / self.duration_s

    @property
    def offered_rate(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.offered / self.duration_s

    def percentile_ms(self, q: float) -> float:
        if not self.latencies_s:
            return float("nan")
        return float(np.percentile(self.latencies_s, q) * 1e3)

    def summary(self) -> dict:
        return {
            "offered": self.offered,
            "completed": self.completed,
            "errors": dict(sorted(self.errors.items())),
            "duration_s": self.duration_s,
            "target_rate": self.target_rate,
            "offered_rate": self.offered_rate,
            "achieved_rate": self.achieved_rate,
            "p50_ms": self.percentile_ms(50),
            "p90_ms": self.percentile_ms(90),
            "p99_ms": self.percentile_ms(99),
        }


def _interarrivals(pattern: str, rate: float, duration: float,
                   rng: random.Random, *, burst_factor: float,
                   burst_every: float,
                   burst_duration: float) -> list[float]:
    """Arrival times (seconds from start) for one run, precomputed so
    issuing is schedule-driven, not completion-driven."""
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    arrivals: list[float] = []
    t = 0.0
    while t < duration:
        if pattern == "uniform":
            gap = 1.0 / rate
        elif pattern == "poisson":
            gap = rng.expovariate(rate)
        elif pattern == "burst":
            in_burst = (t % burst_every) < burst_duration
            gap = rng.expovariate(
                rate * burst_factor if in_burst else rate)
        else:
            raise ValueError(f"unknown arrival pattern {pattern!r}")
        t += gap
        if t < duration:
            arrivals.append(t)
    return arrivals


def _payload_pool(spec: WorkloadSpec, rng: random.Random,
                  pool_size: int = 16) -> list[bytes]:
    """Pre-encoded request payloads for one spec.

    Vectors are generated (and serialized) *before* the run so the
    issue path does no numerical work — an open-loop generator that
    pauses to build each vector under-offers at high rates.
    """
    dtype = resolve_dtype(spec.dtype)
    nprng = np.random.default_rng(rng.randrange(2 ** 31))
    pool = []
    for _ in range(pool_size):
        x = nprng.standard_normal(spec.n)
        if dtype == np.dtype(np.complex128):
            x = x + 1j * nprng.standard_normal(spec.n)
        pool.append(np.ascontiguousarray(x.astype(dtype)).tobytes())
    return pool


async def run_load(host: str, port: int, *,
                   mix: dict[WorkloadSpec, float],
                   rate: float,
                   duration: float,
                   pattern: str = "poisson",
                   deadline_ms: float | None = None,
                   request_timeout: float | None = None,
                   connections: int = 4,
                   seed: int = 0,
                   burst_factor: float = 4.0,
                   burst_every: float = 1.0,
                   burst_duration: float = 0.2) -> LoadReport:
    """Drive the server open-loop and report outcomes.

    ``rate`` is total offered vectors/sec across the whole mix;
    requests round-robin over ``connections`` pipelined clients.
    ``request_timeout`` bounds each in-flight request client-side:
    responses slower than it count as ``timeout`` errors (the wire
    code of :class:`~repro.serve.errors.SplTimeout`) instead of
    stalling the report forever on a wedged server.
    """
    if not mix:
        raise ValueError("mix must not be empty")
    specs = list(mix)
    weights = [mix[s] for s in specs]
    rng = random.Random(seed)
    arrivals = _interarrivals(
        pattern, rate, duration, rng, burst_factor=burst_factor,
        burst_every=burst_every, burst_duration=burst_duration)

    pools = {spec: _payload_pool(spec, rng) for spec in specs}
    headers = {}
    for spec in specs:
        header = {
            "op": "transform",
            "transform": spec.transform,
            "n": spec.n,
            "dtype": spec.dtype,
        }
        if deadline_ms is not None:
            header["deadline_ms"] = deadline_ms
        headers[spec] = header

    clients = [await AsyncSplClient.connect(host, port)
               for _ in range(max(1, connections))]
    report = LoadReport(target_rate=rate)
    outstanding: list[asyncio.Future] = []
    start = time.monotonic()
    try:
        for i, offset in enumerate(arrivals):
            now = time.monotonic()
            wait = start + offset - now
            if wait > 0:
                await asyncio.sleep(wait)
            spec = rng.choices(specs, weights=weights, k=1)[0]
            pool = pools[spec]
            client = clients[i % len(clients)]
            issued_at = time.monotonic()
            future = client.submit(headers[spec],
                                   pool[i % len(pool)],
                                   timeout=request_timeout)
            report.offered += 1

            def account(fut: asyncio.Future,
                        issued_at: float = issued_at) -> None:
                try:
                    fut.result()
                except ServeError as exc:
                    report.errors[exc.code] = \
                        report.errors.get(exc.code, 0) + 1
                except Exception:  # noqa: BLE001 - transport loss
                    report.errors["transport"] = \
                        report.errors.get("transport", 0) + 1
                else:
                    report.completed += 1
                    report.latencies_s.append(
                        time.monotonic() - issued_at)

            future.add_done_callback(account)
            outstanding.append(future)
        for client in clients:
            await client.drain()
        if outstanding:
            await asyncio.gather(*outstanding, return_exceptions=True)
        # Let the done-callbacks run before the report is read.
        await asyncio.sleep(0)
        report.duration_s = time.monotonic() - start
    finally:
        for client in clients:
            await client.close()
    return report


def run_load_sync(host: str, port: int, **kwargs) -> LoadReport:
    """Blocking wrapper around :func:`run_load` (own event loop)."""
    return asyncio.run(run_load(host, port, **kwargs))


def mixed_fft_specs(sizes: list[int]) -> dict[WorkloadSpec, float]:
    """An equal-weight complex FFT mix over ``sizes`` — small sizes
    weighted up slightly so big transforms do not dominate wall time."""
    mix: dict[WorkloadSpec, float] = {}
    for n in sizes:
        weight = 1.0 + 1.0 / max(1.0, math.log2(n))
        mix[WorkloadSpec("fft", n, "complex128")] = weight
    return mix
