"""Plan construction and caching for the transform service.

A *plan* is the executable behind one ``(transform, n, dtype)`` route:
a compiled :class:`~repro.perfeval.runner.ExecutableRoutine` on the
fastest available backend, with its circuit-breaker fallback chain
armed.  The registry builds each plan at most once (per-key locks, so
two concurrent first requests for the same route compile once while
different routes compile in parallel) and can *boot hot* from a
wisdom store: when the store holds a search winner for an FFT size,
its formula is re-validated and compiled instead of the default
factorization — first-request latency pays one compile, never a
search.

Supported routes:

* ``fft`` / ``complex128`` — the n-point DFT.  Sizes that factor into
  the greedy small-leaf decomposition get the Equation 10 multi-factor
  formula; other sizes up to ``MAX_DIRECT_FFT`` compile the direct
  ``(F n)`` definition.
* ``wht`` / ``float64`` — the Walsh-Hadamard transform, power-of-two
  sizes (the real-datatype workload, exercising float64 routing).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.core.compiler import CompilerOptions, SplCompiler
from repro.core.errors import SplError
from repro.core.nodes import Formula
from repro.core.parser import parse_formula_text
from repro.formulas.factorization import ct_multi, wht_multi
from repro.perfeval.ccompile import have_c_compiler
from repro.perfeval.runner import ExecutableRoutine, build_executable
from repro.search.dp import SMALL_TRANSFORM, default_small_compiler
from repro.search.measure import validate_fft_formula
from repro.serve.errors import BadRequest
from repro.serve.protocol import DTYPES
from repro.wisdom.store import WisdomStore

#: Largest size compiled from the direct ``(F n)`` definition when the
#: greedy factorization does not reproduce ``n`` (direct DFT code is
#: O(n^2) statements once unrolled — keep it small).
MAX_DIRECT_FFT = 64

#: Largest plannable size, a resource-governance backstop mirroring
#: the compile limits: one hostile header must not trigger a gigabyte
#: codegen run.
MAX_PLAN_SIZE = 1 << 16


@dataclass(frozen=True)
class PlanKey:
    """One route: the (transform, n, dtype) triple requests carry."""

    transform: str
    n: int
    dtype: str  # wire name, e.g. "complex128"

    @classmethod
    def from_header(cls, header: dict) -> "PlanKey":
        transform = header.get("transform")
        n = header.get("n")
        dtype = header.get("dtype", "complex128")
        if not isinstance(transform, str):
            raise BadRequest("missing or non-string 'transform'")
        if not isinstance(n, int) or isinstance(n, bool) or n < 1:
            raise BadRequest(f"bad transform size {n!r}")
        if dtype not in DTYPES:
            raise BadRequest(
                f"unsupported dtype {dtype!r} (expected one of "
                f"{sorted(DTYPES)})"
            )
        return cls(transform=transform, n=n, dtype=dtype)

    def describe(self) -> str:
        return f"{self.transform}:{self.n}:{self.dtype}"


@dataclass
class Plan:
    """A built route: the executable plus its provenance."""

    key: PlanKey
    executable: ExecutableRoutine
    from_wisdom: bool = False
    formula_spl: str = ""

    @property
    def dtype(self) -> np.dtype:
        return self.executable.dtype


def fft_factors(n: int) -> list[int] | None:
    """Greedy small-leaf factorization; None when it cannot hit ``n``
    exactly (odd or prime-heavy sizes fall back to the direct DFT)."""
    factors: list[int] = []
    remaining = n
    while remaining > 8:
        if remaining % 4 == 0:
            factors.append(4)
            remaining //= 4
        elif remaining % 2 == 0:
            factors.append(2)
            remaining //= 2
        else:
            return None
    factors.append(remaining)
    if factors[-1] < 2:
        return None
    prod = 1
    for f in factors:
        prod *= f
    return factors if prod == n else None


class PlanRegistry:
    """Build-once cache of executables keyed by :class:`PlanKey`.

    ``wisdom`` (optional) is consulted for FFT formulas before the
    default factorization; replayed entries are re-validated against
    ``numpy.fft`` via the interpreter and evicted on mismatch, so a
    stale or tampered store degrades to a cold build, never to wrong
    answers.  ``prefer`` picks the backend chain head (default:
    ``cjit`` when the in-process JIT runs on this host — codelet plans
    serve their first request in milliseconds and upgrade to the
    gcc-optimized tier in the background — else C when a compiler is
    on PATH, NumPy otherwise).
    """

    def __init__(self, *, prefer: str | None = None,
                 wisdom: WisdomStore | None = None,
                 wisdom_source: str | None = None,
                 cflags: tuple[str, ...] = (),
                 threads: int = 1):
        if prefer is None:
            from repro.perfeval.jit import jit_supported

            if jit_supported():
                prefer = "cjit"
            else:
                prefer = "c" if have_c_compiler() else "numpy"
        self.prefer = prefer
        self.wisdom = wisdom
        # Provenance label for stats(): "pack" (integrity-verified
        # deployment pack), "store" (mutable wisdom file), "none".
        if wisdom_source is None:
            wisdom_source = "store" if wisdom is not None else "none"
        self.wisdom_source = wisdom_source
        self.cflags = tuple(cflags)
        self.threads = threads
        self._plans: dict[PlanKey, Plan] = {}
        self._locks: dict[PlanKey, threading.Lock] = {}
        self._registry_lock = threading.Lock()
        self._builds = 0
        self._wisdom_boots = 0
        # One compiler session per registry: compile_formula memoizes,
        # so re-building a route after a restart-less eviction is free.
        self._compiler = SplCompiler(CompilerOptions(
            codetype="real", unroll_threshold=16,
        ))
        # Extra sessions for wisdom entries whose search swept the -B
        # unroll threshold: each recorded winner compiles under the
        # threshold that won for it, not the registry default.
        self._threshold_compilers: dict[int, SplCompiler] = {}
        # Wisdom entries are keyed by the *search* compiler's options;
        # use the same options object so lookups actually hit.
        self._wisdom_options = default_small_compiler().options

    # -- formula selection ------------------------------------------------

    def _language(self) -> str:
        return {"c": "c", "cjit": "cjit",
                "numpy": "numpy"}.get(self.prefer, "python")

    def _fft_formula(self, n: int) -> tuple[Formula, bool, int | None]:
        """(formula, from_wisdom, unroll threshold) for an n-point DFT.

        The threshold is non-None only for wisdom winners whose search
        swept ``-B``; the plan is then compiled under that threshold.
        """
        if self.wisdom is not None:
            replayed: dict[str, object] = {}

            def check(entry) -> bool:
                formula = parse_formula_text(entry.formula,
                                             self._compiler.defines)
                if not validate_fft_formula(self._compiler, formula, n):
                    return False
                replayed["formula"] = formula
                replayed["threshold"] = entry.meta.get("unroll_threshold")
                return True

            entry = self.wisdom.validated_lookup(
                SMALL_TRANSFORM, n, self._wisdom_options, validate=check)
            if entry is not None:
                return (replayed["formula"], True,
                        replayed.get("threshold"))
        factors = fft_factors(n)
        if factors is not None:
            return ct_multi(factors), False, None
        if n <= MAX_DIRECT_FFT:
            return parse_formula_text(f"(F {n})",
                                      self._compiler.defines), False, None
        raise BadRequest(
            f"fft size {n} is not plannable (not smooth, and too "
            f"large for the direct definition)"
        )

    def _formula(self, key: PlanKey) -> tuple[Formula, bool, str,
                                              int | None]:
        """(formula, from_wisdom, datatype, threshold) for one route."""
        if key.n > MAX_PLAN_SIZE:
            raise BadRequest(
                f"transform size {key.n} exceeds the serving limit "
                f"{MAX_PLAN_SIZE}"
            )
        if key.transform == "fft":
            if key.dtype != "complex128":
                raise BadRequest("fft serves dtype complex128 only")
            formula, from_wisdom, threshold = self._fft_formula(key.n)
            return formula, from_wisdom, "complex", threshold
        if key.transform == "wht":
            if key.dtype != "float64":
                raise BadRequest("wht serves dtype float64 only")
            k = key.n.bit_length() - 1
            if key.n < 2 or (1 << k) != key.n:
                raise BadRequest(
                    f"wht size {key.n} is not a power of two")
            # Balanced split: radix-4 stages, one radix-2 remainder.
            exponents = [2] * (k // 2) + ([1] if k % 2 else [])
            return wht_multi(exponents), False, "real", None
        raise BadRequest(
            f"unknown transform {key.transform!r} "
            f"(supported: fft, wht)"
        )

    def _compiler_for(self, threshold: int | None) -> SplCompiler:
        if threshold is None:
            return self._compiler
        with self._registry_lock:
            compiler = self._threshold_compilers.get(threshold)
            if compiler is None:
                compiler = SplCompiler(CompilerOptions(
                    codetype="real", unroll_threshold=threshold,
                ))
                self._threshold_compilers[threshold] = compiler
            return compiler

    # -- the cache --------------------------------------------------------

    def _lock_for(self, key: PlanKey) -> threading.Lock:
        with self._registry_lock:
            lock = self._locks.get(key)
            if lock is None:
                lock = self._locks[key] = threading.Lock()
            return lock

    def get(self, key: PlanKey) -> Plan:
        """The plan for ``key``, building it on first use.

        Raises :class:`~repro.serve.errors.BadRequest` for unroutable
        keys; compile failures surface as
        :class:`~repro.core.errors.SplError` (mapped to ``internal``
        by the server).
        """
        plan = self._plans.get(key)
        if plan is not None:
            return plan
        with self._lock_for(key):
            plan = self._plans.get(key)
            if plan is not None:
                return plan
            formula, from_wisdom, datatype, threshold = self._formula(key)
            name = f"serve_{key.transform}{key.n}"
            routine = self._compiler_for(threshold).compile_formula(
                formula, name, datatype=datatype,
                language=self._language(),
            )
            executable = build_executable(
                routine, prefer=self.prefer, cflags=self.cflags,
                threads=self.threads,
            )
            if executable.dtype != DTYPES[key.dtype]:
                raise SplError(
                    f"route {key.describe()} compiled to dtype "
                    f"{executable.dtype}"
                )
            plan = Plan(key=key, executable=executable,
                        from_wisdom=from_wisdom,
                        formula_spl=formula.to_spl())
            with self._registry_lock:
                self._plans[key] = plan
                self._builds += 1
                if from_wisdom:
                    self._wisdom_boots += 1
            return plan

    def warm(self, keys: list[PlanKey]) -> list[Plan]:
        """Prebuild routes (boot-time warm-up); returns their plans."""
        return [self.get(key) for key in keys]

    def stats(self) -> dict:
        with self._registry_lock:
            return {
                "plans": len(self._plans),
                "builds": self._builds,
                "wisdom_boots": self._wisdom_boots,
                "prefer": self.prefer,
                "wisdom_attached": self.wisdom is not None,
                "wisdom_source": self.wisdom_source,
            }
