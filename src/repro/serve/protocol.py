"""The length-prefixed wire protocol of the transform service.

A deliberately minimal binary framing, chosen over HTTP so the hot
path is two ``recv`` calls and zero parsing beyond one small JSON
header:

.. code-block:: text

    +------------+----------------------+--------------------------+
    | 4 bytes BE | header_len bytes     | header["payload_bytes"]  |
    | header_len | JSON header (utf-8)  | raw little-endian vector |
    +------------+----------------------+--------------------------+

Request headers (``op`` selects the action):

* ``{"op": "transform", "transform": "fft", "n": 64,
  "dtype": "complex128", "id": 7, "deadline_ms": 50,
  "payload_bytes": 1024}`` followed by the vector bytes
  (``n * itemsize``, C-order, native little-endian);
* ``{"op": "ping"}`` — liveness probe;
* ``{"op": "stats"}`` — per-plan admission/dispatch/breaker counters.

Responses echo the request ``id`` (requests on one connection may be
pipelined and are answered as they complete, not in order):

* ``{"status": "ok", "id": 7, "payload_bytes": 1024, "dtype":
  "complex128"}`` followed by the result vector;
* ``{"status": "error", "id": 7, "code": "overload", "message": ...}``
  with no payload — ``code`` is one of the typed codes in
  :mod:`repro.serve.errors`.

Frames are hard-capped (header and payload separately) so a hostile
or corrupt length prefix cannot make the server allocate gigabytes.
"""

from __future__ import annotations

import asyncio
import json
import struct

import numpy as np

from repro.serve.errors import BadRequest

#: 4-byte big-endian header length prefix.
_PREFIX = struct.Struct(">I")

MAX_HEADER_BYTES = 64 * 1024
MAX_PAYLOAD_BYTES = 64 * 1024 * 1024

#: Wire dtype names -> numpy dtypes.  Only fixed-width IO dtypes the
#: backends actually produce are routable.
DTYPES: dict[str, np.dtype] = {
    "float64": np.dtype(np.float64),
    "complex128": np.dtype(np.complex128),
}


def dtype_name(dtype: np.dtype) -> str:
    for name, candidate in DTYPES.items():
        if candidate == dtype:
            return name
    raise BadRequest(f"unsupported dtype {dtype}")


def resolve_dtype(name: str) -> np.dtype:
    try:
        return DTYPES[name]
    except KeyError:
        raise BadRequest(
            f"unsupported dtype {name!r} (expected one of "
            f"{sorted(DTYPES)})"
        ) from None


def encode_frame(header: dict, payload: bytes = b"") -> bytes:
    """One wire frame: length prefix + JSON header + payload."""
    if payload:
        header = dict(header, payload_bytes=len(payload))
    else:
        header.setdefault("payload_bytes", 0)
    raw = json.dumps(header, separators=(",", ":")).encode()
    if len(raw) > MAX_HEADER_BYTES:
        raise BadRequest(f"header too large ({len(raw)} bytes)")
    return _PREFIX.pack(len(raw)) + raw + payload


def decode_header(raw: bytes) -> dict:
    try:
        header = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BadRequest(f"malformed frame header: {exc}") from None
    if not isinstance(header, dict):
        raise BadRequest("frame header must be a JSON object")
    return header


def _checked_lengths(prefix: bytes, header: dict) -> int:
    payload_bytes = header.get("payload_bytes", 0)
    if not isinstance(payload_bytes, int) or payload_bytes < 0 \
            or payload_bytes > MAX_PAYLOAD_BYTES:
        raise BadRequest(f"bad payload_bytes {payload_bytes!r}")
    return payload_bytes


async def read_frame(reader: asyncio.StreamReader
                     ) -> tuple[dict, bytes] | None:
    """Read one frame; ``None`` on clean EOF before a frame starts."""
    try:
        prefix = await reader.readexactly(_PREFIX.size)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    (header_len,) = _PREFIX.unpack(prefix)
    if header_len == 0 or header_len > MAX_HEADER_BYTES:
        raise BadRequest(f"bad header length {header_len}")
    try:
        header = decode_header(await reader.readexactly(header_len))
        payload = await reader.readexactly(
            _checked_lengths(prefix, header))
    except asyncio.IncompleteReadError:
        return None  # peer hung up mid-frame
    return header, payload


def read_frame_sync(recv_into) -> tuple[dict, bytes] | None:
    """Blocking twin of :func:`read_frame` over a ``makefile('rb')``
    style object with a ``read(n)`` method."""
    prefix = recv_into.read(_PREFIX.size)
    if len(prefix) < _PREFIX.size:
        return None
    (header_len,) = _PREFIX.unpack(prefix)
    if header_len == 0 or header_len > MAX_HEADER_BYTES:
        raise BadRequest(f"bad header length {header_len}")
    raw = recv_into.read(header_len)
    if len(raw) < header_len:
        return None
    header = decode_header(raw)
    payload_bytes = _checked_lengths(prefix, header)
    payload = recv_into.read(payload_bytes) if payload_bytes else b""
    if len(payload) < payload_bytes:
        return None
    return header, payload


def vector_to_bytes(x: np.ndarray) -> bytes:
    return np.ascontiguousarray(x).tobytes()


def bytes_to_vector(payload: bytes, n: int, dtype: np.dtype
                    ) -> np.ndarray:
    expected = n * dtype.itemsize
    if len(payload) != expected:
        raise BadRequest(
            f"payload is {len(payload)} bytes, expected {expected} "
            f"({n} x {dtype})"
        )
    # frombuffer is read-only and zero-copy; copy so downstream code
    # owns a writable, independent vector.
    return np.frombuffer(payload, dtype=dtype).copy()
