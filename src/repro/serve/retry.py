"""Client-side resilience policy: retries, backoff, and budgets.

The server's typed rejections (:mod:`repro.serve.errors`) tell a
client *what happened*; this module decides *what to do about it*.
The policy is the standard resilient-client ladder:

* ``overload`` — the bounded queue pushed back.  Retry after a
  **jittered exponential backoff** (full jitter: a uniform draw from
  ``[0, base * multiplier^attempt]``, capped) so a thundering herd of
  rejected clients does not re-arrive in lockstep and re-trip the
  queue it just drained.
* connection loss / ``unavailable`` / client-side ``timeout`` — the
  worker died, is draining, or wedged.  Reconnect and retry, which is
  safe *only because* every served transform is idempotent and
  read-only: replaying a request that may have executed cannot
  corrupt anything, it just recomputes.
* ``bad_request`` / ``deadline`` / ``internal`` — retrying identical
  bytes cannot help (or the budget the caller set is already blown);
  these always surface immediately.

On top of per-request attempts sits a **retry budget**
(:class:`RetryBudget`): a token bucket where every first attempt
deposits a fraction of a token and every retry withdraws one.  Under
a genuine brownout (every request failing), retries self-limit to
``ratio`` of offered load instead of multiplying it by the attempt
count — the client-side half of the admission controller's contract.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from repro.serve.errors import (
    Overloaded,
    ServeError,
    SplTimeout,
    Unavailable,
)


class RetryBudget:
    """A token bucket bounding retries to a fraction of offered load.

    Every *first* attempt deposits ``ratio`` tokens (capped at
    ``max_tokens``); every retry withdraws one.  :meth:`allow_retry`
    answers whether a retry may spend a token *and* spends it — the
    check and the spend are one atomic step, so concurrent callers
    sharing a budget cannot double-spend.  ``min_reserve`` seeds the
    bucket so the first few requests of a cold client can still retry.
    """

    def __init__(self, *, ratio: float = 0.2, max_tokens: float = 16.0,
                 min_reserve: float = 2.0):
        if ratio < 0:
            raise ValueError(f"ratio must be >= 0, got {ratio}")
        self.ratio = float(ratio)
        self.max_tokens = float(max_tokens)
        self._tokens = min(float(min_reserve), self.max_tokens)
        self._lock = threading.Lock()
        self.spent = 0  # retries granted
        self.denied = 0  # retries refused (budget empty)

    def record_attempt(self) -> None:
        """Deposit for one first attempt (call once per request)."""
        with self._lock:
            self._tokens = min(self.max_tokens,
                               self._tokens + self.ratio)

    def allow_retry(self) -> bool:
        """Spend one token if available; False means do not retry."""
        with self._lock:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                self.spent += 1
                return True
            self.denied += 1
            return False

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens


@dataclass(frozen=True)
class RetryPolicy:
    """What to retry, how many times, and how long to wait between.

    ``attempts`` counts *total* tries including the first; backoff
    before try ``k`` (k >= 1, zero-based retry index) is a full-jitter
    draw ``uniform(0, min(max_backoff, base * multiplier^k))``.
    Connection-level failures (``ConnectionError``, ``OSError``,
    :class:`SplTimeout`, :class:`Unavailable`) are retryable only when
    ``retry_connection`` is set — the outcome of the in-flight request
    is unknown, so this must stay False for non-idempotent callers
    (the bundled transforms are all idempotent).
    """

    attempts: int = 4
    base_backoff_s: float = 0.01
    multiplier: float = 2.0
    max_backoff_s: float = 0.5
    retry_overload: bool = True
    retry_connection: bool = True
    budget: RetryBudget | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(
                f"attempts must be >= 1, got {self.attempts}")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff bounds must be >= 0")

    def retryable(self, exc: BaseException) -> bool:
        """Is this failure worth another attempt at all?"""
        if isinstance(exc, Overloaded):
            return self.retry_overload
        if isinstance(exc, (SplTimeout, Unavailable)):
            return self.retry_connection
        if isinstance(exc, ServeError):
            return False  # bad_request / deadline / internal
        if isinstance(exc, (ConnectionError, EOFError, OSError)):
            return self.retry_connection
        return False

    def backoff_s(self, retry_index: int,
                  rng: random.Random | None = None) -> float:
        """Full-jitter backoff before retry ``retry_index`` (0-based)."""
        ceiling = min(self.max_backoff_s,
                      self.base_backoff_s * (
                          self.multiplier ** retry_index))
        if ceiling <= 0:
            return 0.0
        return (rng or random).uniform(0.0, ceiling)


def call_with_retry(attempt_fn, policy: RetryPolicy, *,
                    rng: random.Random | None = None,
                    on_retry=None, sleep=time.sleep):
    """Run ``attempt_fn()`` under ``policy`` (blocking flavor).

    ``attempt_fn`` is called up to ``policy.attempts`` times; a
    non-retryable failure (or an exhausted budget) re-raises
    immediately.  ``on_retry(exc, retry_index)`` is invoked before
    each backoff — the hook clients use to reconnect after a
    connection-level failure.
    """
    budget = policy.budget
    if budget is not None:
        budget.record_attempt()
    for retry_index in range(policy.attempts):
        try:
            return attempt_fn()
        except BaseException as exc:  # noqa: BLE001 - classified below
            last_try = retry_index >= policy.attempts - 1
            if last_try or not policy.retryable(exc):
                raise
            if budget is not None and not budget.allow_retry():
                raise
            if on_retry is not None:
                on_retry(exc, retry_index)
            delay = policy.backoff_s(retry_index, rng)
            if delay > 0:
                sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover
