"""The asyncio transform service: router, per-plan services, server.

This is the first component that speaks to the outside world: an
asyncio front-end over the length-prefixed protocol
(:mod:`repro.serve.protocol`) that routes each request by
``(transform, n, dtype)`` to a per-plan pipeline::

    socket -> admission control -> BatchDispatcher -> ExecutableRoutine
              (bounded queue,       (coalesces          (c > numpy >
               deadline sheds)       concurrent          python circuit
                                     requests)           breakers)

Each stage already existed; the server is their first joint consumer:

* the **dispatcher** turns concurrent single-vector requests into
  ``apply_many`` batches (the per-request latency bound fixed in this
  package's PR is what makes its ``max_delay`` an honest SLO term);
* the **circuit breakers** degrade a faulting backend in place, so a
  poisoned native driver costs the fleet a speed tier, not an error
  storm of ``internal`` responses;
* the **admission controller** bounds each plan's in-flight queue and
  sheds doomed-deadline work with typed rejections instead of letting
  latency collapse.

Requests on one connection may be pipelined; responses carry the
request ``id`` and complete out of order.  The event loop never
blocks: plan builds (compiles) run in the default executor, and
request completion crosses back from the dispatcher's worker thread
via ``loop.call_soon_threadsafe`` — no thread is parked per in-flight
request.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from dataclasses import asdict

from repro.core.errors import SplError
from repro.runtime.dispatcher import BatchDispatcher, DispatcherClosed
from repro.serve.admission import AdmissionController
from repro.serve.errors import (
    BadRequest,
    ServeError,
    Unavailable,
)
from repro.serve.plans import Plan, PlanKey, PlanRegistry
from repro.serve.protocol import (
    bytes_to_vector,
    dtype_name,
    encode_frame,
    read_frame,
    resolve_dtype,
    vector_to_bytes,
)


class PlanService:
    """One routed plan: dispatcher + admission around an executable."""

    def __init__(self, plan: Plan, *, max_batch: int = 64,
                 max_delay: float = 0.002, queue_limit: int = 256,
                 threads: int | None = None):
        self.plan = plan
        self.dispatcher = BatchDispatcher(
            plan.executable, max_batch=max_batch, max_delay=max_delay,
            threads=threads,
        )
        self.admission = AdmissionController(
            queue_limit=queue_limit, batch_hint=max_batch,
        )

    def close(self, drain: bool = True) -> None:
        self.dispatcher.close(drain=drain)

    def stats(self) -> dict:
        return {
            "plan": self.plan.key.describe(),
            "from_wisdom": self.plan.from_wisdom,
            "backend": self.plan.executable.stats(),
            "admission": asdict(self.admission.stats()),
            "dispatch": asdict(self.dispatcher.stats),
        }


class Router:
    """Lazily builds one :class:`PlanService` per requested route."""

    def __init__(self, registry: PlanRegistry | None = None, *,
                 max_batch: int = 64, max_delay: float = 0.002,
                 queue_limit: int = 256, threads: int | None = None):
        self.registry = registry or PlanRegistry()
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.queue_limit = queue_limit
        self.threads = threads
        self._services: dict[PlanKey, PlanService] = {}
        self._lock = threading.Lock()
        self._closed = False

    def try_service(self, key: PlanKey) -> PlanService | None:
        """The already-built service for ``key`` (non-blocking)."""
        return self._services.get(key)

    def service(self, key: PlanKey) -> PlanService:
        """The service for ``key``, building its plan on first use.

        May compile (blocking); the server calls this off the event
        loop.  Raises ``BadRequest`` for unroutable keys and
        ``Unavailable`` once the router is closed.
        """
        existing = self._services.get(key)
        if existing is not None:
            return existing
        plan = self.registry.get(key)  # outside _lock: builds overlap
        with self._lock:
            if self._closed:
                raise Unavailable("router is shut down")
            existing = self._services.get(key)
            if existing is None:
                existing = self._services[key] = PlanService(
                    plan, max_batch=self.max_batch,
                    max_delay=self.max_delay,
                    queue_limit=self.queue_limit, threads=self.threads,
                )
            return existing

    def warm(self, keys: list[PlanKey]) -> list[PlanService]:
        return [self.service(key) for key in keys]

    def services(self) -> list[PlanService]:
        with self._lock:
            return list(self._services.values())

    def close(self, drain: bool = True) -> None:
        with self._lock:
            self._closed = True
            services = list(self._services.values())
        for service in services:
            service.close(drain=drain)

    def stats(self) -> dict:
        return {
            "registry": self.registry.stats(),
            "plans": [service.stats() for service in self.services()],
        }


class SplServer:
    """The asyncio front-end.

    ``await start()`` binds (``port=0`` picks an ephemeral port,
    exposed as ``.port``); ``warm`` prebuilds routes at boot — paired
    with a wisdom-backed registry this is the hot-boot path: the first
    request hits a compiled, search-tuned plan.
    """

    def __init__(self, router: Router | None = None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 warm: list[PlanKey] | None = None,
                 reuse_port: bool = False,
                 chaos=None):
        self.router = router or Router()
        self.host = host
        self.port = port
        self.warm_keys = list(warm or [])
        self.reuse_port = reuse_port
        self.chaos = chaos  # a repro.serve.chaos.ChaosInjector, or None
        self._server: asyncio.base_events.Server | None = None
        self._started_at: float | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._draining = False
        self._inflight = 0
        self._quiescent: asyncio.Event | None = None
        self.connections_accepted = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        loop = asyncio.get_running_loop()
        self._quiescent = asyncio.Event()
        self._quiescent.set()
        if self.warm_keys:
            await loop.run_in_executor(
                None, self.router.warm, self.warm_keys)
        # reuse_port is how a supervised fleet shares one address:
        # every worker binds its own SO_REUSEPORT listener on the same
        # (host, port) and the kernel load-balances connections.
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            reuse_port=self.reuse_port or None)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._started_at = time.monotonic()
        return self.host, self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def drain(self, grace: float = 30.0) -> bool:
        """Graceful drain: stop taking work, finish what was admitted.

        1. the listener closes — no new connections;
        2. new requests on live (pipelined) connections are rejected
           with a typed ``unavailable`` so well-behaved clients move
           to another worker;
        3. every transform already in flight runs to completion and
           its response is written (bounded by ``grace`` seconds).

        Returns True when in-flight work fully quiesced within the
        grace period.  Call :meth:`close` afterwards to tear down.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._quiescent is None:
            return True
        if self._inflight == 0:
            self._quiescent.set()
        try:
            await asyncio.wait_for(self._quiescent.wait(), grace)
            return True
        except asyncio.TimeoutError:
            return False

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks,
                                 return_exceptions=True)
        loop = asyncio.get_running_loop()
        # Dispatcher close joins worker threads: keep it off the loop.
        await loop.run_in_executor(None, self.router.close)

    # -- stats -------------------------------------------------------------

    def stats(self) -> dict:
        uptime = (time.monotonic() - self._started_at
                  if self._started_at is not None else 0.0)
        return {
            "uptime_s": uptime,
            "pid": os.getpid(),
            "draining": self._draining,
            "inflight": self._inflight,
            "connections_accepted": self.connections_accepted,
            **self.router.stats(),
        }

    # -- connection handling ------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.connections_accepted += 1
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        write_lock = asyncio.Lock()
        request_tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except BadRequest as exc:
                    # Framing is broken: report once, then hang up —
                    # there is no way to resynchronize the stream.
                    await self._send(writer, write_lock,
                                     exc.to_header())
                    break
                if frame is None:
                    break
                header, payload = frame
                op = header.get("op")
                if op == "transform":
                    # Pipelined: each request completes independently
                    # and responds tagged with its id.
                    req_task = asyncio.ensure_future(
                        self._serve_transform(header, payload, writer,
                                              write_lock))
                    request_tasks.add(req_task)
                    req_task.add_done_callback(request_tasks.discard)
                elif op == "ping":
                    await self._send(writer, write_lock, {
                        "status": "ok", "op": "ping",
                        "id": header.get("id"),
                    })
                elif op == "stats":
                    await self._send(writer, write_lock, {
                        "status": "ok", "op": "stats",
                        "id": header.get("id"), "stats": self.stats(),
                    })
                else:
                    await self._send(writer, write_lock, {
                        "status": "error", "code": "bad_request",
                        "id": header.get("id"),
                        "message": f"unknown op {op!r}",
                    })
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            for req_task in list(request_tasks):
                req_task.cancel()
            if request_tasks:
                try:
                    await asyncio.gather(*request_tasks,
                                         return_exceptions=True)
                except asyncio.CancelledError:
                    pass
            writer.close()
            try:
                # Swallow cancellation too: server close() cancels
                # connection tasks that may already be in here, and a
                # task ending "cancelled" makes asyncio's stream
                # machinery log a spurious error.
                await writer.wait_closed()
            except (ConnectionError, OSError,
                    asyncio.CancelledError):
                pass
            if task is not None:
                self._conn_tasks.discard(task)

    async def _send(self, writer: asyncio.StreamWriter,
                    write_lock: asyncio.Lock, header: dict,
                    payload: bytes = b"") -> None:
        async with write_lock:
            writer.write(encode_frame(header, payload))
            await writer.drain()

    async def _send_truncated(self, writer: asyncio.StreamWriter,
                              write_lock: asyncio.Lock, header: dict,
                              payload: bytes = b"") -> None:
        """Chaos only: half a frame, then a dead connection."""
        frame = encode_frame(header, payload)
        async with write_lock:
            writer.write(frame[:max(4, len(frame) // 2)])
            await writer.drain()
            writer.close()

    async def _serve_transform(self, header: dict, payload: bytes,
                               writer: asyncio.StreamWriter,
                               write_lock: asyncio.Lock) -> None:
        request_id = header.get("id")
        self._inflight += 1
        if self._quiescent is not None:
            self._quiescent.clear()
        try:
            try:
                response, result_payload = await self._execute(header,
                                                               payload)
            except ServeError as exc:
                response, result_payload = exc.to_header(), b""
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - typed for wire
                response = {"status": "error", "code": "internal",
                            "message": f"{type(exc).__name__}: {exc}"}
                result_payload = b""
            response["id"] = request_id
            chaos = self.chaos
            if chaos is not None and chaos.take_stall():
                # Chaos: hold the finished response so clients must
                # prove their per-request timeout fires.
                await asyncio.sleep(chaos.stall_s)
            try:
                if chaos is not None and chaos.take_truncate():
                    # Chaos: write a frame whose length prefix
                    # promises more bytes than follow, then hang up
                    # mid-frame.
                    await self._send_truncated(writer, write_lock,
                                               response,
                                               result_payload)
                else:
                    await self._send(writer, write_lock, response,
                                     result_payload)
            except (ConnectionError, OSError):
                pass  # client went away; work is already accounted
        finally:
            self._inflight -= 1
            if (self._inflight == 0 and self._draining
                    and self._quiescent is not None):
                self._quiescent.set()

    async def _execute(self, header: dict,
                       payload: bytes) -> tuple[dict, bytes]:
        arrival = time.monotonic()
        if self._draining:
            # Admitted work keeps running; *new* work is turned away
            # so pipelining clients re-dial onto a live worker.
            raise Unavailable("server is draining")
        key = PlanKey.from_header(header)
        deadline_ms = header.get("deadline_ms")
        deadline = None
        if deadline_ms is not None:
            if not isinstance(deadline_ms, (int, float)) \
                    or deadline_ms <= 0:
                raise BadRequest(f"bad deadline_ms {deadline_ms!r}")
            deadline = arrival + float(deadline_ms) / 1e3
        x = bytes_to_vector(payload, key.n, resolve_dtype(key.dtype))

        loop = asyncio.get_running_loop()
        service = self.router.try_service(key)
        if service is None:
            # First request for this route: build off the event loop.
            try:
                service = await loop.run_in_executor(
                    None, self.router.service, key)
            except SplError as exc:
                raise BadRequest(f"unplannable route "
                                 f"{key.describe()}: {exc}") from exc

        chaos = self.chaos
        if chaos is not None and chaos.take_trip():
            # Chaos: force the plan's circuit breaker to walk one tier
            # down, mid-load.  The request itself still executes (on
            # the degraded backend) and must stay bit-correct.
            chaos.force_trip(service.plan.executable)

        service.admission.try_admit(time.monotonic(), deadline)
        future: asyncio.Future = loop.create_future()

        def on_done(request) -> None:
            loop.call_soon_threadsafe(_resolve_future, future, request)

        try:
            service.dispatcher.submit(x, on_done)
        except DispatcherClosed as exc:
            service.admission.complete(arrival, time.monotonic(),
                                       ok=False)
            raise Unavailable(str(exc)) from exc
        except ValueError as exc:
            service.admission.complete(arrival, time.monotonic(),
                                       ok=False)
            raise BadRequest(str(exc)) from exc

        request = await future
        done_at = time.monotonic()
        error = request.error
        service.admission.complete(arrival, done_at,
                                   ok=error is None)
        if error is not None:
            if isinstance(error, DispatcherClosed):
                raise Unavailable(str(error))
            # The breakers already degraded through every tier; this
            # is the chain-exhausted (or poisoned-request) case.
            raise ServeError(f"{type(error).__name__}: {error}")
        result = request.result
        return (
            {
                "status": "ok",
                "n": int(result.shape[0]),
                "dtype": dtype_name(result.dtype),
                "server_ms": (done_at - arrival) * 1e3,
            },
            vector_to_bytes(result),
        )


def _resolve_future(future: asyncio.Future, request) -> None:
    if not future.done():
        future.set_result(request)
