"""Supervised multi-process serving: the ``spl serve --workers N`` fleet.

One asyncio event loop saturates around a few thousand requests/sec
and — worse — is a single point of failure: one segfaulting batch
takes the whole service down.  This module runs the service as a
*fleet*:

::

    supervisor (parent)
      |  fork x N                 SIGTERM -> graceful drain
      |  heartbeat pipes          SIGHUP  -> rolling restart
      |  exit-status watch        crash   -> backoff + restart budget
      v
    worker 0 .. worker N-1        each: SplServer on its own
                                  SO_REUSEPORT listener bound to the
                                  same (host, port); the kernel
                                  load-balances connections

**Crash recovery.**  The parent watches workers two ways: exit status
(a reaped child means a crash or a completed drain) and a heartbeat
pipe (each worker's event loop writes a byte every
``heartbeat_interval``; a silent-but-alive worker is *wedged* — its
loop is stuck even though the process lives — and is SIGKILLed).
Dead workers restart under exponential backoff with full jitter, and
a fleet-wide **restart budget** (a sliding window) breaks the
crash-restart-crash flap: once the window fills, further restarts are
refused and the fleet *degrades to fewer workers* until the window
slides clear, rather than burning CPU relaunching a doomed binary.

**Graceful drain.**  SIGTERM/SIGINT forwards SIGTERM to every worker;
each stops accepting, answers every request already admitted (via
``SplServer.drain`` over the dispatcher's drain hooks), then exits 0.
SIGHUP is a **rolling restart**: workers are drained and replaced one
at a time, so fleet capacity never drops by more than one worker.

The supervisor itself does no request work and holds no plan state —
it is a few hundred lines of fork/waitpid/select that can only fail
simple ways, which is the point: the blast radius of any serving bug
is one worker process.
"""

from __future__ import annotations

import asyncio
import collections
import errno
import os
import random
import selectors
import signal
import socket
import sys
import time
from dataclasses import dataclass, field

from repro.serve.chaos import injector_from_env
from repro.serve.plans import PlanKey, PlanRegistry

_HEARTBEAT = b"\x01"


def fork_supported() -> bool:
    """Can this host run the supervisor at all?"""
    return (hasattr(os, "fork") and hasattr(signal, "SIGCHLD")
            and hasattr(socket, "SO_REUSEPORT"))


# ---------------------------------------------------------------------------
# Shared serve configuration + the worker side.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ServeConfig:
    """Everything needed to stand up one :class:`SplServer`.

    Built once from the CLI arguments and shared by the single-process
    path and every forked worker, so a worker is guaranteed to serve
    exactly what ``spl serve`` without ``--workers`` would have.
    """

    host: str = "127.0.0.1"
    port: int = 0
    warm: tuple[PlanKey, ...] = ()
    wisdom_path: str | None = None
    pack_path: str | None = None
    prefer: str | None = None
    max_batch: int = 64
    max_delay: float = 0.002
    queue_limit: int = 256
    threads: int | None = None
    drain_grace_s: float = 30.0


def _boot_wisdom(config: ServeConfig):
    """(wisdom store or None, source label) for one server boot.

    A ``--pack`` pack is preferred over ``--wisdom``: packs are the
    deployment artifact (read-only, integrity-checked, optionally
    carrying compiled ``.so`` files).  Pack problems *never* crash the
    boot — every diagnostic goes to stderr and the server degrades to
    the plain wisdom store, or to no wisdom at all (estimate /
    search-on-demand), exactly as if the pack had not been shipped.
    """
    from repro.wisdom.store import WisdomStore

    if config.pack_path:
        from repro.wisdom.pack import load_pack

        result = load_pack(config.pack_path)
        for diagnostic in result.diagnostics:
            print(f"spl serve: pack {config.pack_path}: "
                  f"{diagnostic.describe()}", file=sys.stderr,
                  flush=True)
        if result.store is not None and len(result.store):
            print(f"spl serve: booting from pack {config.pack_path} "
                  f"({result.entries_loaded} entries, "
                  f"{result.artifacts_installed} artifacts installed)",
                  file=sys.stderr, flush=True)
            return result.store, "pack"
        print(f"spl serve: pack {config.pack_path} unusable; "
              f"degrading to "
              f"{'--wisdom store' if config.wisdom_path else 'no wisdom'}",
              file=sys.stderr, flush=True)
    if config.wisdom_path:
        return WisdomStore(config.wisdom_path), "store"
    return None, "none"


def build_server(config: ServeConfig, *, reuse_port: bool = False):
    """A fresh :class:`SplServer` from one :class:`ServeConfig`."""
    from repro.serve.server import Router, SplServer

    wisdom, wisdom_source = _boot_wisdom(config)
    registry = PlanRegistry(prefer=config.prefer, wisdom=wisdom,
                            wisdom_source=wisdom_source)
    router = Router(
        registry,
        max_batch=config.max_batch,
        max_delay=config.max_delay,
        queue_limit=config.queue_limit,
        threads=config.threads,
    )
    return SplServer(router, host=config.host, port=config.port,
                     warm=list(config.warm), reuse_port=reuse_port,
                     chaos=injector_from_env())


def run_worker(config: ServeConfig, *, reuse_port: bool = False,
               heartbeat_fd: int | None = None,
               heartbeat_interval: float = 0.5,
               install_signals: bool = True,
               port_file: str | None = None,
               label: str = "spl serve") -> int:
    """One serving process, drained gracefully on SIGTERM/SIGINT/SIGHUP.

    This is both the supervised worker body (``heartbeat_fd`` set,
    ``reuse_port=True``) and the whole of single-process ``spl serve``
    — so Ctrl-C and orchestrator stop get the same
    stop-accepting / answer-everything-admitted / exit-0 sequence in
    both modes.
    """
    return asyncio.run(_worker_amain(
        config, reuse_port=reuse_port, heartbeat_fd=heartbeat_fd,
        heartbeat_interval=heartbeat_interval,
        install_signals=install_signals, port_file=port_file,
        label=label))


async def _worker_amain(config: ServeConfig, *, reuse_port: bool,
                        heartbeat_fd: int | None,
                        heartbeat_interval: float,
                        install_signals: bool,
                        port_file: str | None,
                        label: str) -> int:
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    if install_signals:
        for signum in (signal.SIGTERM, signal.SIGINT, signal.SIGHUP):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # platform/thread without signal support

    server = build_server(config, reuse_port=reuse_port)
    host, port = await server.start()
    if port_file is not None:
        _publish_port(port_file, host, port)
    print(f"{label}: pid {os.getpid()} listening on {host}:{port} "
          f"(prefer={server.router.registry.prefer})",
          file=sys.stderr, flush=True)

    beat_task = None
    if heartbeat_fd is not None:
        async def beat() -> None:
            while True:
                try:
                    os.write(heartbeat_fd, _HEARTBEAT)
                except OSError:
                    # Supervisor is gone: orphaned workers drain and
                    # exit instead of serving forever unsupervised.
                    stop.set()
                    return
                await asyncio.sleep(heartbeat_interval)

        beat_task = asyncio.ensure_future(beat())

    try:
        await stop.wait()
        drained = await server.drain(grace=config.drain_grace_s)
        if not drained:
            print(f"{label}: pid {os.getpid()} drain grace expired "
                  f"with {server._inflight} in flight",
                  file=sys.stderr, flush=True)
        await server.close()
    finally:
        if beat_task is not None:
            beat_task.cancel()
    print(f"{label}: pid {os.getpid()} drained and stopped",
          file=sys.stderr, flush=True)
    return 0


def _publish_port(port_file: str, host: str, port: int) -> None:
    tmp = f"{port_file}.tmp.{os.getpid()}"
    with open(tmp, "w") as handle:
        handle.write(f"{host}:{port}\n")
    os.replace(tmp, port_file)


# ---------------------------------------------------------------------------
# Restart policy primitives (pure logic, unit-testable).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with full jitter for worker restarts.

    The delay before restart attempt ``k`` (1-based consecutive
    failures) is ``min(max_s, base_s * multiplier^(k-1))`` plus a
    uniform jitter draw of up to ``jitter`` of itself.  A worker that
    stayed up at least ``stable_after_s`` before dying resets the
    failure count: one crash per hour is an incident, not a flap.
    """

    base_s: float = 0.5
    multiplier: float = 2.0
    max_s: float = 15.0
    jitter: float = 0.25
    stable_after_s: float = 10.0

    def delay(self, consecutive_failures: int,
              rng: random.Random | None = None) -> float:
        k = max(1, consecutive_failures)
        base = min(self.max_s,
                   self.base_s * (self.multiplier ** (k - 1)))
        if self.jitter <= 0:
            return base
        return base + (rng or random).uniform(0, self.jitter * base)


class RestartBudget:
    """A fleet-wide sliding window bounding restarts per interval.

    ``try_spend(now)`` records a restart if fewer than ``budget``
    happened in the trailing ``window_s`` seconds; refusing is the
    breaker: the supervisor leaves the slot down (fewer workers, but
    no flap) and retries after :meth:`retry_after`.
    """

    def __init__(self, budget: int = 6, window_s: float = 30.0):
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        self.budget = int(budget)
        self.window_s = float(window_s)
        self._events: collections.deque[float] = collections.deque()
        self.spent = 0
        self.refused = 0

    def _evict(self, now: float) -> None:
        while self._events and now - self._events[0] >= self.window_s:
            self._events.popleft()

    def try_spend(self, now: float) -> bool:
        self._evict(now)
        if len(self._events) >= self.budget:
            self.refused += 1
            return False
        self._events.append(now)
        self.spent += 1
        return True

    def tripped(self, now: float) -> bool:
        self._evict(now)
        return len(self._events) >= self.budget

    def retry_after(self, now: float) -> float:
        """Seconds until the oldest windowed restart slides out."""
        self._evict(now)
        if len(self._events) < self.budget:
            return 0.0
        return max(0.0, self._events[0] + self.window_s - now)

    def remaining(self, now: float) -> int:
        """Restarts still available in the current window."""
        self._evict(now)
        return max(0, self.budget - len(self._events))


# ---------------------------------------------------------------------------
# The supervisor.
# ---------------------------------------------------------------------------

# Worker slot states.
STARTING = "starting"  # forked, no heartbeat yet
READY = "ready"  # heartbeating
DRAINING = "draining"  # SIGTERM sent (rolling restart / shutdown)
DOWN = "down"  # dead, restart scheduled at slot.restart_at
STOPPED = "stopped"  # shutdown complete


@dataclass
class WorkerSlot:
    """Parent-side bookkeeping for one worker position."""

    index: int
    pid: int | None = None
    heartbeat_fd: int | None = None
    state: str = DOWN
    started_at: float = 0.0
    last_beat: float = 0.0
    restart_at: float = 0.0
    consecutive_failures: int = 0
    restarts: int = 0
    rolling: bool = field(default=False)  # mid rolling-restart


class Supervisor:
    """Fork, watch, restart, drain.  Blocks in :meth:`run`.

    Must run on the main thread of a process it owns (it installs
    signal handlers and forks); tests and the chaos harness drive it
    through the real CLI in a subprocess.
    """

    def __init__(self, config: ServeConfig, *, workers: int,
                 heartbeat_interval: float = 0.5,
                 heartbeat_timeout: float = 5.0,
                 boot_grace_s: float = 60.0,
                 backoff: BackoffPolicy | None = None,
                 budget: RestartBudget | None = None,
                 port_file: str | None = None,
                 status_file: str | None = None,
                 rng: random.Random | None = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if not fork_supported():
            raise RuntimeError(
                "supervised serving needs fork, SIGCHLD and "
                "SO_REUSEPORT (run with --workers 1 here)")
        self.config = config
        self.workers = workers
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.boot_grace_s = boot_grace_s
        self.backoff = backoff or BackoffPolicy()
        self.budget = budget or RestartBudget()
        self.port_file = port_file
        self.status_file = status_file
        self._last_status_json: str | None = None
        self._rng = rng or random.Random()
        self.slots = [WorkerSlot(index=i) for i in range(workers)]
        self._fd_slots: dict[int, WorkerSlot] = {}
        self._selector = selectors.DefaultSelector()
        self._reserve_sock: socket.socket | None = None
        self._wake_r, self._wake_w = -1, -1
        self._stop_requested = False
        self._hup_requested = False
        self._stopping = False
        self._roll_queue: collections.deque[int] = collections.deque()
        self._roll_slot: int | None = None
        self._roll_deadline = 0.0
        self.wedge_kills = 0
        self.crashes = 0

    # -- logging -------------------------------------------------------

    def _log(self, message: str) -> None:
        print(f"spl serve[supervisor]: {message}", file=sys.stderr,
              flush=True)

    # -- address reservation -------------------------------------------

    def _reserve_address(self) -> tuple[str, int]:
        """Bind a non-listening SO_REUSEPORT socket to pin the port.

        Workers each bind their own listening SO_REUSEPORT socket to
        the same address; holding this one in the parent keeps the
        port reserved across the window where every worker is dead
        (mid-restart), so no other process can steal the address.
        A bound-but-not-listening socket receives no connections —
        the kernel balances only across *listening* sockets.
        """
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((self.config.host, self.config.port))
        host, port = sock.getsockname()[:2]
        self._reserve_sock = sock
        return host, port

    # -- child management ----------------------------------------------

    def _spawn(self, slot: WorkerSlot) -> None:
        rfd, wfd = os.pipe()
        os.set_blocking(rfd, False)
        pid = os.fork()
        if pid == 0:
            # Child: drop every parent-side resource, restore default
            # signal dispositions (the parent's flag-setting handlers
            # reference parent state), then become a worker.
            code = 70
            try:
                for signum in (signal.SIGTERM, signal.SIGINT,
                               signal.SIGHUP, signal.SIGCHLD):
                    signal.signal(signum, signal.SIG_DFL)
                os.close(rfd)
                if self._reserve_sock is not None:
                    self._reserve_sock.close()
                for fd in (self._wake_r, self._wake_w):
                    if fd >= 0:
                        os.close(fd)
                for other in self.slots:
                    if (other.heartbeat_fd is not None
                            and other is not slot):
                        os.close(other.heartbeat_fd)
                code = run_worker(
                    self.config, reuse_port=True, heartbeat_fd=wfd,
                    heartbeat_interval=self.heartbeat_interval,
                    install_signals=True,
                    label=f"spl serve[worker {slot.index}]")
            except BaseException:  # noqa: BLE001 - report, then die
                import traceback

                traceback.print_exc()
            finally:
                os._exit(code)
        # Parent.
        os.close(wfd)
        now = time.monotonic()
        slot.pid = pid
        slot.heartbeat_fd = rfd
        slot.state = STARTING
        slot.started_at = now
        slot.last_beat = now
        self._fd_slots[rfd] = slot
        self._selector.register(rfd, selectors.EVENT_READ)
        self._log(f"worker {slot.index} started (pid {pid})")

    def _release_fd(self, slot: WorkerSlot) -> None:
        fd = slot.heartbeat_fd
        if fd is None:
            return
        try:
            self._selector.unregister(fd)
        except KeyError:
            pass
        self._fd_slots.pop(fd, None)
        try:
            os.close(fd)
        except OSError:
            pass
        slot.heartbeat_fd = None

    def _reap(self) -> None:
        while True:
            try:
                pid, status = os.waitpid(-1, os.WNOHANG)
            except ChildProcessError:
                return
            if pid == 0:
                return
            slot = next((s for s in self.slots if s.pid == pid), None)
            if slot is None:
                continue
            self._on_exit(slot, os.waitstatus_to_exitcode(status))

    def _on_exit(self, slot: WorkerSlot, code: int) -> None:
        now = time.monotonic()
        alive_s = now - slot.started_at
        self._release_fd(slot)
        slot.pid = None
        was_draining = slot.state == DRAINING
        if self._stopping:
            slot.state = STOPPED
            return
        if was_draining and slot.rolling:
            # Deliberate rolling replacement: no backoff, no budget.
            slot.rolling = False
            slot.consecutive_failures = 0
            self._log(f"worker {slot.index} drained for rolling "
                      f"restart (code {code}); replacing")
            self._spawn(slot)
            return
        # Crash, wedge-kill, or an exit nobody asked for.
        self.crashes += 1
        if alive_s >= self.backoff.stable_after_s:
            slot.consecutive_failures = 0
        slot.consecutive_failures += 1
        delay = self.backoff.delay(slot.consecutive_failures,
                                   self._rng)
        slot.state = DOWN
        slot.restart_at = now + delay
        cause = (f"signal {-code}" if code < 0 else f"code {code}")
        self._log(f"worker {slot.index} died ({cause}, up "
                  f"{alive_s:.1f}s); restart in {delay:.2f}s "
                  f"(failure #{slot.consecutive_failures})")

    def _process_restarts(self, now: float) -> None:
        for slot in self.slots:
            if slot.state != DOWN or now < slot.restart_at:
                continue
            if self.budget.try_spend(now):
                slot.restarts += 1
                self._spawn(slot)
            else:
                retry = max(1.0, self.budget.retry_after(now))
                slot.restart_at = now + retry
                alive = sum(1 for s in self.slots
                            if s.pid is not None)
                self._log(
                    f"restart budget exhausted "
                    f"({self.budget.budget}/{self.budget.window_s:g}s"
                    f"); degraded to {alive} worker(s), retrying "
                    f"slot {slot.index} in {retry:.1f}s")

    def _check_wedged(self, now: float) -> None:
        for slot in self.slots:
            if slot.pid is None:
                continue
            if slot.state == READY:
                silent = now - slot.last_beat
                if silent > self.heartbeat_timeout:
                    self.wedge_kills += 1
                    self._log(f"worker {slot.index} (pid {slot.pid}) "
                              f"silent for {silent:.1f}s: wedged, "
                              f"killing")
                    self._kill(slot)
            elif slot.state == STARTING:
                if now - slot.started_at > self.boot_grace_s:
                    self.wedge_kills += 1
                    self._log(f"worker {slot.index} (pid {slot.pid}) "
                              f"never became ready: killing")
                    self._kill(slot)

    def _kill(self, slot: WorkerSlot) -> None:
        if slot.pid is None:
            return
        try:
            os.kill(slot.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass

    def _drain_heartbeats(self, slot: WorkerSlot) -> None:
        fd = slot.heartbeat_fd
        if fd is None:
            return
        got = False
        while True:
            try:
                chunk = os.read(fd, 4096)
            except BlockingIOError:
                break
            except OSError:
                break
            if not chunk:
                break  # EOF: the reap will handle the exit
            got = True
        if got:
            slot.last_beat = time.monotonic()
            if slot.state == STARTING:
                slot.state = READY
                self._log(f"worker {slot.index} (pid {slot.pid}) "
                          f"ready")

    # -- rolling restart ----------------------------------------------

    def _begin_rolling(self) -> None:
        if self._roll_queue or self._roll_slot is not None:
            return  # a roll is already in progress
        self._roll_queue.extend(range(len(self.slots)))
        self._log(f"rolling restart of {len(self.slots)} worker(s)")

    def _advance_rolling(self, now: float) -> None:
        if self._roll_slot is None:
            while self._roll_queue:
                index = self._roll_queue.popleft()
                slot = self.slots[index]
                if slot.pid is None:
                    continue  # already down; restart path owns it
                slot.state = DRAINING
                slot.rolling = True
                self._roll_slot = index
                self._roll_deadline = (
                    now + self.config.drain_grace_s + 5.0)
                try:
                    os.kill(slot.pid, signal.SIGTERM)
                except ProcessLookupError:
                    pass
                self._log(f"rolling: draining worker {index} "
                          f"(pid {slot.pid})")
                return
            return
        slot = self.slots[self._roll_slot]
        if slot.state == DRAINING and now > self._roll_deadline:
            self._log(f"rolling: worker {slot.index} ignored drain; "
                      f"killing")
            self._kill(slot)
            self._roll_deadline = now + 5.0
        elif slot.state == READY:
            # The replacement is heartbeating: move to the next slot.
            self._roll_slot = None
        elif slot.state == DOWN:
            # Replacement crashed at boot; the restart machinery owns
            # the slot now — do not stall the roll behind it.
            self._roll_slot = None

    # -- signals -------------------------------------------------------

    def _install_signals(self) -> dict:
        previous = {}

        def request_stop(signum, frame):  # noqa: ARG001
            self._stop_requested = True
            self._wake()

        def request_hup(signum, frame):  # noqa: ARG001
            self._hup_requested = True
            self._wake()

        def on_chld(signum, frame):  # noqa: ARG001
            self._wake()

        for signum, handler in ((signal.SIGTERM, request_stop),
                                (signal.SIGINT, request_stop),
                                (signal.SIGHUP, request_hup),
                                (signal.SIGCHLD, on_chld)):
            previous[signum] = signal.signal(signum, handler)
        return previous

    def _wake(self) -> None:
        if self._wake_w >= 0:
            try:
                os.write(self._wake_w, b"w")
            except OSError:
                pass

    # -- the main loop -------------------------------------------------

    def status(self) -> dict:
        now = time.monotonic()
        return {
            "workers": self.workers,
            "alive": sum(1 for s in self.slots if s.pid is not None),
            "ready": sum(1 for s in self.slots if s.state == READY),
            "crashes": self.crashes,
            "wedge_kills": self.wedge_kills,
            "restarts": sum(s.restarts for s in self.slots),
            "budget_tripped": self.budget.tripped(now),
            "budget_spent": self.budget.spent,
            "budget_refused": self.budget.refused,
            "budget_remaining": self.budget.remaining(now),
            "stopping": self._stopping or self._stop_requested,
            "rolling": self._roll_slot is not None
                       or bool(self._roll_queue),
            "slots": [
                {
                    "index": s.index,
                    "pid": s.pid,
                    "state": s.state,
                    "restarts": s.restarts,
                    "consecutive_failures": s.consecutive_failures,
                }
                for s in self.slots
            ],
        }

    def _maybe_publish_status(self) -> None:
        """Atomically write :meth:`status` as JSON on every change.

        Orchestrators tail this file instead of parsing the stderr
        log.  The write is temp-file + rename (readers never see a
        partial document) and is skipped when nothing changed, so the
        steady-state fleet does not rewrite the file once per poll.
        Write failures are logged once per change, never fatal: losing
        observability must not take down serving.
        """
        if self.status_file is None:
            return
        import json

        text = json.dumps(self.status(), sort_keys=True)
        if text == self._last_status_json:
            return
        self._last_status_json = text
        tmp = f"{self.status_file}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w") as handle:
                handle.write(text + "\n")
            os.replace(tmp, self.status_file)
        except OSError as exc:
            self._log(f"status file write failed: {exc}")
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def run(self) -> int:
        host, port = self._reserve_address()
        if self.port_file is not None:
            _publish_port(self.port_file, host, port)
        self._log(f"supervising {self.workers} worker(s) on "
                  f"{host}:{port} (SIGTERM drains, SIGHUP rolls)")
        # Pin the resolved address so every forked worker binds it.
        self.config = ServeConfig(**{
            **self.config.__dict__, "host": host, "port": port})
        self._wake_r, self._wake_w = os.pipe()
        os.set_blocking(self._wake_r, False)
        os.set_blocking(self._wake_w, False)
        self._selector.register(self._wake_r, selectors.EVENT_READ)
        previous = self._install_signals()
        try:
            # Initial boot is not a restart: it never spends budget.
            for slot in self.slots:
                self._spawn(slot)
            self._maybe_publish_status()
            while True:
                timeout = self._poll_timeout()
                for key, _ in self._selector.select(timeout):
                    if key.fd == self._wake_r:
                        while True:
                            try:
                                if not os.read(self._wake_r, 4096):
                                    break
                            except (BlockingIOError, OSError):
                                break
                    else:
                        slot = self._fd_slots.get(key.fd)
                        if slot is not None:
                            self._drain_heartbeats(slot)
                self._reap()
                if self._stop_requested:
                    break
                if self._hup_requested:
                    self._hup_requested = False
                    self._begin_rolling()
                now = time.monotonic()
                self._check_wedged(now)
                self._advance_rolling(now)
                self._process_restarts(now)
                self._maybe_publish_status()
            return self._shutdown()
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
            self._selector.close()
            for fd in (self._wake_r, self._wake_w):
                if fd >= 0:
                    try:
                        os.close(fd)
                    except OSError:
                        pass
            if self._reserve_sock is not None:
                self._reserve_sock.close()

    def _poll_timeout(self) -> float:
        now = time.monotonic()
        horizon = now + 1.0
        for slot in self.slots:
            if slot.state == DOWN:
                horizon = min(horizon, slot.restart_at)
            elif slot.pid is not None:
                horizon = min(
                    horizon, slot.last_beat + self.heartbeat_timeout)
        if self._roll_slot is not None:
            horizon = min(horizon, self._roll_deadline)
        return max(0.05, horizon - now)

    def _shutdown(self) -> int:
        self._stopping = True
        alive = [s for s in self.slots if s.pid is not None]
        self._log(f"shutting down: draining {len(alive)} worker(s)")
        for slot in alive:
            slot.state = DRAINING
            try:
                os.kill(slot.pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
        self._maybe_publish_status()
        deadline = time.monotonic() + self.config.drain_grace_s + 5.0
        while (any(s.pid is not None for s in self.slots)
               and time.monotonic() < deadline):
            self._selector.select(0.05)
            self._reap()
        for slot in self.slots:
            if slot.pid is not None:
                self._log(f"worker {slot.index} ignored drain; "
                          f"killing")
                self._kill(slot)
                try:
                    os.waitpid(slot.pid, 0)
                except (ChildProcessError, OSError):
                    pass
                slot.pid = None
                self._release_fd(slot)
                slot.state = STOPPED
        self._log("fleet stopped")
        self._maybe_publish_status()
        return 0
