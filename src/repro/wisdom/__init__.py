"""Wisdom: memoized compilation and persistent best-plan storage.

FFTW amortizes planning cost with *wisdom* — remembered planner
outcomes keyed by machine and problem.  This package gives the
reproduction the same capability at three levels:

* :mod:`repro.wisdom.keys` — cache-key construction (compile keys,
  options hashes, the host platform fingerprint);
* :mod:`repro.wisdom.store` — :class:`WisdomStore`, a JSON-backed
  table of best-found formulas/plans with hit/miss/bytes counters and
  graceful fallback on corrupt or foreign files;
* :mod:`repro.wisdom.parallel` — concurrent candidate compilation and
  measurement with deterministic winner selection.

The in-process half (memoizing ``SplCompiler.compile_formula``) lives
inside the compiler session itself but builds its keys here.
"""

from repro.wisdom.keys import (
    compile_key,
    options_fingerprint,
    options_hash,
    platform_fingerprint,
    wisdom_key,
)
from repro.wisdom.parallel import (
    map_indexed,
    pick_winner,
    precompile_sources,
    resolve_jobs,
)
from repro.wisdom.store import WISDOM_VERSION, WisdomEntry, WisdomStore

__all__ = [
    "WISDOM_VERSION",
    "WisdomEntry",
    "WisdomStore",
    "compile_key",
    "map_indexed",
    "options_fingerprint",
    "options_hash",
    "pick_winner",
    "platform_fingerprint",
    "precompile_sources",
    "resolve_jobs",
    "wisdom_key",
]
