"""Cache keys for the wisdom subsystem.

Two kinds of keys are produced here:

* **compile keys** — in-process memoization keys for
  :meth:`repro.core.compiler.SplCompiler.compile_formula`: the SPL text
  of the (already parsed and vectorized) formula plus every knob that
  changes the generated code;
* **wisdom keys** — persistent keys for best-found plans, combining
  the transform name, the size, a hash of the compiler options and a
  fingerprint of the host platform (FFTW's wisdom is likewise only
  valid on the machine that produced it).

This module deliberately imports nothing from :mod:`repro.core` so the
compiler driver can use it without an import cycle.
"""

from __future__ import annotations

import hashlib
from dataclasses import fields, is_dataclass
from functools import lru_cache


def options_fingerprint(options: object | None) -> str:
    """A stable, human-readable rendering of a compiler-options object.

    Works on any dataclass (field order is the declaration order, which
    is stable across runs); ``None`` means "default options".
    """
    if options is None:
        return "default"
    if is_dataclass(options) and not isinstance(options, type):
        pairs = ((f.name, getattr(options, f.name)) for f in fields(options))
        return ";".join(f"{name}={value!r}" for name, value in pairs)
    return repr(options)


def _digest(text: str, length: int = 16) -> str:
    return hashlib.sha256(text.encode()).hexdigest()[:length]


def options_hash(options: object | None) -> str:
    """A short stable hash of :func:`options_fingerprint`."""
    return _digest(options_fingerprint(options))


def compile_key(formula_spl: str, options: object | None, *,
                datatype: str | None, language: str | None,
                strided: bool, vectorize: int,
                template_version: int = 0,
                limits_fingerprint: str = "default") -> tuple:
    """The in-process memoization key for one ``compile_formula`` call.

    ``template_version`` folds in the compiler session's template-table
    version so that registering new templates (e.g. search-generated
    codelets) correctly invalidates earlier results.
    ``limits_fingerprint`` does the same for resource limits: a routine
    compiled under one budget must not satisfy a request made under
    another (tighter limits could have rejected it).
    """
    return (
        formula_spl,
        options_fingerprint(options),
        datatype,
        language,
        bool(strided),
        int(vectorize),
        int(template_version),
        limits_fingerprint,
    )


def platform_fingerprint() -> str:
    """A short hash identifying the host for persistent wisdom.

    Wisdom measured on one machine is meaningless on another, so the
    fingerprint covers exactly the inventory that determines generated
    code speed: CPU model, cache sizes, OS and host C compiler (the
    Table 1 fields, minus total memory which does not affect codelet
    choice), plus the compilation mode — extra host-compiler flags
    (``SPL_CFLAGS``, e.g. ``-march=native``), OpenMP availability, and
    the execution tiers in play (``#pragma omp simd`` support and
    whether the in-process JIT is enabled, since both change which
    code actually gets timed) — so timings measured under one
    configuration never validate a cache built under another.
    """
    return _digest(platform_description())


def platform_description() -> str:
    """The human-readable string behind :func:`platform_fingerprint`."""
    from repro.perfeval.ccompile import (
        extra_cflags,
        have_openmp,
        have_openmp_simd,
    )
    from repro.perfeval.jit import jit_supported

    return _host_description(extra_cflags(), have_openmp(),
                             have_openmp_simd(), jit_supported())


def hardware_fingerprint() -> str:
    """A short hash of the host *hardware* alone (CPU, caches, OS).

    Unlike :func:`platform_fingerprint` this deliberately excludes the
    toolchain inventory (host compiler, OpenMP/SIMD/JIT availability,
    ``SPL_CFLAGS``): wisdom *packs* ship portable artifacts precisely
    so a replica without the producer's toolchain can boot hot, so a
    pack is acceptable anywhere the hardware matches even when the
    compilation mode differs.  Mutable stores keep using the strict
    fingerprint — their timings feed back into search decisions.
    """
    return _digest(hardware_description())


def hardware_description() -> str:
    """The human-readable string behind :func:`hardware_fingerprint`."""
    from repro.perfeval.platform import host_platform

    row = host_platform()
    return "|".join((row.cpu, row.l1_cache, row.l2_cache, row.os_name))


@lru_cache(maxsize=None)
def _host_description(cflags: tuple[str, ...], openmp: bool,
                      openmp_simd: bool = False,
                      jit: bool = False) -> str:
    # The hardware inventory is immutable per process; only the flag
    # set varies, so cache one description per configuration tuple.
    from repro.perfeval.platform import host_platform

    row = host_platform()
    return "|".join((row.cpu, row.l1_cache, row.l2_cache,
                     row.os_name, row.compiler,
                     " ".join(cflags) or "-",
                     "openmp" if openmp else "no-openmp",
                     "simd" if openmp_simd else "no-simd",
                     "jit" if jit else "no-jit"))


def wisdom_key(transform: str, n: int, options: object | None = None,
               limits: object | None = None) -> str:
    """The persistent-store key: ``transform:n:options-hash``.

    The platform fingerprint is *not* part of the per-entry key — it is
    checked once per wisdom file (the whole file is discarded on a
    platform mismatch), exactly like the format version.

    ``limits`` (a ``CompileLimits``-like object with a ``fingerprint()``
    method) is folded in only when it differs from the defaults, so
    plans searched under a constrained budget never masquerade as
    default-budget wisdom — while keys written by earlier versions stay
    valid for default-limit sessions.
    """
    key = f"{transform}:{n}:{options_hash(options)}"
    if limits is not None:
        fingerprint = limits.fingerprint()
        try:
            from repro.core.limits import DEFAULT_LIMITS
            is_default = fingerprint == DEFAULT_LIMITS.fingerprint()
        except ImportError:  # pragma: no cover - core always importable
            is_default = False
        if not is_default:
            key += f":l{_digest(fingerprint, 8)}"
    return key
