"""Deployable wisdom packs: FFTW's wisdom model at fleet scale.

A *pack* is a single JSON manifest that ships everything a replica
needs to serve its first request hot: the wisdom entries (search
winners), a platform fingerprint saying where they are valid, and —
optionally — the compiled shared objects themselves, keyed by the
exact :func:`repro.perfeval.ccompile.shared_object_cache_key` digest a
booting :class:`~repro.serve.plans.PlanRegistry` will ask for.  A
gcc-less replica that installs those artifacts into its build dir
cache-hits on first compile and never invokes a toolchain or a
search.

Integrity is layered so damage degrades instead of spreading:

* every entry carries its own SHA-256, and the whole pack carries one
  over the canonical payload — a flipped byte invalidates exactly the
  entries it touched, and the rest of the pack is *salvaged*;
* a foreign-platform or unknown-version pack is rejected whole with a
  typed :class:`PackDiagnostic` — the consumer falls back to
  search/estimate-on-demand.  "Foreign" is judged on two levels: an
  exact platform-fingerprint match is ideal, but a pack whose
  *hardware* fingerprint (CPU, caches, OS) matches is accepted even
  when the toolchain inventory differs — a replica with no C compiler
  is precisely the consumer packs exist for;
* :func:`load_pack` **never raises**: every failure mode returns
  diagnostics and counters, because a bad pack on disk must never
  turn into a crashed boot.

Artifacts are bundled in their *portable* variant (no OpenMP, no SIMD
flags — the build a host whose toolchain probes all report False would
request), so they are exactly the digests a toolchain-less consumer
computes.  Hosts with a full toolchain ignore them and compile their
own optimal variant; nothing is lost either way.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.wisdom.keys import (
    hardware_fingerprint,
    platform_description,
    platform_fingerprint,
)
from repro.wisdom.store import WISDOM_VERSION, WisdomEntry, WisdomStore

PACK_FORMAT = "spl-wisdom-pack"
PACK_VERSION = 1

#: Diagnostic kinds, roughly ordered from "the file is not a pack" to
#: "one piece of an otherwise good pack is damaged".
DIAGNOSTIC_KINDS = ("io", "json", "format", "version", "platform",
                    "pack-checksum", "entry", "artifact")


def _canonical(data: Any) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def _payload_checksum(payload: dict) -> str:
    """The whole-pack checksum: everything except the checksum field."""
    trimmed = {key: value for key, value in payload.items()
               if key != "checksum"}
    return _sha256(_canonical(trimmed))


@dataclass(frozen=True)
class PackDiagnostic:
    """One typed integrity/compatibility finding; never an exception."""

    kind: str  # one of DIAGNOSTIC_KINDS
    detail: str

    def describe(self) -> str:
        return f"[{self.kind}] {self.detail}"


@dataclass
class PackLoadResult:
    """What :func:`load_pack` recovered, plus why anything was lost.

    ``store`` is an in-memory read-only :class:`WisdomStore` holding
    the verified entries — or None when the pack was unusable as a
    whole (unreadable, foreign platform, unknown version): the caller
    should then serve with whatever wisdom it already had, or none.
    """

    store: WisdomStore | None = None
    diagnostics: list[PackDiagnostic] = field(default_factory=list)
    entries_loaded: int = 0
    entries_skipped: int = 0
    artifacts_installed: int = 0
    artifacts_skipped: int = 0

    @property
    def ok(self) -> bool:
        return self.store is not None and not self.diagnostics

    def describe(self) -> str:
        if self.store is None:
            reason = self.diagnostics[0].describe() \
                if self.diagnostics else "empty"
            return f"pack unusable: {reason}"
        bits = [f"{self.entries_loaded} entries"]
        if self.entries_skipped:
            bits.append(f"{self.entries_skipped} skipped")
        if self.artifacts_installed or self.artifacts_skipped:
            bits.append(f"{self.artifacts_installed} artifacts installed")
        if self.artifacts_skipped:
            bits.append(f"{self.artifacts_skipped} artifacts skipped")
        return "pack loaded: " + ", ".join(bits)


# ---------------------------------------------------------------------------
# Building.
# ---------------------------------------------------------------------------


def _registry_build_inputs(entry: WisdomEntry):
    """(source, cflags, openmp, key_extra) a booting registry will ask
    the shared-object cache for — portable variant — or None.

    Mirrors :meth:`repro.serve.plans.PlanRegistry.get` exactly: same
    compiler options (``codetype="real"`` with the registry default or
    the entry's winning ``-B`` threshold), same routine name, same
    datatype/language — any drift makes the bundled artifact a cache
    miss (harmless, but cold).
    """
    from repro.core.compiler import CompilerOptions, SplCompiler
    from repro.core.parser import parse_formula_text
    from repro.perfeval.runner import c_build_spec
    from repro.search.dp import SMALL_TRANSFORM

    if entry.transform != SMALL_TRANSFORM:
        return None
    threshold = entry.meta.get("unroll_threshold")
    compiler = SplCompiler(CompilerOptions(
        codetype="real",
        unroll_threshold=16 if threshold is None else threshold,
    ))
    formula = parse_formula_text(entry.formula, compiler.defines)
    routine = compiler.compile_formula(
        formula, f"serve_fft{entry.n}", datatype="complex", language="c")
    return c_build_spec(routine, (), openmp=False, simd=False)


def build_pack(store: WisdomStore, out_path: str | os.PathLike, *,
               include_artifacts: bool = True,
               platform: str | None = None) -> dict[str, Any]:
    """Export ``store`` as a pack file; returns a build summary.

    Artifacts are compiled on the spot (portable variant) for every
    FFT search winner; a host without a C compiler — or an entry whose
    formula no longer compiles — skips that artifact (counted) and
    still ships the wisdom itself.
    """
    from repro.perfeval import ccompile

    entries: dict[str, Any] = {}
    for key, entry in sorted(store.entries.items()):
        raw = entry.to_json()
        entries[key] = {"entry": raw, "sha256": _sha256(_canonical(raw))}

    artifacts: dict[str, Any] = {}
    artifacts_skipped = 0
    if include_artifacts:
        for key, entry in sorted(store.entries.items()):
            try:
                spec = _registry_build_inputs(entry)
                if spec is None:
                    continue
                source, cflags, openmp, key_extra = spec
                digest = ccompile.shared_object_cache_key(
                    source, cflags=cflags, openmp=openmp,
                    key_extra=key_extra)
                if digest in artifacts:
                    continue
                so_path = ccompile.compile_shared_object(
                    source, cflags=cflags, openmp=openmp,
                    key_extra=key_extra)
                data = so_path.read_bytes()
            except Exception as exc:  # noqa: BLE001 - artifact optional
                artifacts_skipped += 1
                continue
            artifacts[digest] = {
                "sha256": hashlib.sha256(data).hexdigest(),
                "data": base64.b64encode(data).decode("ascii"),
                "meta": {"transform": entry.transform, "n": entry.n,
                         "unroll_threshold":
                             entry.meta.get("unroll_threshold")},
            }

    payload = {
        "format": PACK_FORMAT,
        "version": PACK_VERSION,
        "wisdom_version": WISDOM_VERSION,
        "platform": platform or store.platform,
        # The hardware-only fingerprint is the *portable* validity
        # domain: a consumer whose toolchain differs (most importantly:
        # has none) still accepts the pack when the hardware matches.
        # An explicit ``platform`` override marks the pack foreign on
        # both levels — that is what the override is for.
        "hardware": platform or hardware_fingerprint(),
        "platform_info": platform_description(),
        "entries": entries,
        "artifacts": artifacts,
    }
    payload["checksum"] = _payload_checksum(payload)
    out_path = Path(out_path)
    text = json.dumps(payload, indent=1, sort_keys=True)
    tmp = out_path.with_name(f"{out_path.name}.{os.getpid()}.tmp")
    out_path.parent.mkdir(parents=True, exist_ok=True)
    tmp.write_text(text, encoding="utf-8")
    tmp.replace(out_path)
    return {
        "path": str(out_path),
        "entries": len(entries),
        "artifacts": len(artifacts),
        "artifacts_skipped": artifacts_skipped,
        "bytes": len(text.encode()),
        "platform": payload["platform"],
    }


# ---------------------------------------------------------------------------
# Reading / verification / loading.
# ---------------------------------------------------------------------------


def _read_manifest(path: str | os.PathLike,
                   ) -> tuple[dict | None, PackDiagnostic | None]:
    try:
        text = Path(path).read_text(encoding="utf-8")
    except FileNotFoundError:
        return None, PackDiagnostic("io", f"pack not found: {path}")
    except (OSError, UnicodeDecodeError) as exc:
        return None, PackDiagnostic("io", f"cannot read pack: {exc}")
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        return None, PackDiagnostic("json", f"pack is not JSON: {exc}")
    if not isinstance(data, dict) or data.get("format") != PACK_FORMAT:
        return None, PackDiagnostic(
            "format", "not a wisdom pack (missing format marker)")
    if data.get("version") != PACK_VERSION:
        return None, PackDiagnostic(
            "version",
            f"pack version {data.get('version')!r} is not the "
            f"supported {PACK_VERSION} (rebuild the pack)")
    return data, None


def _platform_mismatch(data: dict, platform: str | None,
                       ) -> PackDiagnostic | None:
    """The typed rejection when the pack fits this host nowhere.

    Acceptance is layered: an exact platform-fingerprint match is
    ideal; failing that, a matching *hardware* fingerprint (same CPU,
    caches, OS — but, say, no C compiler on this replica) still
    accepts the pack, because its artifacts are built in the portable
    variant exactly for that consumer.  Only a pack alien on both
    levels is rejected.
    """
    local = platform or platform_fingerprint()
    if data.get("platform") == local:
        return None
    local_hw = platform or hardware_fingerprint()
    # Pre-hardware-field packs fall back to the strict fingerprint.
    pack_hw = data.get("hardware", data.get("platform"))
    if pack_hw == local_hw:
        return None
    return PackDiagnostic(
        "platform",
        f"pack built for platform {data.get('platform')!r} "
        f"(hardware {pack_hw!r}), this host is {local!r} "
        f"(hardware {local_hw!r})")


def verify_pack(path: str | os.PathLike, *, platform: str | None = None,
                ) -> tuple[bool, list[PackDiagnostic], dict[str, Any]]:
    """Full integrity check: ``(ok, diagnostics, info)``; never raises.

    ``ok`` means byte-perfect *and* valid on this platform.  ``info``
    summarizes what the pack claims (counts, platform) even when
    verification fails, so operators can see what they are holding.
    """
    diagnostics: list[PackDiagnostic] = []
    data, fatal = _read_manifest(path)
    if data is None:
        return False, [fatal], {}
    info = {
        "path": str(path),
        "platform": data.get("platform"),
        "platform_info": data.get("platform_info"),
        "wisdom_version": data.get("wisdom_version"),
        "entries": len(data.get("entries") or {}),
        "artifacts": len(data.get("artifacts") or {}),
    }
    mismatch = _platform_mismatch(data, platform)
    if mismatch is not None:
        diagnostics.append(mismatch)
    if data.get("checksum") != _payload_checksum(data):
        diagnostics.append(PackDiagnostic(
            "pack-checksum", "whole-pack checksum mismatch "
            "(truncated or tampered file)"))
    entries = data.get("entries")
    if not isinstance(entries, dict):
        diagnostics.append(PackDiagnostic("entry",
                                          "entries table missing"))
        entries = {}
    for key, wrapped in entries.items():
        try:
            raw, sha = wrapped["entry"], wrapped["sha256"]
        except (KeyError, TypeError):
            diagnostics.append(PackDiagnostic(
                "entry", f"malformed entry record {key!r}"))
            continue
        if _sha256(_canonical(raw)) != sha:
            diagnostics.append(PackDiagnostic(
                "entry", f"entry checksum mismatch: {key}"))
            continue
        try:
            WisdomEntry.from_json(raw)
        except (KeyError, TypeError, ValueError):
            diagnostics.append(PackDiagnostic(
                "entry", f"unparseable entry: {key}"))
    artifacts = data.get("artifacts")
    if artifacts is None:
        artifacts = {}
    if not isinstance(artifacts, dict):
        diagnostics.append(PackDiagnostic("artifact",
                                          "artifacts table malformed"))
        artifacts = {}
    for digest, record in artifacts.items():
        try:
            blob = base64.b64decode(record["data"], validate=True)
            ok = hashlib.sha256(blob).hexdigest() == record["sha256"]
        except (KeyError, TypeError, ValueError):
            ok = False
        if not ok:
            diagnostics.append(PackDiagnostic(
                "artifact", f"artifact checksum mismatch: {digest}"))
    return not diagnostics, diagnostics, info


def inspect_pack(path: str | os.PathLike) -> dict[str, Any]:
    """The pack's manifest summary (no integrity verdicts beyond
    parseability); unusable files come back as ``{"error": ...}``."""
    data, fatal = _read_manifest(path)
    if data is None:
        return {"error": fatal.describe()}
    entries = data.get("entries") or {}
    per_transform: dict[str, list[int]] = {}
    for wrapped in entries.values():
        raw = (wrapped or {}).get("entry") or {}
        transform = str(raw.get("transform"))
        per_transform.setdefault(transform, []).append(raw.get("n"))
    for sizes in per_transform.values():
        sizes.sort(key=lambda v: (not isinstance(v, int), v))
    artifacts = data.get("artifacts") or {}
    return {
        "path": str(path),
        "format": data.get("format"),
        "version": data.get("version"),
        "wisdom_version": data.get("wisdom_version"),
        "platform": data.get("platform"),
        "hardware": data.get("hardware"),
        "platform_info": data.get("platform_info"),
        "entries": len(entries),
        "transforms": per_transform,
        "artifacts": len(artifacts),
        "artifact_bytes": sum(
            len((record or {}).get("data") or "") * 3 // 4
            for record in artifacts.values()),
        "local_platform": platform_fingerprint(),
        "local_hardware": hardware_fingerprint(),
    }


def _install_artifact(build_dir: Path, digest: str, blob: bytes) -> bool:
    """Atomically publish one ``.so`` into the shared-object cache."""
    so_path = build_dir / f"spl_{digest}.so"
    if so_path.exists():
        return False  # already cached (possibly locally compiled)
    tmp = build_dir / f"spl_{digest}.{os.getpid()}.pack.tmp"
    tmp.write_bytes(blob)
    tmp.replace(so_path)
    try:
        so_path.chmod(0o755)
    except OSError:  # pragma: no cover
        pass
    return True


def load_pack(path: str | os.PathLike, *, platform: str | None = None,
              install_artifacts: bool = True,
              build_dir: str | os.PathLike | None = None,
              ) -> PackLoadResult:
    """Consume a pack for serving; graceful under every failure mode.

    Returns a :class:`PackLoadResult` whose ``store`` holds the
    entries that survived verification — or None when the pack is
    unusable as a whole (unreadable/foreign/unknown-version), in which
    case the caller degrades to search-on-demand.  A failed whole-pack
    checksum does *not* reject the pack outright: entries whose own
    checksums still verify are salvaged (the damage is counted and
    diagnosed), so one flipped byte costs one entry, not the fleet's
    warm boot.  Never raises.
    """
    result = PackLoadResult()
    data, fatal = _read_manifest(path)
    if data is None:
        result.diagnostics.append(fatal)
        return result
    mismatch = _platform_mismatch(data, platform)
    if mismatch is not None:
        result.diagnostics.append(PackDiagnostic(
            mismatch.kind,
            f"{mismatch.detail}; serving will search on demand"))
        return result
    if data.get("checksum") != _payload_checksum(data):
        result.diagnostics.append(PackDiagnostic(
            "pack-checksum",
            "whole-pack checksum mismatch; salvaging entries whose own "
            "checksums verify"))
    store = WisdomStore(None, platform=platform or platform_fingerprint(),
                        autosave=False)
    entries = data.get("entries")
    if not isinstance(entries, dict):
        entries = {}
        result.diagnostics.append(PackDiagnostic(
            "entry", "entries table missing"))
    for key, wrapped in entries.items():
        try:
            raw, sha = wrapped["entry"], wrapped["sha256"]
            if _sha256(_canonical(raw)) != sha:
                raise ValueError("checksum mismatch")
            entry = WisdomEntry.from_json(raw)
        except Exception as exc:  # noqa: BLE001 - skip, count, go on
            result.entries_skipped += 1
            result.diagnostics.append(PackDiagnostic(
                "entry", f"skipped {key!r}: {exc}"))
            continue
        store.entries[str(key)] = entry
        result.entries_loaded += 1
    result.store = store

    if install_artifacts:
        from repro.perfeval import ccompile

        target = Path(build_dir) if build_dir is not None \
            else ccompile.default_build_dir()
        artifacts = data.get("artifacts")
        if not isinstance(artifacts, dict):
            artifacts = {}
        for digest, record in artifacts.items():
            try:
                blob = base64.b64decode(record["data"], validate=True)
                if hashlib.sha256(blob).hexdigest() != record["sha256"]:
                    raise ValueError("checksum mismatch")
                if _install_artifact(target, str(digest), blob):
                    result.artifacts_installed += 1
            except Exception as exc:  # noqa: BLE001
                result.artifacts_skipped += 1
                result.diagnostics.append(PackDiagnostic(
                    "artifact", f"skipped artifact {digest!r}: {exc}"))
    return result
