"""``spl pack`` — build, verify and inspect wisdom packs.

* ``spl pack build OUT --wisdom FILE`` exports a wisdom store as a
  deployable pack (with compiled artifacts when a toolchain is
  available; ``--no-artifacts`` to skip them).
* ``spl pack verify PACK`` checks every checksum and the platform
  fingerprint; exit 0 only when the pack is byte-perfect and valid
  here.  ``--any-platform`` verifies integrity alone.
* ``spl pack inspect PACK`` prints the manifest summary as JSON
  (counts, platform, sizes) without passing judgement.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.wisdom.pack import build_pack, inspect_pack, verify_pack
from repro.wisdom.store import WisdomStore


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="spl pack",
        description="build, verify and inspect deployable wisdom packs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser(
        "build", help="export a wisdom store as a pack")
    build.add_argument("out", metavar="OUT", help="pack file to write")
    build.add_argument(
        "--wisdom", metavar="FILE", required=True,
        help="the wisdom store to export")
    build.add_argument(
        "--no-artifacts", action="store_true",
        help="skip bundling compiled .so artifacts (smaller pack; "
             "consumers compile or search on demand)")

    verify = sub.add_parser(
        "verify", help="check a pack's checksums and platform")
    verify.add_argument("pack", metavar="PACK", help="pack file to check")
    verify.add_argument(
        "--any-platform", action="store_true",
        help="verify integrity only; do not require the pack to match "
             "this host's platform fingerprint")

    inspect = sub.add_parser(
        "inspect", help="print a pack's manifest summary as JSON")
    inspect.add_argument("pack", metavar="PACK", help="pack file to read")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "build":
        store = WisdomStore(args.wisdom, autosave=False)
        if not store.entries:
            print(f"spl pack: no usable wisdom entries in {args.wisdom} "
                  f"(wrong platform, corrupt, or empty store?)",
                  file=sys.stderr)
            return 1
        summary = build_pack(store, args.out,
                             include_artifacts=not args.no_artifacts)
        print(f"spl pack: wrote {summary['path']}: "
              f"{summary['entries']} entries, "
              f"{summary['artifacts']} artifacts "
              f"({summary['bytes']} bytes)")
        if summary["artifacts_skipped"]:
            print(f"spl pack: {summary['artifacts_skipped']} artifacts "
                  f"skipped (no toolchain, or stale formulas)",
                  file=sys.stderr)
        return 0
    if args.command == "verify":
        ok, diagnostics, info = verify_pack(args.pack)
        if args.any_platform:
            diagnostics = [d for d in diagnostics if d.kind != "platform"]
            ok = not diagnostics
        for diagnostic in diagnostics:
            print(f"spl pack: {diagnostic.describe()}", file=sys.stderr)
        if info:
            print(f"spl pack: {info.get('entries', 0)} entries, "
                  f"{info.get('artifacts', 0)} artifacts, "
                  f"platform {info.get('platform')!r}")
        print("spl pack: OK" if ok else "spl pack: FAILED",
              file=sys.stdout if ok else sys.stderr)
        return 0 if ok else 1
    if args.command == "inspect":
        print(json.dumps(inspect_pack(args.pack), indent=2, sort_keys=True))
        return 0
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":
    raise SystemExit(main())
