"""Concurrent candidate measurement with deterministic winner selection.

Search cost splits into two very different parts:

* **compiling** candidates — dominated by the host C compiler, a
  subprocess per candidate: embarrassingly parallel.  A *process* pool
  drives :func:`repro.perfeval.ccompile.compile_shared_object` (whose
  arguments and results are plain picklable values); when a process
  pool cannot be used (no ``fork``, sandboxed interpreter), a thread
  pool is an almost-as-good fallback because the compiler subprocess
  releases the GIL anyway;
* **timing** candidates — run through a *thread* pool (the Python
  backend is GIL-bound, so this is the only portable choice, and the
  native path spends its time inside ctypes calls which release the
  GIL).

Whatever the execution order, results are returned in *candidate
order* and :func:`pick_winner` breaks ties on the lowest candidate
index, so parallel and serial searches select the same winner given
the same timings.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence, TypeVar

from repro.perfeval import ccompile

T = TypeVar("T")
R = TypeVar("R")


@dataclass
class PoolStats:
    """Global counters: how much work actually ran concurrently."""

    tasks: int = 0
    parallel_tasks: int = 0
    compile_tasks: int = 0
    pools_used: dict[str, int] = field(default_factory=dict)

    def note_pool(self, kind: str) -> None:
        self.pools_used[kind] = self.pools_used.get(kind, 0) + 1

    def as_dict(self) -> dict[str, object]:
        return {
            "tasks": self.tasks,
            "parallel_tasks": self.parallel_tasks,
            "compile_tasks": self.compile_tasks,
            "pools_used": dict(self.pools_used),
        }


STATS = PoolStats()


def stats() -> dict[str, object]:
    return STATS.as_dict()


def reset_stats() -> None:
    global STATS
    STATS = PoolStats()


def resolve_jobs(jobs: int | None) -> int:
    """``None``/``0`` means one worker per CPU; negatives mean serial."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    return max(1, jobs)


def map_indexed(items: Sequence[T], fn: Callable[[int, T], R], *,
                jobs: int = 1) -> list[R]:
    """Apply ``fn(index, item)`` to every item, results in item order.

    ``jobs > 1`` runs through a thread pool; the returned list is
    always ordered by item index regardless of completion order, which
    is what makes downstream winner selection deterministic.
    """
    jobs = resolve_jobs(jobs)
    STATS.tasks += len(items)
    if jobs <= 1 or len(items) <= 1:
        STATS.note_pool("serial")
        return [fn(index, item) for index, item in enumerate(items)]
    STATS.parallel_tasks += len(items)
    STATS.note_pool("thread")
    with ThreadPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        futures = [
            pool.submit(fn, index, item)
            for index, item in enumerate(items)
        ]
        return [future.result() for future in futures]


def precompile_sources(sources: Sequence[str], *,
                       jobs: int = 1,
                       cflags: tuple[str, ...] = (),
                       build_dir: Path | None = None) -> list[Path]:
    """Compile C sources to cached shared objects, concurrently.

    This is the process-based half of the C measurement path: each
    worker invokes the host compiler through
    :func:`repro.perfeval.ccompile.compile_shared_object`, which caches
    by source hash — so the subsequent (serial or threaded) executable
    builds are pure cache hits.  Falls back to a thread pool when the
    process pool is unavailable, and to serial compilation as the last
    resort.  Results are in source order.
    """
    jobs = resolve_jobs(jobs)
    STATS.compile_tasks += len(sources)
    if jobs <= 1 or len(sources) <= 1:
        STATS.note_pool("serial")
        return [
            ccompile.compile_shared_object(src, cflags=cflags,
                                           build_dir=build_dir)
            for src in sources
        ]
    workers = min(jobs, len(sources))
    for pool_cls, kind in ((ProcessPoolExecutor, "process"),
                           (ThreadPoolExecutor, "thread")):
        try:
            with pool_cls(max_workers=workers) as pool:
                futures = [
                    pool.submit(ccompile.compile_shared_object, src,
                                cflags=cflags, build_dir=build_dir)
                    for src in sources
                ]
                paths = [future.result() for future in futures]
            STATS.parallel_tasks += len(sources)
            STATS.note_pool(kind)
            return paths
        except ccompile.CCompileError:
            raise  # a real compile failure, not a pool problem
        except Exception:  # pool machinery unavailable: try the next kind
            continue
    STATS.note_pool("serial")
    return [
        ccompile.compile_shared_object(src, cflags=cflags,
                                       build_dir=build_dir)
        for src in sources
    ]


def pick_winner(results: Sequence[R],
                key: Callable[[R], float]) -> tuple[int, R]:
    """The minimal result, ties broken by the lowest index.

    A strict ``<`` scan in index order: the first result achieving the
    minimum wins, so the choice is independent of measurement order
    (and therefore of the degree of parallelism).
    """
    if not results:
        raise ValueError("pick_winner needs at least one result")
    best_index = 0
    best_key = key(results[0])
    for index in range(1, len(results)):
        candidate_key = key(results[index])
        if candidate_key < best_key:
            best_index = index
            best_key = candidate_key
    return best_index, results[best_index]
