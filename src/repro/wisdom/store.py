"""The persistent wisdom store.

Modeled on FFTW's *wisdom* mechanism (§4.2 of the paper describes the
planner whose results wisdom caches): best-found formulas and plans are
kept in a JSON file keyed by ``transform:n:options-hash`` and stamped
with a format version plus a platform fingerprint.  A store loads
gracefully — a corrupt, version-mismatched or foreign-platform file is
*discarded*, never an error — so callers can always pass a path and let
the store sort out whether its contents are usable.

Counters (hits / misses / stores / bytes written, load failures) are
surfaced through :meth:`WisdomStore.stats` and
:meth:`WisdomStore.describe` so benchmarks can report cache
effectiveness.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.wisdom.keys import (
    platform_description,
    platform_fingerprint,
    wisdom_key,
)

WISDOM_FORMAT = "spl-wisdom"
WISDOM_VERSION = 1


@dataclass
class WisdomEntry:
    """One remembered search outcome.

    ``formula`` is the winning formula's SPL text (or a compact plan
    rendering for planner entries, which reconstruct from ``meta``
    instead); ``seconds``/``mflops`` are the measurement that crowned
    it; ``meta`` holds whatever extra state the producer needs to
    validate or rebuild the result (radices, codelet sizes, rules...).
    """

    transform: str
    n: int
    formula: str
    seconds: float
    mflops: float
    meta: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "transform": self.transform,
            "n": self.n,
            "formula": self.formula,
            "seconds": self.seconds,
            "mflops": self.mflops,
            "meta": self.meta,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "WisdomEntry":
        return cls(
            transform=str(data["transform"]),
            n=int(data["n"]),
            formula=str(data["formula"]),
            seconds=float(data["seconds"]),
            mflops=float(data["mflops"]),
            meta=dict(data.get("meta", {})),
        )


class WisdomStore:
    """An in-memory wisdom table with optional JSON persistence.

    ``path=None`` gives a purely in-process store (useful for tests and
    one-shot searches); with a path the file is loaded on construction
    and — when ``autosave`` is left on — rewritten after every
    :meth:`record`, so interrupted searches lose at most the candidate
    in flight.
    """

    def __init__(self, path: str | os.PathLike | None = None, *,
                 platform: str | None = None, autosave: bool = True,
                 autoload: bool = True):
        self.path = Path(path) if path is not None else None
        self.platform = platform or platform_fingerprint()
        self.autosave = autosave
        self.entries: dict[str, WisdomEntry] = {}
        # -- counters ---------------------------------------------------
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.saves = 0
        self.save_errors = 0
        self.bytes_written = 0
        self.load_errors = 0
        self.version_mismatches = 0
        self.platform_mismatches = 0
        self.invalidated = 0
        if self.path is not None and autoload:
            self.load()

    # -- persistence ----------------------------------------------------

    def load(self) -> bool:
        """(Re)load from ``path``; returns True iff entries were usable.

        Every failure mode — missing file, unreadable file, malformed
        JSON, wrong format/version, foreign platform — leaves the store
        empty and bumps the matching counter instead of raising.
        """
        self.entries = {}
        if self.path is None or not self.path.exists():
            return False
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            self.load_errors += 1
            return False
        if not isinstance(data, dict) or data.get("format") != WISDOM_FORMAT:
            self.load_errors += 1
            return False
        if data.get("version") != WISDOM_VERSION:
            self.version_mismatches += 1
            return False
        if data.get("platform") != self.platform:
            self.platform_mismatches += 1
            return False
        raw = data.get("entries")
        if not isinstance(raw, dict):
            self.load_errors += 1
            return False
        loaded: dict[str, WisdomEntry] = {}
        try:
            for key, value in raw.items():
                loaded[key] = WisdomEntry.from_json(value)
        except (KeyError, TypeError, ValueError):
            self.load_errors += 1
            return False
        self.entries = loaded
        return True

    def save(self) -> bool:
        """Write the store to ``path`` (atomically, via a temp file).

        An unwritable path (missing permissions, path is a directory)
        bumps ``save_errors`` and returns False instead of raising —
        wisdom is an accelerator, and failing to persist it must never
        kill the search that produced it.
        """
        if self.path is None:
            return False
        payload = {
            "format": WISDOM_FORMAT,
            "version": WISDOM_VERSION,
            "platform": self.platform,
            "platform_info": platform_description(),
            "entries": {
                key: entry.to_json() for key, entry in self.entries.items()
            },
        }
        text = json.dumps(payload, indent=1, sort_keys=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(text, encoding="utf-8")
            tmp.replace(self.path)
        except OSError:
            self.save_errors += 1
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return False
        self.saves += 1
        self.bytes_written += len(text.encode())
        return True

    # -- the table ------------------------------------------------------

    def lookup(self, transform: str, n: int,
               options: object | None = None) -> WisdomEntry | None:
        """Fetch remembered wisdom; counts a hit or a miss."""
        entry = self.entries.get(wisdom_key(transform, n, options))
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def record(self, transform: str, n: int, options: object | None = None,
               *, formula: str, seconds: float, mflops: float,
               **meta: Any) -> WisdomEntry:
        """Remember a search outcome (and autosave when persistent)."""
        entry = WisdomEntry(transform=transform, n=n, formula=formula,
                            seconds=seconds, mflops=mflops, meta=dict(meta))
        self.entries[wisdom_key(transform, n, options)] = entry
        self.stores += 1
        if self.autosave:
            self.save()
        return entry

    def invalidate(self, transform: str | None = None,
                   n: int | None = None) -> int:
        """Drop entries matching ``transform`` and/or ``n`` (None = all).

        Returns the number of entries removed; the file (if any) is
        rewritten when autosave is on.
        """
        doomed = [
            key for key, entry in self.entries.items()
            if (transform is None or entry.transform == transform)
            and (n is None or entry.n == n)
        ]
        for key in doomed:
            del self.entries[key]
        self.invalidated += len(doomed)
        if doomed and self.autosave:
            self.save()
        return len(doomed)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[WisdomEntry]:
        return iter(self.entries.values())

    # -- reporting ------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        return {
            "path": str(self.path) if self.path else None,
            "entries": len(self.entries),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "saves": self.saves,
            "save_errors": self.save_errors,
            "bytes_written": self.bytes_written,
            "load_errors": self.load_errors,
            "version_mismatches": self.version_mismatches,
            "platform_mismatches": self.platform_mismatches,
            "invalidated": self.invalidated,
        }

    def describe(self) -> str:
        s = self.stats()
        where = s["path"] or "<memory>"
        return (
            f"wisdom[{where}]: {s['entries']} entries, "
            f"{s['hits']} hits / {s['misses']} misses, "
            f"{s['stores']} stores ({s['bytes_written']} bytes written)"
        )
