"""The persistent wisdom store.

Modeled on FFTW's *wisdom* mechanism (§4.2 of the paper describes the
planner whose results wisdom caches): best-found formulas and plans are
kept in a JSON file keyed by ``transform:n:options-hash`` and stamped
with a format version plus a platform fingerprint.  A store loads
gracefully — a corrupt, version-mismatched or foreign-platform file is
*discarded*, never an error — so callers can always pass a path and let
the store sort out whether its contents are usable.

Crash safety and concurrency:

* **Atomic writes** — every save goes through a temp file plus
  ``rename``, so a writer killed mid-save leaves either the old file
  or the new one, never a truncated hybrid.
* **Content checksum** — the payload carries a SHA-256 over its
  entries; a file whose bytes no longer match (bit rot, manual edits,
  a partial write from a non-atomic writer) is detected at load.
* **Corruption quarantine** — an unparseable or checksum-failing file
  is renamed to ``<name>.corrupt`` (kept for forensics) and the store
  starts fresh; loading never raises.
* **Advisory locking + merge** — saves take an advisory ``flock`` on a
  sidecar ``<name>.lock`` and merge entries already on disk before
  rewriting, so concurrent processes recording different keys do not
  lose each other's updates (local entries win on key conflicts).
* **Validated lookup** — :meth:`WisdomStore.validated_lookup` runs a
  caller-supplied check against an entry before trusting it, evicting
  entries that fail (stale plans, foreign tampering).

Counters (hits / misses / stores / bytes written, load failures,
quarantines, merges, evictions) are surfaced through
:meth:`WisdomStore.stats` and :meth:`WisdomStore.describe` so
benchmarks can report cache effectiveness.
"""

from __future__ import annotations

import hashlib
import json
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.wisdom.keys import (
    platform_description,
    platform_fingerprint,
    wisdom_key,
)

try:  # POSIX advisory locking; harmless no-op elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

WISDOM_FORMAT = "spl-wisdom"
#: Version 2 added the content checksum.  Version-1 files (no
#: checksum) are *migrated*: their entries load, the migration is
#: counted, and the next save rewrites the file as v2.  Versions we
#: have never shipped are discarded as a (counted) mismatch.
WISDOM_VERSION = 2


def _entries_checksum(entries: dict[str, Any]) -> str:
    """SHA-256 over the canonical JSON rendering of the entries table."""
    canonical = json.dumps(entries, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


@contextmanager
def _advisory_lock(path: Path | None):
    """Exclusive advisory lock on ``<path>.lock`` (no-op without fcntl).

    Advisory only: it coordinates cooperating WisdomStore writers, not
    arbitrary programs.  The sidecar keeps the lock separate from the
    data file, which is replaced by rename on every save.
    """
    if fcntl is None or path is None:
        yield
        return
    lock_path = path.with_name(path.name + ".lock")
    try:
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        handle = open(lock_path, "w")
    except OSError:
        yield  # unlockable location: proceed unlocked (best effort)
        return
    try:
        fcntl.flock(handle, fcntl.LOCK_EX)
        yield
    finally:
        try:
            fcntl.flock(handle, fcntl.LOCK_UN)
        except OSError:  # pragma: no cover
            pass
        handle.close()


@dataclass
class WisdomEntry:
    """One remembered search outcome.

    ``formula`` is the winning formula's SPL text (or a compact plan
    rendering for planner entries, which reconstruct from ``meta``
    instead); ``seconds``/``mflops`` are the measurement that crowned
    it; ``meta`` holds whatever extra state the producer needs to
    validate or rebuild the result (radices, codelet sizes, rules...).
    """

    transform: str
    n: int
    formula: str
    seconds: float
    mflops: float
    meta: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "transform": self.transform,
            "n": self.n,
            "formula": self.formula,
            "seconds": self.seconds,
            "mflops": self.mflops,
            "meta": self.meta,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "WisdomEntry":
        return cls(
            transform=str(data["transform"]),
            n=int(data["n"]),
            formula=str(data["formula"]),
            seconds=float(data["seconds"]),
            mflops=float(data["mflops"]),
            meta=dict(data.get("meta", {})),
        )


class WisdomStore:
    """An in-memory wisdom table with optional JSON persistence.

    ``path=None`` gives a purely in-process store (useful for tests and
    one-shot searches); with a path the file is loaded on construction
    and — when ``autosave`` is left on — rewritten after every
    :meth:`record`, so interrupted searches lose at most the candidate
    in flight.
    """

    def __init__(self, path: str | os.PathLike | None = None, *,
                 platform: str | None = None, autosave: bool = True,
                 autoload: bool = True):
        self.path = Path(path) if path is not None else None
        self.platform = platform or platform_fingerprint()
        self.autosave = autosave
        self.entries: dict[str, WisdomEntry] = {}
        # -- counters ---------------------------------------------------
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.saves = 0
        self.save_errors = 0
        self.bytes_written = 0
        self.load_errors = 0
        self.migrations = 0
        self.version_mismatches = 0
        self.platform_mismatches = 0
        self.invalidated = 0
        self.quarantined = 0
        self.merged = 0
        self.evictions = 0
        if self.path is not None and autoload:
            self.load()

    # -- persistence ----------------------------------------------------

    def _read_payload(self) -> tuple[dict[str, WisdomEntry] | None, str]:
        """Parse the file at ``path``: ``(entries, "ok")`` or
        ``(None, reason)``.

        Reasons distinguish *corruption* (``json``, ``checksum``,
        ``entries`` — the file is ours but damaged) from benign
        mismatches (``missing``, ``io``, ``format``, ``version``,
        ``platform``) so the caller can quarantine only the former.
        """
        if self.path is None or not self.path.exists():
            return None, "missing"
        try:
            text = self.path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            return None, "io"
        try:
            data = json.loads(text)
        except json.JSONDecodeError:
            return None, "json"
        if not isinstance(data, dict) or data.get("format") != WISDOM_FORMAT:
            # Some other program's JSON: not ours to quarantine.
            return None, "format"
        version = data.get("version")
        if version not in (1, WISDOM_VERSION):
            return None, "version"
        if data.get("platform") != self.platform:
            return None, "platform"
        raw = data.get("entries")
        if not isinstance(raw, dict):
            return None, "entries"
        if version == WISDOM_VERSION:
            checksum = data.get("checksum")
            if checksum != _entries_checksum(raw):
                return None, "checksum"
        loaded: dict[str, WisdomEntry] = {}
        try:
            for key, value in raw.items():
                loaded[key] = WisdomEntry.from_json(value)
        except (KeyError, TypeError, ValueError):
            return None, "entries"
        # Version-1 files predate the content checksum; their entries
        # are usable as-is and the caller upgrades the file on save.
        return loaded, ("migrated" if version == 1 else "ok")

    def _quarantine_file(self) -> None:
        """Move the damaged file aside as ``<name>.corrupt[.N]``.

        Successive corruptions must each survive for forensics: the
        first corpse takes ``.corrupt``, later ones ``.corrupt.1``,
        ``.corrupt.2``, ... instead of clobbering the previous one.
        """
        if self.path is None:
            return
        corpse = self.path.with_name(self.path.name + ".corrupt")
        suffix = 0
        while corpse.exists():
            suffix += 1
            corpse = self.path.with_name(
                f"{self.path.name}.corrupt.{suffix}")
        try:
            os.replace(self.path, corpse)
            self.quarantined += 1
        except OSError:  # pragma: no cover - unmovable file
            pass

    def load(self) -> bool:
        """(Re)load from ``path``; returns True iff entries were usable.

        Every failure mode — missing file, unreadable file, malformed
        JSON, checksum mismatch, wrong format/version, foreign platform
        — leaves the store empty and bumps the matching counter instead
        of raising.  Corrupted files (bad JSON, failed checksum,
        malformed entries) are additionally renamed to ``.corrupt`` so
        the next save starts fresh and the evidence is preserved.
        A version-1 file (pre-checksum) loads with its entries intact
        and — when autosave is on — is immediately rewritten as v2.
        """
        entries, reason = self._read_payload()
        if entries is not None:
            self.entries = entries
            if reason == "migrated":
                self.migrations += 1
                if self.autosave:
                    # merge=False: the disk copy is the v1 file we just
                    # loaded in full; re-merging it is pointless.
                    self.save(merge=False)
            return True
        self.entries = {}
        if reason == "missing":
            return False
        if reason == "version":
            self.version_mismatches += 1
        elif reason == "platform":
            self.platform_mismatches += 1
        else:
            self.load_errors += 1
            if reason in ("json", "checksum", "entries"):
                self._quarantine_file()
        return False

    def _merge_from_disk(self) -> None:
        """Adopt on-disk entries recorded by concurrent writers.

        Called under the advisory lock just before rewriting the file:
        any key present on disk but not in memory is kept, so two
        processes recording different keys both survive.  Keys we hold
        locally win (ours is the most recent measurement).
        """
        entries, reason = self._read_payload()
        if entries is None:
            return
        for key, entry in entries.items():
            if key not in self.entries:
                self.entries[key] = entry
                self.merged += 1

    def save(self, *, merge: bool = True) -> bool:
        """Write the store to ``path`` (atomically, via a temp file).

        Under an advisory file lock, on-disk entries from concurrent
        writers are merged in first (``merge=False`` skips that and
        overwrites), then the payload — entries plus their SHA-256
        checksum — is written to a temp file and renamed into place, so
        a writer killed mid-save can never leave a truncated store.

        An unwritable path (missing permissions, path is a directory)
        bumps ``save_errors`` and returns False instead of raising —
        wisdom is an accelerator, and failing to persist it must never
        kill the search that produced it.
        """
        if self.path is None:
            return False
        with _advisory_lock(self.path):
            if merge:
                self._merge_from_disk()
            raw_entries = {
                key: entry.to_json() for key, entry in self.entries.items()
            }
            payload = {
                "format": WISDOM_FORMAT,
                "version": WISDOM_VERSION,
                "platform": self.platform,
                "platform_info": platform_description(),
                "checksum": _entries_checksum(raw_entries),
                "entries": raw_entries,
            }
            text = json.dumps(payload, indent=1, sort_keys=True)
            tmp = self.path.with_name(
                f"{self.path.name}.{os.getpid()}.tmp"
            )
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                tmp.write_text(text, encoding="utf-8")
                tmp.replace(self.path)
            except OSError:
                self.save_errors += 1
                try:
                    tmp.unlink(missing_ok=True)
                except OSError:
                    pass
                return False
        self.saves += 1
        self.bytes_written += len(text.encode())
        return True

    # -- the table ------------------------------------------------------

    def lookup(self, transform: str, n: int,
               options: object | None = None) -> WisdomEntry | None:
        """Fetch remembered wisdom; counts a hit or a miss."""
        entry = self.entries.get(wisdom_key(transform, n, options))
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def validated_lookup(self, transform: str, n: int,
                         options: object | None = None, *,
                         validate: Callable[[WisdomEntry], bool],
                         ) -> WisdomEntry | None:
        """Fetch wisdom, but only if ``validate(entry)`` accepts it.

        An entry the validator rejects — or that makes it raise — is
        *evicted* (removed and, when autosave is on, persisted away):
        stale plans, entries for codelets that no longer exist, or a
        tampered store never poison the caller twice.  Returns None as
        if the entry had never existed.
        """
        entry = self.lookup(transform, n, options)
        if entry is None:
            return None
        try:
            accepted = bool(validate(entry))
        except Exception:  # noqa: BLE001 - invalid wisdom must not raise
            accepted = False
        if accepted:
            return entry
        self.entries.pop(wisdom_key(transform, n, options), None)
        self.evictions += 1
        if self.autosave:
            # merge=False: the evicted key must not be re-adopted from
            # the on-disk copy we just rejected.
            self.save(merge=False)
        return None

    def record(self, transform: str, n: int, options: object | None = None,
               *, formula: str, seconds: float, mflops: float,
               **meta: Any) -> WisdomEntry:
        """Remember a search outcome (and autosave when persistent)."""
        entry = WisdomEntry(transform=transform, n=n, formula=formula,
                            seconds=seconds, mflops=mflops, meta=dict(meta))
        self.entries[wisdom_key(transform, n, options)] = entry
        self.stores += 1
        if self.autosave:
            self.save()
        return entry

    def invalidate(self, transform: str | None = None,
                   n: int | None = None) -> int:
        """Drop entries matching ``transform`` and/or ``n`` (None = all).

        Returns the number of entries removed; the file (if any) is
        rewritten when autosave is on (without merging, so concurrent
        copies of the invalidated keys are dropped too).
        """
        doomed = [
            key for key, entry in self.entries.items()
            if (transform is None or entry.transform == transform)
            and (n is None or entry.n == n)
        ]
        for key in doomed:
            del self.entries[key]
        self.invalidated += len(doomed)
        if doomed and self.autosave:
            self.save(merge=False)
        return len(doomed)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[WisdomEntry]:
        return iter(self.entries.values())

    # -- reporting ------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        return {
            "path": str(self.path) if self.path else None,
            "entries": len(self.entries),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "saves": self.saves,
            "save_errors": self.save_errors,
            "bytes_written": self.bytes_written,
            "load_errors": self.load_errors,
            "migrations": self.migrations,
            "version_mismatches": self.version_mismatches,
            "platform_mismatches": self.platform_mismatches,
            "invalidated": self.invalidated,
            "quarantined": self.quarantined,
            "merged": self.merged,
            "evictions": self.evictions,
        }

    def describe(self) -> str:
        s = self.stats()
        where = s["path"] or "<memory>"
        return (
            f"wisdom[{where}]: {s['entries']} entries, "
            f"{s['hits']} hits / {s['misses']} misses, "
            f"{s['stores']} stores ({s['bytes_written']} bytes written)"
        )
