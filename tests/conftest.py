"""Shared fixtures and oracles for the test suite.

The central oracle: for any formula, the generated code (interpreter,
Python backend, compiled C) must compute ``to_matrix(formula) @ x``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compiler import CompilerOptions, SplCompiler
from repro.core.interpreter import run_program
from repro.core.parser import parse_formula_text
from repro.formulas import to_matrix
from repro.perfeval.ccompile import have_c_compiler

HAS_CC = have_c_compiler()

requires_cc = pytest.mark.skipif(
    not HAS_CC, reason="no C compiler on PATH"
)


@pytest.fixture
def compiler() -> SplCompiler:
    """A default compiler session (complex data, real code, Fortran)."""
    return SplCompiler()


@pytest.fixture
def unrolled_compiler() -> SplCompiler:
    return SplCompiler(CompilerOptions(unroll=True))


def random_complex(n: int, seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n) + 1j * rng.standard_normal(n)


def interleave(x: np.ndarray) -> list[float]:
    out: list[float] = []
    for value in x:
        value = complex(value)
        out.extend((value.real, value.imag))
    return out


def deinterleave(buf) -> np.ndarray:
    arr = np.asarray(buf, dtype=float)
    return arr[0::2] + 1j * arr[1::2]


def assert_routine_matches_matrix(routine, formula=None, *, seed=7,
                                  rtol=1e-9, atol=1e-9) -> None:
    """Check routine.run against the dense semantics on random input."""
    formula = formula if formula is not None else routine.formula
    if isinstance(formula, str):
        formula = parse_formula_text(formula)
    matrix = to_matrix(formula)
    x = random_complex(matrix.shape[1], seed)
    expected = matrix @ x
    got = np.asarray(routine.run(list(x)))
    np.testing.assert_allclose(got, expected, rtol=rtol, atol=atol)


def assert_program_matches_matrix(program, formula, *, seed=7,
                                  atol=1e-9) -> None:
    """Check the i-code interpreter against the dense semantics."""
    if isinstance(formula, str):
        formula = parse_formula_text(formula)
    matrix = to_matrix(formula)
    x = random_complex(matrix.shape[1], seed)
    if program.element_width == 2:
        out = run_program(program, interleave(x))
        got = deinterleave(out)
    else:
        out = run_program(program, list(x))
        got = np.asarray(out)
    np.testing.assert_allclose(got, matrix @ x, atol=atol)
