"""Unit tests for the NumPy batch backend and its affine loop lowering."""

import numpy as np
import pytest

from repro.core.backend_numpy import (
    compile_numpy,
    emit_numpy,
    loop_is_lowerable,
)
from repro.core.compiler import CompilerOptions, SplCompiler
from repro.core.errors import SplSemanticError
from repro.core.icode import (
    FVar,
    IExpr,
    Loop,
    Op,
    Program,
    VecInfo,
    VecRef,
)
from repro.formulas import to_matrix
from repro.core.parser import parse_formula_text
from tests.conftest import assert_routine_matches_matrix

FORMULA_F4 = ("(compose (tensor (F 2) (I 2)) (T 4 2) "
              "(tensor (I 2) (F 2)) (L 4 2))")


def compile_one(text, **opts):
    compiler = SplCompiler(CompilerOptions(**opts))
    return compiler.compile_formula(text, "unit", language="numpy")


def run_batch(routine, X):
    """Execute a numpy-language routine on a (B, n) logical batch."""
    program = routine.program
    width = program.element_width
    batch = X.shape[0]
    fn = compile_numpy(program)
    if width == 2:
        xp = np.zeros((batch, 2 * program.in_size))
        xp[:, 0::2] = X.real
        xp[:, 1::2] = X.imag
        y = np.zeros((batch, 2 * program.out_size))
        fn(y, xp)
        return y[:, 0::2] + 1j * y[:, 1::2]
    xp = np.array(X, dtype=complex if program.datatype == "complex"
                  else float)
    y = np.zeros((batch, program.out_size), dtype=xp.dtype)
    fn(y, xp)
    return y


class TestEmission:
    def test_signature_and_import(self):
        routine = compile_one("(F 2)")
        assert routine.source.startswith("import numpy as np")
        assert "def unit(y, x):" in routine.source

    def test_tables_are_numpy_arrays(self):
        routine = compile_one("(T 16 4)", codetype="real")
        assert "d0 = np.array([" in routine.source

    def test_complex_table_constants(self):
        routine = compile_one("(T 4 2)")  # complex-native twiddles
        assert "complex(" in routine.source

    def test_temps_carry_batch_axis(self):
        routine = compile_one(FORMULA_F4, codetype="real")
        assert "np.zeros((x.shape[0], " in routine.source

    def test_strided_signature(self):
        compiler = SplCompiler(CompilerOptions(codetype="real"))
        routine = compiler.compile_formula("(F 2)", "cod",
                                           language="numpy", strided=True)
        assert "istride=1, ostride=1, iofs=0, oofs=0" in routine.source

    def test_language_recorded(self):
        assert compile_one("(F 2)").language == "numpy"


class TestLoopLowering:
    def test_affine_loops_become_slices(self):
        # (I 8) (x) F 2: one innermost loop, all subscripts affine.
        routine = compile_one("(tensor (I 8) (F 2))", codetype="real")
        assert "lowered to slices" in routine.source
        assert "for " not in routine.source

    def test_reversal_uses_negative_step(self):
        routine = compile_one("(J 8)", codetype="real")
        assert "::-2]" in routine.source or ":-2]" in routine.source
        assert "for " not in routine.source

    def test_symbolic_stride_falls_back_to_loop(self):
        # Strided entry points index by runtime istride: the step is
        # not a compile-time constant, so the loop survives — but the
        # body is still batch-vectorized column ops.
        compiler = SplCompiler(CompilerOptions(codetype="real"))
        routine = compiler.compile_formula(
            "(tensor (I 4) (F 2))", "cod", language="numpy", strided=True)
        assert "for i" in routine.source
        assert "[:, " in routine.source

    def test_non_affine_subscript_rejected(self):
        # y[i*i] is not affine in i: the loop must not be lowered.
        i = IExpr.var("i0")
        program = Program(
            name="sq", in_size=4, out_size=4, datatype="real",
            body=[Loop("i0", 2, [
                Op("=", VecRef("y", i * i), VecRef("x", i)),
            ])],
            vectors={"x": VecInfo("x", 4, "in"), "y": VecInfo("y", 4, "out")},
        )
        assert not loop_is_lowerable(program, program.body[0])
        assert "for i0 in range(2):" in emit_numpy(program)

    def test_scalar_escaping_loop_rejected(self):
        # f0 is written in the loop but read after it: the final-value
        # semantics cannot be expressed as a slice assignment.
        i = IExpr.var("i0")
        loop = Loop("i0", 4, [
            Op("=", FVar("f0"), VecRef("x", i)),
            Op("=", VecRef("y", i), FVar("f0")),
        ])
        program = Program(
            name="esc", in_size=4, out_size=4, datatype="real",
            body=[loop, Op("=", VecRef("y", IExpr.const(0)), FVar("f0"))],
            vectors={"x": VecInfo("x", 4, "in"), "y": VecInfo("y", 4, "out")},
        )
        assert not loop_is_lowerable(program, loop)

    def test_loop_local_scalars_allowed(self):
        i = IExpr.var("i0")
        loop = Loop("i0", 4, [
            Op("=", FVar("f0"), VecRef("x", i)),
            Op("+", VecRef("y", i), FVar("f0"), FVar("f0")),
        ])
        program = Program(
            name="loc", in_size=4, out_size=4, datatype="real",
            body=[loop],
            vectors={"x": VecInfo("x", 4, "in"), "y": VecInfo("y", 4, "out")},
        )
        assert loop_is_lowerable(program, loop)
        fn = compile_numpy(program)
        x = np.arange(4.0)[None, :]
        y = np.zeros((1, 4))
        fn(y, x)
        np.testing.assert_allclose(y[0], 2 * np.arange(4.0))

    def test_overlapping_stores_rejected(self):
        # y[i] then y[i+1]: iteration i+1's first store collides with
        # iteration i's second — slice execution would reorder them.
        i = IExpr.var("i0")
        loop = Loop("i0", 4, [
            Op("=", VecRef("y", i), VecRef("x", i)),
            Op("=", VecRef("y", i + 1), VecRef("x", i)),
        ])
        program = Program(
            name="ovl", in_size=8, out_size=8, datatype="real",
            body=[loop],
            vectors={"x": VecInfo("x", 8, "in"), "y": VecInfo("y", 8, "out")},
        )
        assert not loop_is_lowerable(program, loop)

    def test_far_apart_stores_allowed(self):
        # y[2i] and y[2i+8] with 4 iterations never collide: the rests
        # are congruent mod 2 but 8 >= 2*4.
        i = IExpr.var("i0")
        loop = Loop("i0", 4, [
            Op("=", VecRef("y", i * 2), VecRef("x", i)),
            Op("=", VecRef("y", i * 2 + 8), VecRef("x", i)),
        ])
        program = Program(
            name="far", in_size=4, out_size=16, datatype="real",
            body=[loop],
            vectors={"x": VecInfo("x", 4, "in"),
                     "y": VecInfo("y", 16, "out")},
        )
        assert loop_is_lowerable(program, loop)


class TestExecution:
    def test_matches_matrix_single(self):
        assert_routine_matches_matrix(compile_one(FORMULA_F4,
                                                  codetype="real"))

    def test_matches_matrix_complex_native(self):
        assert_routine_matches_matrix(compile_one(FORMULA_F4))

    def test_batch_matches_matrix(self):
        routine = compile_one(FORMULA_F4, codetype="real")
        matrix = to_matrix(parse_formula_text(FORMULA_F4))
        rng = np.random.default_rng(5)
        X = rng.standard_normal((7, 4)) + 1j * rng.standard_normal((7, 4))
        np.testing.assert_allclose(run_batch(routine, X), X @ matrix.T,
                                   atol=1e-10)

    def test_unrolled_program_runs(self):
        routine = compile_one(FORMULA_F4, codetype="real", unroll=True)
        assert_routine_matches_matrix(routine)

    def test_intrinsic_operand_raises(self):
        from repro.core.icode import Intrinsic

        program = Program(
            name="w", in_size=1, out_size=1, datatype="real",
            body=[Op("=", VecRef("y", IExpr.const(0)),
                     Intrinsic("W", (IExpr.const(4), IExpr.const(1))))],
            vectors={"x": VecInfo("x", 1, "in"), "y": VecInfo("y", 1, "out")},
        )
        with pytest.raises(SplSemanticError):
            emit_numpy(program)
