"""Unit tests for the three backends: Python, C, Fortran."""

import numpy as np
import pytest

from repro.core.backend_c import emit_c
from repro.core.backend_fortran import emit_fortran
from repro.core.backend_python import compile_python, emit_python
from repro.core.compiler import CompilerOptions, SplCompiler
from repro.core.errors import SplSemanticError
from tests.conftest import (
    assert_routine_matches_matrix,
    requires_cc,
)

FORMULA_F4 = ("(compose (tensor (F 2) (I 2)) (T 4 2) "
              "(tensor (I 2) (F 2)) (L 4 2))")


def compile_one(text, language, **opts):
    compiler = SplCompiler(CompilerOptions(**opts))
    return compiler.compile_formula(text, "unit", language=language)


class TestPythonBackend:
    def test_emit_and_exec_complex_native(self):
        # The Python backend keeps complex arithmetic native.
        routine = compile_one("(F 2)", "python")
        fn = compile_python(routine.program)
        y = [0j, 0j]
        fn(y, [1 + 0j, 2 + 0j])
        assert y == [3 + 0j, -1 + 0j]

    def test_emit_and_exec_lowered(self):
        routine = compile_one("(F 2)", "python", codetype="real")
        fn = compile_python(routine.program)
        y = [0.0] * 4
        fn(y, [1.0, 0.0, 2.0, 0.0])
        assert y == [3.0, 0.0, -1.0, 0.0]

    def test_source_contains_def(self):
        routine = compile_one("(F 2)", "python")
        assert "def unit(y, x):" in routine.source

    def test_tables_emitted(self):
        routine = compile_one("(T 16 4)", "python")
        assert "d0 = (" in routine.source

    def test_loops_emitted(self):
        routine = compile_one("(I 8)", "python")
        assert "for i0 in range(8):" in routine.source

    def test_matches_matrix(self):
        assert_routine_matches_matrix(compile_one(FORMULA_F4, "python"))

    def test_strided_signature(self):
        compiler = SplCompiler()
        routine = compiler.compile_formula("(F 2)", "cod", language="python",
                                           strided=True)
        assert "istride=1" in routine.source


class TestCBackend:
    def test_signature(self):
        routine = compile_one("(F 2)", "c")
        assert "void unit(double *restrict y, const double *restrict x)" \
            in routine.source

    def test_static_tables(self):
        routine = compile_one("(T 16 4)", "c")
        assert "static const double d0[32]" in routine.source

    def test_temps_declared_when_not_scalarized(self):
        routine = compile_one("(compose (F 2) (F 2))", "c",
                              optimize="none")
        assert "double t0[" in routine.source

    def test_loop_syntax(self):
        routine = compile_one("(I 8)", "c")
        assert "for (i0 = 0; i0 < 8; i0++) {" in routine.source

    def test_complex_requires_lowering(self):
        from repro.core.codegen import CodeGenerator

        compiler = SplCompiler()
        gen = CodeGenerator(compiler.templates)
        from repro.core.parser import parse_formula_text

        program = gen.generate(parse_formula_text("(I 2)"), "t", "complex")
        with pytest.raises(SplSemanticError):
            emit_c(program)

    def test_strided_signature(self):
        compiler = SplCompiler()
        routine = compiler.compile_formula("(F 2)", "cod", language="c",
                                           strided=True)
        assert "int istride, int ostride, int iofs, int oofs" \
            in routine.source

    @requires_cc
    def test_compiled_c_matches_matrix(self):
        from repro.perfeval.runner import build_executable
        from repro.formulas import to_matrix
        from repro.core.parser import parse_formula_text
        from tests.conftest import random_complex

        routine = compile_one(FORMULA_F4, "c", unroll=True)
        executable = build_executable(routine)
        assert executable.backend == "c"
        x = random_complex(4)
        expected = to_matrix(parse_formula_text(FORMULA_F4)) @ x
        np.testing.assert_allclose(executable.apply(x), expected, atol=1e-12)


class TestFortranBackend:
    def test_subroutine_shape(self):
        routine = compile_one("(F 2)", "fortran", codetype="real")
        assert routine.source.startswith("      subroutine unit (y,x)")
        assert "implicit real*8 (f)" in routine.source
        assert "implicit integer (r)" in routine.source
        assert routine.source.rstrip().endswith("end")

    def test_one_based_subscripts(self):
        routine = compile_one("(I 4)", "fortran")
        assert "y(i0 + 1) = x(i0 + 1)" in routine.source

    def test_complex_codetype_declarations(self):
        compiler = SplCompiler(CompilerOptions(codetype="complex"))
        routine = compiler.compile_formula("(T 4 2)", "tw",
                                           language="fortran")
        assert "implicit complex*16 (f)" in routine.source
        assert "complex*16 y(4),x(4)" in routine.source

    def test_complex_constants_as_pairs(self):
        compiler = SplCompiler(CompilerOptions(codetype="complex"))
        routine = compiler.compile_formula("(T 4 2)", "tw",
                                           language="fortran")
        # w_4^1 = -i appears as a (re, im) pair.
        assert "(" in routine.source and "-1.0d0)" in routine.source

    def test_real_codetype_doubles_arrays(self):
        routine = compile_one("(F 2)", "fortran", codetype="real")
        assert "real*8 y(4),x(4)" in routine.source

    def test_data_statements_for_tables(self):
        routine = compile_one("(T 16 4)", "fortran")
        assert "data d0 /" in routine.source

    def test_automatic_storage_flag(self):
        compiler = SplCompiler(CompilerOptions(automatic_storage=True))
        routine = compiler.compile_formula("(compose (F 2) (F 2))", "a",
                                           language="fortran")
        assert "automatic f" in routine.source

    def test_do_loops(self):
        routine = compile_one("(I 8)", "fortran")
        assert "do i0 = 0, 7" in routine.source
        assert "end do" in routine.source

    def test_fortran_exponent_format(self):
        routine = compile_one("(diagonal (1e-3 1))", "fortran",
                              datatype="real")
        assert "d-" in routine.source or "d0" in routine.source


class TestBackendAgreement:
    """All executable paths must agree with the dense semantics."""

    CASES = [
        "(F 2)",
        "(F 4)",
        FORMULA_F4,
        "(tensor (I 4) (F 2))",
        "(direct-sum (F 2) (J 3))",
        "(WHT 8)",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_python_matches(self, text):
        assert_routine_matches_matrix(compile_one(text, "python"))

    @pytest.mark.parametrize("text", CASES)
    @requires_cc
    def test_c_matches(self, text):
        from repro.perfeval.runner import build_executable
        from repro.formulas import to_matrix
        from repro.core.parser import parse_formula_text
        from tests.conftest import random_complex

        routine = compile_one(text, "c")
        executable = build_executable(routine)
        x = random_complex(routine.in_size)
        expected = to_matrix(parse_formula_text(text)) @ x
        np.testing.assert_allclose(executable.apply(x), expected,
                                   atol=1e-9)
