"""Tests for the spl-compile command-line interface."""

import pytest

from repro.core.cli import main


@pytest.fixture
def spl_file(tmp_path):
    path = tmp_path / "prog.spl"
    path.write_text("#subname fft4\n"
                    "(compose (tensor (F 2) (I 2)) (T 4 2) "
                    "(tensor (I 2) (F 2)) (L 4 2))\n")
    return path


class TestCli:
    def test_default_fortran_output(self, spl_file, capsys):
        assert main([str(spl_file)]) == 0
        out = capsys.readouterr().out
        assert "subroutine fft4 (y,x)" in out

    def test_c_output(self, spl_file, capsys):
        assert main([str(spl_file), "--language", "c"]) == 0
        out = capsys.readouterr().out
        assert "void fft4(" in out

    def test_python_output(self, spl_file, capsys):
        assert main([str(spl_file), "--language", "python"]) == 0
        assert "def fft4(" in capsys.readouterr().out

    def test_unroll_threshold_flag(self, spl_file, capsys):
        assert main([str(spl_file), "-B", "32", "--language", "c"]) == 0
        out = capsys.readouterr().out
        assert "for (" not in out  # fully unrolled

    def test_stats_flag(self, spl_file, capsys):
        assert main([str(spl_file), "--stats"]) == 0
        err = capsys.readouterr().err
        assert "flops=" in err

    def test_missing_file(self, capsys):
        assert main(["/nonexistent/file.spl"]) == 2

    def test_bad_program_reports_error(self, tmp_path, capsys):
        path = tmp_path / "bad.spl"
        path.write_text("(compose (F 2) (F 4))\n")  # size mismatch
        assert main([str(path)]) == 1
        assert "spl-compile:" in capsys.readouterr().err

    def test_stdin(self, monkeypatch, capsys):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("(I 2)\n"))
        assert main(["-"]) == 0
        assert "subroutine" in capsys.readouterr().out

    def test_optimize_none(self, spl_file, capsys):
        assert main([str(spl_file), "--optimize", "none", "--unroll"]) == 0
        out = capsys.readouterr().out
        assert "t0(" in out  # temp arrays survive without scalarization
