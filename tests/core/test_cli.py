"""Tests for the spl-compile command-line interface."""

import pytest

from repro.core.cli import main


@pytest.fixture
def spl_file(tmp_path):
    path = tmp_path / "prog.spl"
    path.write_text("#subname fft4\n"
                    "(compose (tensor (F 2) (I 2)) (T 4 2) "
                    "(tensor (I 2) (F 2)) (L 4 2))\n")
    return path


class TestCli:
    def test_default_fortran_output(self, spl_file, capsys):
        assert main([str(spl_file)]) == 0
        out = capsys.readouterr().out
        assert "subroutine fft4 (y,x)" in out

    def test_c_output(self, spl_file, capsys):
        assert main([str(spl_file), "--language", "c"]) == 0
        out = capsys.readouterr().out
        assert "void fft4(" in out

    def test_python_output(self, spl_file, capsys):
        assert main([str(spl_file), "--language", "python"]) == 0
        assert "def fft4(" in capsys.readouterr().out

    def test_numpy_output(self, spl_file, capsys):
        assert main([str(spl_file), "--language", "numpy"]) == 0
        out = capsys.readouterr().out
        assert "import numpy as np" in out
        assert "def fft4(y, x):" in out

    def test_batch_timing(self, spl_file, capsys):
        assert main([str(spl_file), "--language", "numpy",
                     "--batch", "4", "--min-time", "0.001"]) == 0
        captured = capsys.readouterr()
        assert "batch=4" in captured.err
        assert "backend=numpy" in captured.err
        assert "vectors/sec" in captured.err
        assert "def fft4(y, x):" in captured.out  # source still printed

    def test_batch_rejects_nonpositive(self, spl_file, capsys):
        assert main([str(spl_file), "--batch", "0"]) == 2
        assert "positive" in capsys.readouterr().err

    def test_unroll_threshold_flag(self, spl_file, capsys):
        assert main([str(spl_file), "-B", "32", "--language", "c"]) == 0
        out = capsys.readouterr().out
        assert "for (" not in out  # fully unrolled

    def test_stats_flag(self, spl_file, capsys):
        assert main([str(spl_file), "--stats"]) == 0
        err = capsys.readouterr().err
        assert "flops=" in err

    def test_missing_file(self, capsys):
        assert main(["/nonexistent/file.spl"]) == 2

    def test_bad_program_reports_error(self, tmp_path, capsys):
        path = tmp_path / "bad.spl"
        path.write_text("(compose (F 2) (F 4))\n")  # size mismatch
        assert main([str(path)]) == 1
        assert "spl-compile:" in capsys.readouterr().err

    def test_stdin(self, monkeypatch, capsys):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("(I 2)\n"))
        assert main(["-"]) == 0
        assert "subroutine" in capsys.readouterr().out

    def test_optimize_none(self, spl_file, capsys):
        assert main([str(spl_file), "--optimize", "none", "--unroll"]) == 0
        out = capsys.readouterr().out
        assert "t0(" in out  # temp arrays survive without scalarization

    def test_no_file_and_no_search_is_an_error(self, capsys):
        assert main([]) == 2
        assert "required" in capsys.readouterr().err


class TestCliDiagnostics:
    """Errors must come out rendered — with code, span and caret —
    and exit 1; the CLI never shows a traceback for bad input."""

    def test_syntax_error_is_rendered_with_caret(self, tmp_path, capsys):
        path = tmp_path / "bad.spl"
        path.write_text("(compose\n  (F 2) @@\n  (F 2))\n")
        assert main([str(path)]) == 1
        err = capsys.readouterr().err
        assert "Traceback" not in err
        assert "error SPL-E100" in err
        assert "line 2" in err
        assert str(path) in err
        assert "^" in err  # the caret snippet

    def test_multiple_parse_errors_reported_in_one_run(self, tmp_path,
                                                       capsys):
        path = tmp_path / "multi.spl"
        path.write_text("#wibble on\n"
                        "(I 2)\n"
                        "#unroll sideways\n"
                        "(J 2)\n")
        assert main([str(path)]) == 1
        err = capsys.readouterr().err
        # Both bad directives diagnosed despite resynchronization.
        assert err.count("error SPL-E") == 2
        assert "#wibble" in err
        assert "#unroll" in err
        assert "Traceback" not in err

    def test_multiple_compile_errors_reported_in_one_run(self, tmp_path,
                                                         capsys):
        path = tmp_path / "multi2.spl"
        path.write_text("(compose (F 2) (F 3))\n"
                        "(I 2)\n"
                        "(frobnicate 4)\n")
        assert main([str(path)]) == 1
        err = capsys.readouterr().err
        # Units 1 and 3 each get their own rendered diagnostic.
        assert err.count("error SPL-E") == 2
        assert "Traceback" not in err

    def test_truncated_source_is_a_clean_diagnostic(self, tmp_path, capsys):
        path = tmp_path / "cut.spl"
        path.write_text("(compose (tensor (F 2) (I 2)) (T 4")
        assert main([str(path)]) == 1
        err = capsys.readouterr().err
        assert "error SPL-E1" in err
        assert "Traceback" not in err

    def test_recursion_bomb_exits_typed(self, tmp_path, capsys):
        path = tmp_path / "deep.spl"
        depth = 500
        path.write_text("(compose (I 2) " * depth + "(I 2)" + ")" * depth)
        assert main([str(path)]) == 1
        err = capsys.readouterr().err
        assert "error SPL-E201" in err
        assert "RecursionError" not in err
        assert "Traceback" not in err

    def test_unroll_bomb_exits_typed(self, tmp_path, capsys):
        path = tmp_path / "bomb.spl"
        path.write_text("#unroll on\n(tensor (I 64) (F 64))\n")
        assert main([str(path)]) == 1
        err = capsys.readouterr().err
        assert "error SPL-E20" in err
        assert "Traceback" not in err

    def test_compile_error_names_the_unit_line(self, tmp_path, capsys):
        path = tmp_path / "semantic.spl"
        path.write_text("; fine until codegen\n(compose (F 2) (F 4))\n")
        assert main([str(path)]) == 1
        err = capsys.readouterr().err
        assert "error SPL-E" in err
        assert "line 2" in err

    def test_limit_flags_are_honored(self, tmp_path, capsys):
        path = tmp_path / "f8.spl"
        path.write_text("#unroll on\n(F 8)\n")
        assert main([str(path), "--max-unroll", "5"]) == 1
        err = capsys.readouterr().err
        assert "error SPL-E204" in err
        capsys.readouterr()
        assert main([str(path)]) == 0  # fine under the defaults

    def test_limit_flags_parse(self):
        from repro.core.cli import build_arg_parser

        args = build_arg_parser().parse_args(
            ["x.spl", "--max-icode", "1000", "--max-unroll", "2000",
             "--compile-deadline", "3.5"])
        assert args.max_icode == 1000
        assert args.max_unroll == 2000
        assert args.compile_deadline == 3.5
        defaults = build_arg_parser().parse_args(["x.spl"])
        assert defaults.max_icode is None
        assert defaults.compile_deadline is None

    def test_keyboard_interrupt_exits_130(self, spl_file, monkeypatch,
                                          capsys):
        from repro.core import cli

        def interrupt(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli.SplCompiler, "compile_unit", interrupt)
        assert main([str(spl_file)]) == 130
        assert "interrupted" in capsys.readouterr().err


class TestCliSearch:
    def test_search_fft_with_wisdom(self, tmp_path, capsys):
        wisdom_file = tmp_path / "wisdom.json"
        argv = ["--search-fft", "2,4", "--wisdom", str(wisdom_file),
                "--min-time", "0.0005", "--max-candidates", "3"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "pseudo-MFlops" in out
        assert wisdom_file.exists()
        # Warm run: winners replayed from the wisdom file.
        assert main(argv + ["--stats"]) == 0
        captured = capsys.readouterr()
        assert "(wisdom)" in captured.out
        assert "wisdom[" in captured.err
        assert "2 hits" in captured.err

    def test_search_fft_parallel_jobs(self, tmp_path, capsys):
        assert main(["--search-fft", "2,4", "--jobs", "2",
                     "--min-time", "0.0005", "--max-candidates", "2"]) == 0
        assert "pseudo-MFlops" in capsys.readouterr().out

    def test_bad_sizes_rejected(self, capsys):
        assert main(["--search-fft", "two,four"]) == 2
        assert main(["--search-fft", ","]) == 2

    def test_search_with_explicit_sandbox_knobs(self, capsys):
        assert main(["--search-fft", "2,4", "--min-time", "0.0005",
                     "--max-candidates", "2",
                     "--measure-timeout", "15"]) == 0
        assert "pseudo-MFlops" in capsys.readouterr().out

    def test_search_with_sandbox_disabled(self, capsys):
        assert main(["--search-fft", "2,4", "--min-time", "0.0005",
                     "--max-candidates", "2", "--no-sandbox"]) == 0
        assert "pseudo-MFlops" in capsys.readouterr().out

    def test_sandbox_flags_parse(self):
        from repro.core.cli import build_arg_parser

        args = build_arg_parser().parse_args(
            ["--search-fft", "8", "--measure-timeout", "2.5",
             "--no-sandbox"])
        assert args.measure_timeout == 2.5
        assert args.no_sandbox is True
        defaults = build_arg_parser().parse_args(["--search-fft", "8"])
        assert defaults.measure_timeout == 30.0
        assert defaults.no_sandbox is False
