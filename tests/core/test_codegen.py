"""Unit tests for intermediate code generation (Section 3.2)."""

import pytest

from repro.core.codegen import CodeGenerator
from repro.core.compiler import SplCompiler
from repro.core.errors import SplTemplateError
from repro.core.icode import Loop, Op, VecRef, iter_ops
from repro.core.parser import parse_formula_text
from tests.conftest import assert_program_matches_matrix


def generate(text: str, *, strided=False, unroll_all=False, threshold=None):
    compiler = SplCompiler()
    gen = CodeGenerator(compiler.templates, unroll_all=unroll_all,
                        unroll_threshold=threshold)
    formula = parse_formula_text(text)
    return gen.generate(formula, "test", "complex", strided=strided)


class TestBasicExpansion:
    def test_identity_copy_loop(self):
        program = generate("(I 4)")
        loops = [i for i in program.body if isinstance(i, Loop)]
        assert len(loops) == 1
        assert loops[0].count == 4

    def test_f2_straight_line(self):
        program = generate("(F 2)")
        assert all(isinstance(i, Op) for i in program.body)
        assert_program_matches_matrix(program, "(F 2)")

    def test_general_f_uses_nested_loops(self):
        program = generate("(F 3)")
        outer = [i for i in program.body if isinstance(i, Loop)]
        assert len(outer) == 1
        inner = [i for i in outer[0].body if isinstance(i, Loop)]
        assert len(inner) == 1
        assert_program_matches_matrix(program, "(F 3)")

    def test_compose_allocates_temp(self):
        program = generate("(compose (F 2) (F 2))")
        temps = program.temp_vectors()
        assert len(temps) == 1
        assert temps[0].size == 2

    def test_tensor_i_left_no_temp(self):
        program = generate("(tensor (I 4) (F 2))")
        assert program.temp_vectors() == []
        assert_program_matches_matrix(program, "(tensor (I 4) (F 2))")

    def test_tensor_i_right_strides(self):
        program = generate("(tensor (F 2) (I 4))")
        assert program.temp_vectors() == []
        assert_program_matches_matrix(program, "(tensor (F 2) (I 4))")

    def test_general_tensor_uses_temp(self):
        program = generate("(tensor (F 2) (F 3))")
        assert len(program.temp_vectors()) == 1
        assert_program_matches_matrix(program, "(tensor (F 2) (F 3))")

    def test_direct_sum(self):
        program = generate("(direct-sum (F 2) (I 3))")
        assert_program_matches_matrix(program, "(direct-sum (F 2) (I 3))")

    def test_stride_permutation(self):
        assert_program_matches_matrix(generate("(L 8 2)"), "(L 8 2)")
        assert_program_matches_matrix(generate("(L 8 4)"), "(L 8 4)")

    def test_twiddle(self):
        assert_program_matches_matrix(generate("(T 8 4)"), "(T 8 4)")

    def test_reversal(self):
        assert_program_matches_matrix(generate("(J 5)"), "(J 5)")

    def test_no_template_error(self):
        with pytest.raises(SplTemplateError):
            generate("(ZZZ 3)")


class TestLiterals:
    def test_diagonal(self):
        assert_program_matches_matrix(
            generate("(diagonal (2 -1 0.5))"), "(diagonal (2 -1 0.5))"
        )

    def test_permutation(self):
        assert_program_matches_matrix(
            generate("(permutation (3 1 2))"), "(permutation (3 1 2))"
        )

    def test_dense_matrix(self):
        text = "(matrix (1 2) (3 4))"
        assert_program_matches_matrix(generate(text), text)

    def test_matrix_with_zero_row(self):
        text = "(matrix (0 0) (1 1))"
        assert_program_matches_matrix(generate(text), text)

    def test_matrix_with_complex_entries(self):
        text = "(matrix (1 i) (1 -i))"
        assert_program_matches_matrix(generate(text), text)


class TestUnrollMarking:
    def test_unroll_all_marks_loops(self):
        program = generate("(I 8)", unroll_all=True)
        assert all(loop.unroll for loop in program.body
                   if isinstance(loop, Loop))

    def test_threshold_marks_small_only(self):
        # (tensor (I 8) (F 4)): the outer formula has input 32, the
        # inner F 4 has input 4; with -B 4 only F-loops are marked.
        program = generate("(tensor (I 8) (F 4))", threshold=4)

        def collect(body, depth=0):
            marks = []
            for inst in body:
                if isinstance(inst, Loop):
                    marks.append((depth, inst.unroll))
                    marks.extend(collect(inst.body, depth + 1))
            return marks

        marks = collect(program.body)
        assert (0, False) in marks  # outer loop not unrolled
        assert any(flag for depth, flag in marks if depth > 0)

    def test_per_formula_unroll_flag(self):
        formula = parse_formula_text("(tensor (I 8) (F 4))")
        inner = formula.right.with_unroll(True)
        formula = type(formula)(left=formula.left, right=inner)
        compiler = SplCompiler()
        gen = CodeGenerator(compiler.templates)
        program = gen.generate(formula, "test", "complex")
        outer = [i for i in program.body if isinstance(i, Loop)][0]
        assert not outer.unroll
        assert all(loop.unroll for loop in outer.body
                   if isinstance(loop, Loop))


class TestStridedGeneration:
    def test_strided_program_runs(self):
        from repro.core.interpreter import run_program

        program = generate("(F 2)", strided=True)
        assert program.strided
        # x = [_, a, _, b] with stride 2 offset 1 -> y = [a+b, a-b]
        out = run_program(program, [0, 10, 0, 20], istride=2, iofs=1,
                          ostride=1, oofs=0)
        assert out[:2] == [30, -10]

    def test_strided_output(self):
        from repro.core.interpreter import run_program

        program = generate("(F 2)", strided=True)
        out = run_program(program, [1, 2], ostride=2, oofs=1)
        assert out[1] == 3 and out[3] == -1


class TestTempSizing:
    def test_temp_size_covers_loops(self):
        program = generate("(tensor (F 3) (F 2))")
        temp = program.temp_vectors()[0]
        assert temp.size == 6

    def test_nested_compose_temps(self):
        program = generate("(compose (F 2) (F 2) (F 2))")
        sizes = sorted(t.size for t in program.temp_vectors())
        assert sizes == [2, 2]
