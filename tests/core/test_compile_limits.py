"""Resource governance: hostile inputs must die fast, typed, and named.

Every test here throws a deliberately pathological program at the
compiler and asserts three things: (1) the failure is a typed
``SplResourceError`` (or ``SplSyntaxError`` for malformed text) — never
a ``RecursionError``, ``MemoryError`` or hang; (2) the error names the
limit and the offending construct; (3) it arrives quickly, because the
budgets are pre-checked arithmetically instead of discovered by dying.
"""

import time

import pytest

from repro.core import nodes
from repro.core.compiler import CompilerOptions, SplCompiler
from repro.core.errors import SplResourceError, SplSyntaxError
from repro.core.limits import (
    CompileBudget,
    CompileLimits,
    DEFAULT_LIMITS,
    formula_depth,
)
from repro.wisdom.keys import wisdom_key


def nested_compose_source(depth: int) -> str:
    return "(compose (I 2) " * depth + "(I 2)" + ")" * depth


class TestRecursionBombs:
    def test_deep_source_nest_is_rejected_not_recursion_error(self):
        source = nested_compose_source(500)
        compiler = SplCompiler()
        start = time.monotonic()
        with pytest.raises(SplResourceError) as err:
            compiler.compile_text(source)
        assert time.monotonic() - start < 5.0
        assert err.value.code == "SPL-E201"
        assert err.value.limit_name == "max_formula_depth"
        assert "depth" in str(err.value)

    def test_programmatic_deep_ast_is_rejected(self):
        """ASTs built in Python bypass the parser; compile_formula must
        still depth-check them without recursing."""
        formula = nodes.identity(2)
        for _ in range(5000):
            formula = nodes.Compose(left=nodes.identity(2), right=formula)
        compiler = SplCompiler()
        with pytest.raises(SplResourceError) as err:
            compiler.compile_formula(formula)
        assert err.value.code == "SPL-E201"

    def test_formula_depth_is_iterative(self):
        formula = nodes.identity(2)
        for _ in range(50_000):
            formula = nodes.Compose(left=nodes.identity(2), right=formula)
        # Would blow the Python stack if computed recursively.
        assert formula_depth(formula) == 50_001

    def test_deep_but_legal_nest_compiles(self):
        source = nested_compose_source(40)
        compiler = SplCompiler(CompilerOptions(language="python"))
        (routine,) = compiler.compile_text(source)
        assert routine.run([1.0, 2.0]) == [1.0, 2.0]


class TestUnrollBombs:
    def test_unroll_bomb_is_pre_checked(self):
        source = "#unroll on\n(tensor (I 64) (F 64))\n"
        compiler = SplCompiler()
        start = time.monotonic()
        with pytest.raises(SplResourceError) as err:
            compiler.compile_text(source)
        assert time.monotonic() - start < 30.0
        assert err.value.code in ("SPL-E203", "SPL-E204")
        assert err.value.limit is not None
        assert err.value.actual is not None
        assert err.value.actual > err.value.limit

    def test_small_unroll_budget_names_the_loop(self):
        limits = DEFAULT_LIMITS.with_overrides(max_unroll_statements=10)
        compiler = SplCompiler(limits=limits)
        with pytest.raises(SplResourceError) as err:
            compiler.compile_text("#unroll on\n(tensor (I 16) (F 2))\n")
        assert err.value.code == "SPL-E204"
        assert err.value.limit_name == "max_unroll_statements"
        assert "do $" in str(err.value) or "program" in str(err.value)


class TestStatementAndTableBudgets:
    def test_tiny_icode_budget(self):
        limits = DEFAULT_LIMITS.with_overrides(max_icode_statements=4)
        compiler = SplCompiler(limits=limits)
        with pytest.raises(SplResourceError) as err:
            compiler.compile_formula("(F 8)")
        assert err.value.code == "SPL-E203"
        assert err.value.limit_name == "max_icode_statements"

    def test_tiny_expansion_budget(self):
        limits = DEFAULT_LIMITS.with_overrides(max_expansions=2)
        compiler = SplCompiler(limits=limits)
        with pytest.raises(SplResourceError) as err:
            # Each compose level expands itself plus two operands, so
            # this needs far more than 2 expansions.
            compiler.compile_formula(nested_compose_source(10))
        assert err.value.code == "SPL-E202"
        assert err.value.limit_name == "max_expansions"
        # The diagnostic names the chain of constructs being expanded.
        assert err.value.formula_path

    def test_oversized_twiddle_table(self):
        limits = DEFAULT_LIMITS.with_overrides(max_table_bytes=64)
        compiler = SplCompiler(limits=limits)
        with pytest.raises(SplResourceError) as err:
            compiler.compile_formula("(F 32)")
        assert err.value.code == "SPL-E205"
        assert err.value.limit_name == "max_table_bytes"
        assert "intrinsic" in str(err.value)

    def test_generous_budgets_do_not_interfere(self):
        compiler = SplCompiler(CompilerOptions(language="python"))
        routine = compiler.compile_formula("(F 64)")
        assert routine.in_size == 64


class TestDeadline:
    def test_near_zero_deadline_fails_typed(self):
        limits = DEFAULT_LIMITS.with_overrides(compile_deadline=1e-9)
        compiler = SplCompiler(limits=limits)
        with pytest.raises(SplResourceError) as err:
            compiler.compile_formula("(F 64)")
        assert err.value.code == "SPL-E206"
        assert err.value.limit_name == "compile_deadline"

    def test_default_deadline_is_ample_for_real_programs(self):
        compiler = SplCompiler(CompilerOptions(language="python",
                                               unroll=True))
        routine = compiler.compile_formula("(F 16)")
        assert routine.in_size == 16


class TestMalformedSources:
    @pytest.mark.parametrize("source", [
        "",
        "   \n\n",
        "; only comments\n",
    ])
    def test_empty_and_comment_sources_compile_to_nothing(self, source):
        assert SplCompiler().compile_text(source) == []

    @pytest.mark.parametrize("source", [
        "(compose (F 2",                      # truncated
        "(compose (F 2)))",                   # stray close paren
        "@@garbage@@",                        # non-grammar characters
        "(tensor (F 2) (F 2)",                # missing close at EOF
        "((((((",                             # opens only
    ])
    def test_garbage_is_a_typed_syntax_error(self, source):
        with pytest.raises(SplSyntaxError):
            SplCompiler().compile_text(source)


class TestLimitsObject:
    def test_fingerprint_is_stable_and_distinguishes(self):
        a = CompileLimits()
        b = CompileLimits()
        assert a.fingerprint() == b.fingerprint()
        c = a.with_overrides(max_expansions=7)
        assert c.fingerprint() != a.fingerprint()

    def test_with_overrides_ignores_none(self):
        limits = DEFAULT_LIMITS.with_overrides(max_icode_statements=None,
                                               compile_deadline=5.0)
        assert limits.max_icode_statements == \
            DEFAULT_LIMITS.max_icode_statements
        assert limits.compile_deadline == 5.0

    def test_budget_charges_accumulate(self):
        budget = CompileBudget(DEFAULT_LIMITS.with_overrides(
            max_expansions=3))
        budget.charge_expansion("(F 2)")
        budget.charge_expansion("(F 2)")
        budget.charge_expansion("(F 2)")
        with pytest.raises(SplResourceError) as err:
            budget.charge_expansion("(F 2)")
        assert err.value.code == "SPL-E202"


class TestCacheInvalidation:
    def test_limit_change_misses_compile_memo(self):
        compiler = SplCompiler(CompilerOptions(language="python"))
        first = compiler.compile_formula("(F 4)")
        again = compiler.compile_formula("(F 4)")
        assert again is first
        other = compiler.compile_formula(
            "(F 4)", limits=DEFAULT_LIMITS.with_overrides(
                max_expansions=50_000)
        )
        assert other is not first

    def test_wisdom_key_folds_non_default_limits_only(self):
        base = wisdom_key("fft", 16)
        same = wisdom_key("fft", 16, limits=DEFAULT_LIMITS)
        assert same == base  # legacy keys stay valid
        tight = wisdom_key("fft", 16,
                           limits=DEFAULT_LIMITS.with_overrides(
                               max_expansions=9))
        assert tight != base
        assert tight.startswith(base)
