"""Integration tests for the compiler driver and its options."""

import pytest

from repro.core.compiler import (
    CompiledRoutine,
    CompilerOptions,
    SplCompiler,
    compile_text,
)
from repro.core.errors import SplSemanticError
from repro.core.icode import Loop, Op, iter_ops
from tests.conftest import assert_routine_matches_matrix

F4 = ("(compose (tensor (F 2) (I 2)) (T 4 2) "
      "(tensor (I 2) (F 2)) (L 4 2))")


class TestOptions:
    def test_invalid_opt_level_rejected(self):
        with pytest.raises(SplSemanticError):
            CompilerOptions(optimize="hard")

    def test_language_override(self):
        compiler = SplCompiler(CompilerOptions(language="c"))
        (routine,) = compiler.compile_text("#language fortran\n(F 2)")
        assert routine.language == "c"

    def test_datatype_override(self):
        compiler = SplCompiler(CompilerOptions(datatype="real"))
        (routine,) = compiler.compile_text("(F 2)")
        assert routine.program.datatype == "real"
        assert routine.program.element_width == 1

    def test_unroll_threshold(self):
        compiler = SplCompiler(CompilerOptions(unroll_threshold=4,
                                               language="python"))
        routine = compiler.compile_formula("(tensor (I 8) (F 4))", "t")
        # Outer loop (input 32 > 4) survives; inner F4 loops unrolled.
        loops = [i for i in routine.program.body if isinstance(i, Loop)]
        assert len(loops) == 1
        assert not any(isinstance(i, Loop) for i in loops[0].body)


class TestOptimizationLevels:
    """The three code versions of Figure 2."""

    def compile(self, level):
        compiler = SplCompiler(CompilerOptions(optimize=level, unroll=True,
                                               language="python"))
        return compiler.compile_formula(F4, "t")

    def test_none_keeps_temp_arrays(self):
        routine = self.compile("none")
        assert routine.program.temp_vectors()

    def test_scalars_removes_temp_arrays(self):
        routine = self.compile("scalars")
        assert not routine.program.temp_vectors()

    def test_default_reduces_ops(self):
        ops_scalars = len(list(iter_ops(self.compile("scalars").program.body)))
        ops_default = len(list(iter_ops(self.compile("default").program.body)))
        assert ops_default < ops_scalars

    @pytest.mark.parametrize("level", ["none", "scalars", "default"])
    def test_all_levels_correct(self, level):
        assert_routine_matches_matrix(self.compile(level))


class TestPeephole:
    def test_no_unary_minus_with_peephole(self):
        compiler = SplCompiler(CompilerOptions(peephole=True, unroll=True,
                                               language="fortran"))
        routine = compiler.compile_formula("(T 8 2)", "t")
        assert not any(op.op == "neg"
                       for op in iter_ops(routine.program.body))

    def test_peephole_preserves_semantics(self):
        compiler = SplCompiler(CompilerOptions(peephole=True, unroll=True,
                                               language="python"))
        routine = compiler.compile_formula(F4, "t")
        assert_routine_matches_matrix(routine)


class TestSession:
    def test_defines_persist_across_compiles(self):
        compiler = SplCompiler()
        compiler.compile_text("(define TWO (F 2))")
        routine = compiler.compile_formula("(tensor (I 2) TWO)", "t",
                                           language="python")
        assert routine.in_size == 4

    def test_templates_persist(self):
        compiler = SplCompiler()
        compiler.parse("""
        (template (DOUBLE n_) [n_ > 0]
          (
            do $i0 = 0, n_ - 1
              $out($i0) = 2.0 * $in($i0)
            end
          ))
        """)
        routine = compiler.compile_formula("(DOUBLE 4)", "t",
                                           language="python",
                                           datatype="real")
        assert routine.run([1.0, 1.0, 1.0, 1.0]) == [2.0] * 4

    def test_add_definitions_rejects_formulas(self):
        compiler = SplCompiler()
        with pytest.raises(SplSemanticError):
            compiler.add_definitions("(F 2)")

    def test_compile_text_convenience(self):
        routines = compile_text("#subname a\n(F 2)\n#subname b\n(I 2)")
        assert [r.name for r in routines] == ["a", "b"]


class TestCompiledRoutine:
    def test_run_validates_length(self):
        compiler = SplCompiler()
        routine = compiler.compile_formula("(F 2)", "t", language="python")
        with pytest.raises(SplSemanticError):
            routine.run([1.0])

    def test_flop_count_positive(self):
        compiler = SplCompiler()
        routine = compiler.compile_formula("(F 4)", "t", language="python")
        assert routine.flop_count > 0

    def test_sizes_exposed(self):
        compiler = SplCompiler()
        routine = compiler.compile_formula("(L 8 2)", "t", language="python")
        assert (routine.in_size, routine.out_size) == (8, 8)

    def test_callable_cached(self):
        compiler = SplCompiler()
        routine = compiler.compile_formula("(I 2)", "t", language="python")
        assert routine.callable() is routine.callable()


class TestVectorize:
    """Section 3.5: vectorization wraps A into A (x) I_m."""

    def test_sizes_scale(self):
        compiler = SplCompiler()
        routine = compiler.compile_formula("(F 4)", "v", language="python",
                                           vectorize=4)
        assert routine.in_size == 16

    def test_semantics(self):
        import numpy as np

        compiler = SplCompiler()
        routine = compiler.compile_formula("(F 2)", "v2", language="python",
                                           vectorize=3)
        # Three interleaved 2-point signals.
        x = np.arange(6, dtype=float) + 0j
        y = np.asarray(routine.run(list(x)))
        for lane in range(3):
            np.testing.assert_allclose(y[lane::3], np.fft.fft(x[lane::3]),
                                       atol=1e-12)

    def test_invalid_factor(self):
        compiler = SplCompiler()
        with pytest.raises(SplSemanticError):
            compiler.compile_formula("(F 2)", "v3", vectorize=0)
