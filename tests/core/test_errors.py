"""Structured-diagnostic behavior of the SplError hierarchy."""

import pytest

from repro.core.errors import (
    SplError,
    SplNameError,
    SplResourceError,
    SplSemanticError,
    SplSyntaxError,
    SplTemplateError,
)


class TestMessageFormatting:
    def test_message_stored_bare(self):
        err = SplSyntaxError("unbalanced parenthesis", line=3)
        assert err.message == "unbalanced parenthesis"
        assert str(err) == "line 3: unbalanced parenthesis"

    def test_no_location_prefix_duplication_on_rewrap(self):
        """Re-raising with the same line must not stack 'line N:' prefixes."""
        original = SplSyntaxError("bad token", line=2)
        rewrapped = SplSyntaxError(original.message, line=original.line)
        assert str(rewrapped) == "line 2: bad token"
        assert str(rewrapped).count("line 2") == 1

    def test_column_in_location(self):
        err = SplSyntaxError("oops", line=4, col=9)
        assert err.location == "line 4, col 9"
        assert str(err) == "line 4, col 9: oops"

    def test_no_location_at_all(self):
        err = SplSemanticError("sizes differ")
        assert err.location == ""
        assert str(err) == "sizes differ"


class TestErrorCodes:
    @pytest.mark.parametrize("cls,code", [
        (SplError, "SPL-E000"),
        (SplSyntaxError, "SPL-E100"),
        (SplNameError, "SPL-E101"),
        (SplSemanticError, "SPL-E102"),
        (SplTemplateError, "SPL-E103"),
        (SplResourceError, "SPL-E200"),
    ])
    def test_default_codes(self, cls, code):
        assert cls("x").code == code

    def test_explicit_code_wins(self):
        err = SplResourceError("too deep", code="SPL-E201")
        assert err.code == "SPL-E201"

    def test_resource_error_carries_limit_facts(self):
        err = SplResourceError("budget blown", limit_name="max_expansions",
                               limit=10, actual=11)
        assert (err.limit_name, err.limit, err.actual) == (
            "max_expansions", 10, 11
        )


class TestRender:
    SOURCE = "(compose\n  (F 2) @@\n  (F 2))\n"

    def test_render_includes_code_and_caret(self):
        err = SplSyntaxError("unexpected character '@'", line=2, col=9)
        text = err.render(self.SOURCE, filename="bad.spl")
        lines = text.split("\n")
        assert lines[0] == (
            "bad.spl: error SPL-E100 at line 2, col 9: "
            "unexpected character '@'"
        )
        assert lines[1] == "  2 |   (F 2) @@"
        assert lines[2].endswith("^")
        # The caret sits under column 9.
        assert lines[2].index("^") == lines[1].index("@")

    def test_render_without_source(self):
        err = SplSemanticError("sizes differ", line=5)
        text = err.render()
        assert text == "<spl>: error SPL-E102 at line 5: sizes differ"

    def test_render_formula_path(self):
        err = SplResourceError("expansion budget exceeded",
                               formula_path=("(F 8)", "(tensor ...)"))
        text = err.render()
        assert "    in (F 8)" in text
        assert "    in (tensor ...)" in text

    def test_render_out_of_range_line_omits_snippet(self):
        err = SplSyntaxError("truncated", line=99)
        assert err.render(self.SOURCE) == (
            "<spl>: error SPL-E100 at line 99: truncated"
        )
