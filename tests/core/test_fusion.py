"""Tests for the fusion-grade optimizer and its validation oracle.

Covers the two fusion passes (copy-stage forwarding, conformable nest
fusion), liveness-based scratch reuse, the per-pass translation-
validation oracle — including that it catches a deliberately broken
pass — mid-pipeline resource-limit failures, and execution of fused
plans on strided views, real-datatype fallbacks, and batches.
"""

import numpy as np
import pytest

from repro.core import validate
from repro.core.compiler import CompilerOptions, SplCompiler
from repro.core.errors import SplError, SplResourceError, SplValidationError
from repro.core.fusion import forward_copy_stages, fuse_conformable_stages
from repro.core.icode import (
    FConst,
    IExpr,
    Loop,
    Op,
    Program,
    VEC_INPUT,
    VEC_OUTPUT,
    VEC_TEMP,
    VecInfo,
    VecRef,
    iter_ops,
)
from repro.core.interpreter import run_program
from repro.core.limits import DEFAULT_LIMITS, CompileBudget
from repro.core.optimizer import PassPipeline
from repro.perfeval.runner import build_executable
from tests.conftest import assert_routine_matches_matrix

COMPOSE_CHAIN = "(compose (F 4) (tensor (F 2) (I 2)) (tensor (I 2) (F 2)))"


def make(body, n=4, temps=()):
    program = Program(name="p", in_size=n, out_size=n, datatype="real",
                      body=body)
    program.vectors["x"] = VecInfo("x", n, VEC_INPUT)
    program.vectors["y"] = VecInfo("y", n, VEC_OUTPUT)
    for name, size in temps:
        program.vectors[name] = VecInfo(name, size, VEC_TEMP)
    return program


def budget():
    return CompileBudget(DEFAULT_LIMITS)


class TestCopyForwarding:
    def reversal_program(self):
        i0, i1 = IExpr.var("i0"), IExpr.var("i1")
        return make([
            Loop("i0", 4, [
                Op("=", VecRef("t0", i0), VecRef("x", -i0 + 3)),
            ]),
            Loop("i1", 4, [
                Op("+", VecRef("y", i1), VecRef("t0", i1),
                   VecRef("t0", i1)),
            ]),
        ], temps=(("t0", 4),))

    def test_stage_removed_and_temp_deleted(self):
        program = self.reversal_program()
        stats = forward_copy_stages(program, budget())
        assert stats.stages_removed == 1
        assert stats.reads_forwarded == 2
        assert "t0" not in program.vectors
        assert len(program.body) == 1  # only the consumer loop remains
        reads = {item.vec for op in iter_ops(program.body)
                 for item in op.operands() if isinstance(item, VecRef)}
        assert reads == {"x"}

    def test_semantics_preserved(self):
        x = [1.0, -2.0, 3.0, 0.5]
        program = self.reversal_program()
        before = run_program(self.reversal_program(), x)
        forward_copy_stages(program, budget())
        assert run_program(program, x) == before

    def test_unstable_source_not_forwarded(self):
        # The "copy stage" reads y, which is written again afterwards:
        # forwarding would read the *new* y value.  Must be refused.
        i0, i1 = IExpr.var("i0"), IExpr.var("i1")
        program = make([
            Loop("i0", 4, [
                Op("=", VecRef("t0", i0), VecRef("y", i0)),
            ]),
            Loop("i1", 4, [
                Op("=", VecRef("y", i1), VecRef("x", i1)),
            ]),
            Loop("i2", 4, [
                Op("+", VecRef("y", IExpr.var("i2")),
                   VecRef("y", IExpr.var("i2")),
                   VecRef("t0", IExpr.var("i2"))),
            ]),
        ], temps=(("t0", 4),))
        stats = forward_copy_stages(program, budget())
        assert stats.stages_removed == 0
        assert "t0" in program.vectors


class TestConformableFusion:
    def two_stage_program(self):
        i0, i1 = IExpr.var("i0"), IExpr.var("i1")
        return make([
            Loop("i0", 4, [
                Op("*", VecRef("t0", i0), VecRef("x", i0), FConst(2.0)),
            ]),
            Loop("i1", 4, [
                Op("+", VecRef("y", i1), VecRef("t0", i1), FConst(1.0)),
            ]),
        ], temps=(("t0", 4),))

    def test_nests_merge(self):
        program = self.two_stage_program()
        stats = fuse_conformable_stages(program, budget())
        assert stats.loops_fused == 1
        assert len(program.body) == 1
        assert isinstance(program.body[0], Loop)

    def test_semantics_preserved(self):
        x = [0.25, -1.0, 2.0, 4.0]
        program = self.two_stage_program()
        before = run_program(self.two_stage_program(), x)
        fuse_conformable_stages(program, budget())
        assert run_program(program, x) == before

    def test_noninjective_store_map_refused(self):
        # Producer writes t0(0) on every iteration: a consumer indexed
        # by its own loop variable must NOT take the per-iteration
        # value (only the last write is live).
        i0, i1 = IExpr.var("i0"), IExpr.var("i1")
        program = make([
            Loop("i0", 4, [
                Op("=", VecRef("t0", IExpr.const(0)), VecRef("x", i0)),
            ]),
            Loop("i1", 4, [
                Op("=", VecRef("y", i1), VecRef("t0", IExpr.const(0))),
            ]),
        ], temps=(("t0", 4),))
        stats = fuse_conformable_stages(program, budget())
        assert stats.loops_fused == 0


class TestOracle:
    def doubler(self):
        i0 = IExpr.var("i0")
        return make([
            Loop("i0", 4, [
                Op("*", VecRef("y", i0), VecRef("x", i0), FConst(2.0)),
            ]),
        ])

    def test_catches_deliberately_broken_pass(self):
        program = self.doubler()
        pipeline = PassPipeline(program, validate=True)

        def broken(p):
            # Miscompile: change the multiplier under the oracle's nose.
            for op in iter_ops(p.body):
                op.a = FConst(3.0)

        with pytest.raises(SplValidationError) as excinfo:
            pipeline.run("broken", broken)
        assert excinfo.value.code == "SPL-E300"
        assert "broken" in str(excinfo.value)

    def test_accepts_sound_pass(self):
        program = self.doubler()
        pipeline = PassPipeline(program, validate=True)
        pipeline.run("fuse-copies",
                     lambda p: forward_copy_stages(p, budget()))
        assert all(record.validated for record in pipeline.records)

    def test_check_pass_direct(self):
        program = self.doubler()
        baseline = validate.program_signature(program)
        program.body[0].body[0].b = FConst(5.0)
        with pytest.raises(SplValidationError):
            validate.check_pass(program, baseline, "direct")


class TestCompiledPlans:
    def compile(self, **options):
        compiler = SplCompiler(CompilerOptions(
            codetype="real", unroll_threshold=2, **options))
        return compiler.compile_formula(COMPOSE_CHAIN, language="python")

    def test_fused_plan_matches_matrix(self):
        assert_routine_matches_matrix(self.compile(fusion=True))

    def test_full_pipeline_validates(self):
        routine = self.compile(fusion=True, validate_passes=True)
        assert routine.passes
        assert all(record.validated for record in routine.passes)
        assert_routine_matches_matrix(routine)

    def test_fusion_reduces_scratch(self):
        # A radix-2 n=8 plan: three compose stages, stage-at-a-time
        # code streams through one temp vector per stage boundary.
        from repro.formulas.factorization import ct_multi

        def compile_chain(fusion):
            compiler = SplCompiler(CompilerOptions(
                codetype="real", unroll_threshold=2, fusion=fusion))
            return compiler.compile_formula(ct_multi([2, 2, 2]),
                                            language="python")

        fused = compile_chain(True)
        plain = compile_chain(False)
        assert fused.scratch_bytes < plain.scratch_bytes
        assert fused.temps_eliminated > 0
        assert fused.scratch_bytes_before == plain.scratch_bytes
        assert_routine_matches_matrix(fused)

    def test_strided_plan_validates(self):
        compiler = SplCompiler(CompilerOptions(
            codetype="real", unroll_threshold=2, validate_passes=True))
        routine = compiler.compile_formula(
            "(compose (F 2) (F 2))", language="python", strided=True)
        assert routine.program.strided
        assert all(record.validated for record in routine.passes)

    def test_real_datatype_fallback_path(self):
        # Real-input programs skip typetrans; the fusion passes must
        # still run and the numpy backend must stay correct.  (F 2) is
        # a real matrix, so the whole chain is real-valued.
        from repro.formulas import to_matrix

        compiler = SplCompiler(CompilerOptions(unroll_threshold=2))
        routine = compiler.compile_formula(
            "(compose (tensor (F 2) (I 2)) (tensor (I 2) (F 2)))",
            language="numpy", datatype="real")
        matrix = to_matrix(routine.formula).real
        x = np.array([0.5, -1.0, 2.0, 0.25])
        np.testing.assert_allclose(routine.run(list(x)), matrix @ x,
                                   atol=1e-12)


class TestBatchedExecution:
    def executable(self):
        compiler = SplCompiler(CompilerOptions(
            codetype="real", unroll_threshold=4))
        routine = compiler.compile_formula(
            "(compose (F 8) (tensor (F 2) (I 4)))", language="numpy")
        return build_executable(routine, prefer="numpy")

    def test_batch_sizes_agree(self):
        executable = self.executable()
        rng = np.random.default_rng(3)
        n = executable.n
        X = rng.standard_normal((64, n)) + 1j * rng.standard_normal((64, n))
        Y64 = executable.apply_many(X)
        Y1 = executable.apply_many(X[:1])
        np.testing.assert_allclose(Y64[0], Y1[0], atol=1e-12)
        for b in (0, 17, 63):
            np.testing.assert_allclose(executable.apply(X[b]), Y64[b],
                                       atol=1e-12)

    def test_strided_batch_view(self):
        # A non-contiguous row view (every other row of a bigger
        # batch) must produce the same answers as its packed copy.
        executable = self.executable()
        rng = np.random.default_rng(4)
        n = executable.n
        base = rng.standard_normal((32, n)) \
            + 1j * rng.standard_normal((32, n))
        view = base[::2]
        assert not view.flags["C_CONTIGUOUS"]
        np.testing.assert_allclose(
            executable.apply_many(view),
            executable.apply_many(np.ascontiguousarray(view)),
            atol=1e-12,
        )


class TestLimitsMidPipeline:
    def test_fusion_charge_fails_typed(self):
        i0, i1 = IExpr.var("i0"), IExpr.var("i1")
        program = make([
            Loop("i0", 4, [
                Op("=", VecRef("t0", i0), VecRef("x", i0)),
            ]),
            Loop("i1", 4, [
                Op("=", VecRef("y", i1), VecRef("t0", i1)),
            ]),
        ], temps=(("t0", 4),))
        tight = CompileBudget(
            DEFAULT_LIMITS.with_overrides(max_icode_statements=8))
        tight.charge_statements(8, "codegen")  # pipeline already full
        with pytest.raises(SplResourceError) as excinfo:
            forward_copy_stages(program, tight)
        assert excinfo.value.code == "SPL-E203"

    def test_never_emits_half_fused_code(self):
        # Sweep the statement limit across the boundary where the
        # pipeline trips mid-flight: every outcome must be either a
        # typed rejection or a routine that matches the dense
        # semantics — never silently wrong code.
        rejected = correct = 0
        for max_icode in range(8, 129, 24):
            compiler = SplCompiler(
                CompilerOptions(codetype="real", unroll_threshold=2),
                limits=DEFAULT_LIMITS.with_overrides(
                    max_icode_statements=max_icode),
            )
            try:
                routine = compiler.compile_formula(
                    COMPOSE_CHAIN, language="python")
            except SplError as exc:
                assert exc.code is not None
                rejected += 1
                continue
            assert_routine_matches_matrix(routine)
            correct += 1
        assert rejected and correct  # the sweep crossed the boundary
