"""Unit tests for the i-code IR, especially the IExpr polynomial type."""

import pytest

from repro.core.errors import SplSemanticError
from repro.core.icode import (
    FConst,
    FVar,
    IExpr,
    Loop,
    Op,
    Program,
    VEC_INPUT,
    VEC_OUTPUT,
    VecInfo,
    VecRef,
    iter_ops,
    map_operands,
    subst_indices,
)


def var(name):
    return IExpr.var(name)


class TestIExprAlgebra:
    def test_const(self):
        assert IExpr.const(5).as_const() == 5

    def test_zero_is_empty(self):
        assert IExpr.const(0).terms == ()

    def test_addition(self):
        assert (var("i") + 2 + var("i")).as_const() is None
        assert ((var("i") + 2) - var("i")).as_const() == 2

    def test_multiplication_distributes(self):
        e = (var("i") + 1) * (var("j") + 2)
        expanded = (
            var("i") * var("j") + var("i") * 2 + var("j") + 2
        )
        assert e == expanded

    def test_negation(self):
        assert (-(var("i") - var("i"))).as_const() == 0

    def test_cancellation(self):
        assert (var("i") * 3 - var("i") * 3).terms == ()

    def test_radd_rmul(self):
        assert (2 + var("i")) == (var("i") + 2)
        assert (3 * var("i")) == (var("i") * 3)

    def test_rsub(self):
        assert (5 - var("i")) == (IExpr.const(5) - var("i"))

    def test_hashable_and_equal(self):
        assert hash(var("i") + 1) == hash(IExpr.var("i") + 1)

    def test_str_rendering(self):
        assert str(var("i") * 2 + 1) in ("1 + 2*i", "2*i + 1")
        assert str(IExpr.const(0)) == "0"


class TestIExprQueries:
    def test_free_vars(self):
        e = var("i") * var("j") + 3
        assert e.free_vars() == frozenset({"i", "j"})

    def test_affine_detection(self):
        coeffs, const = (var("i") * 2 + var("j") + 5).as_affine()
        assert coeffs == {"i": 2, "j": 1}
        assert const == 5

    def test_nonaffine_returns_none(self):
        assert (var("i") * var("j")).as_affine() is None

    def test_const_part(self):
        assert (var("i") + 7).const_part() == 7


class TestSubstitution:
    def test_subst_to_constant(self):
        e = var("i") * 4 + var("j")
        assert e.subst({"i": 2, "j": 1}).as_const() == 9

    def test_partial_subst(self):
        e = var("i") * var("j")
        assert e.subst({"i": 3}) == var("j") * 3

    def test_subst_with_expression(self):
        e = var("i") + 1
        assert e.subst({"i": var("k") * 2}) == var("k") * 2 + 1


class TestInterval:
    def test_affine_interval(self):
        e = var("i") * 4 + 3
        assert e.interval({"i": (0, 7)}) == (3, 31)

    def test_product_interval(self):
        e = var("i") * var("j")
        assert e.interval({"i": (0, 3), "j": (0, 5)}) == (0, 15)

    def test_negative_coefficient(self):
        e = IExpr.const(10) - var("i")
        assert e.interval({"i": (0, 4)}) == (6, 10)

    def test_unknown_variable_raises(self):
        with pytest.raises(SplSemanticError):
            var("k").interval({})


class TestOpValidation:
    def test_binary_requires_two(self):
        with pytest.raises(SplSemanticError):
            Op("+", FVar("f0"), FConst(1.0))

    def test_unary_rejects_two(self):
        with pytest.raises(SplSemanticError):
            Op("=", FVar("f0"), FConst(1.0), FConst(2.0))

    def test_unknown_operator(self):
        with pytest.raises(SplSemanticError):
            Op("%", FVar("f0"), FConst(1.0), FConst(2.0))


def small_program() -> Program:
    body = [
        Op("=", FVar("f0"), VecRef("x", IExpr.const(0))),
        Loop("i0", 4, [
            Op("+", VecRef("y", var("i0")), VecRef("x", var("i0")),
               FVar("f0")),
        ]),
    ]
    program = Program(name="p", in_size=4, out_size=4, datatype="real",
                      body=body)
    program.vectors["x"] = VecInfo("x", 4, VEC_INPUT)
    program.vectors["y"] = VecInfo("y", 4, VEC_OUTPUT)
    return program


class TestProgramHelpers:
    def test_flop_count_multiplies_loops(self):
        assert small_program().flop_count() == 4

    def test_iter_ops_descends(self):
        assert len(list(iter_ops(small_program().body))) == 2

    def test_scalar_names(self):
        assert small_program().scalar_names() == ["f0"]

    def test_io_names(self):
        p = small_program()
        assert p.input_name() == "x"
        assert p.output_name() == "y"

    def test_subst_indices(self):
        p = small_program()
        new_body = subst_indices(p.body, {"i0": 2})
        loop = new_body[1]
        assert isinstance(loop, Loop)
        op = loop.body[0]
        assert op.dest.index.as_const() == 2

    def test_map_operands_rejects_bad_dest(self):
        p = small_program()
        with pytest.raises(SplSemanticError):
            map_operands(p.body, lambda operand: FConst(1.0))
