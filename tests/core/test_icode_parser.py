"""Unit tests for the i-code mini-language parser."""

import pytest

from repro.core import icode_parser, lexer
from repro.core.errors import SplSyntaxError
from repro.core.lexer import TokenStream, tokenize
from repro.core.templates import (
    CondAnd,
    CondCompare,
    CondOr,
    TAssign,
    TBinop,
    TCall,
    TConst,
    TIndexVar,
    TIntrinsic,
    TLoop,
    TNumber,
    TPatVar,
    TProperty,
    TRAssign,
    TScalar,
    TVecElem,
    TemplateEnv,
    eval_condition,
    eval_texpr,
    eval_texpr_const,
)
from repro.core.icode import IExpr


def texpr(text: str):
    return icode_parser.parse_texpr(TokenStream(tokenize(text)))


def cond(text: str):
    return icode_parser.parse_condition(TokenStream(tokenize(text)))


def block(text: str):
    return icode_parser.parse_icode_block(TokenStream(tokenize(text)))


class TestTexprParsing:
    def test_constants_and_vars(self):
        assert texpr("5") == TConst(5)
        assert texpr("n_") == TPatVar("n_")
        assert texpr("$i0") == TIndexVar("i0")
        assert texpr("$r3") == TIndexVar("r3")

    def test_property(self):
        assert texpr("A_.in_size") == TProperty("A_", "in_size")

    def test_unknown_property_rejected(self):
        with pytest.raises(SplSyntaxError):
            texpr("A_.cols")

    def test_precedence(self):
        parsed = texpr("$i0 * 2 + 1")
        assert isinstance(parsed, TBinop) and parsed.op == "+"

    def test_division(self):
        parsed = texpr("nn_ / s_")
        assert isinstance(parsed, TBinop) and parsed.op == "/"

    def test_float_rejected(self):
        with pytest.raises(SplSyntaxError):
            texpr("1.5")

    def test_reserved_names(self):
        assert texpr("$in_size") == TIndexVar("in_size")
        assert texpr("$out_stride") == TIndexVar("out_stride")


class TestTexprEvaluation:
    def env(self, **ints):
        env = TemplateEnv(ints)
        env.index_vars["i0"] = IExpr.var("k")
        return env

    def test_patvar_substitution(self):
        value = eval_texpr(texpr("n_ - 1"), self.env(n_=8))
        assert value.as_const() == 7

    def test_property_lookup(self):
        env = TemplateEnv({"A_.in_size": 4})
        assert eval_texpr_const(texpr("A_.in_size"), env) == 4

    def test_loop_var_symbolic(self):
        value = eval_texpr(texpr("$i0 * n_"), self.env(n_=4))
        assert value == IExpr.var("k") * 4

    def test_exact_division(self):
        assert eval_texpr_const(texpr("nn_ / s_"),
                                TemplateEnv({"nn_": 12, "s_": 3})) == 4

    def test_inexact_division_raises(self):
        from repro.core.errors import SplTemplateError

        with pytest.raises(SplTemplateError):
            eval_texpr(texpr("nn_ / s_"), TemplateEnv({"nn_": 10, "s_": 3}))

    def test_unbound_patvar_raises(self):
        from repro.core.errors import SplTemplateError

        with pytest.raises(SplTemplateError):
            eval_texpr(texpr("n_"), TemplateEnv({}))


class TestConditions:
    def test_paper_example(self):
        parsed = cond("[ m_ == 2*n_ ]")
        env = TemplateEnv({"m_": 4, "n_": 2})
        assert eval_condition(parsed, env)
        assert not eval_condition(parsed, TemplateEnv({"m_": 4, "n_": 1}))

    def test_and_or(self):
        parsed = cond("[ n_ > 0 && n_ < 10 || n_ == 42 ]")
        assert eval_condition(parsed, TemplateEnv({"n_": 5}))
        assert eval_condition(parsed, TemplateEnv({"n_": 42}))
        assert not eval_condition(parsed, TemplateEnv({"n_": 11}))

    def test_not(self):
        parsed = cond("[ ! n_ == 3 ]")
        assert eval_condition(parsed, TemplateEnv({"n_": 4}))

    def test_all_comparators(self):
        for op, a, b, expected in [
            ("==", 2, 2, True), ("!=", 2, 3, True), ("<", 2, 3, True),
            ("<=", 3, 3, True), (">", 4, 3, True), (">=", 2, 3, False),
        ]:
            parsed = cond(f"[ {a} {op} {b} ]")
            assert eval_condition(parsed, TemplateEnv({})) is expected


class TestStatements:
    def test_loop_with_body(self):
        (loop,) = block("""(
          do $i0 = 0, n_ - 1
            $out($i0) = $in($i0)
          end
        )""")
        assert isinstance(loop, TLoop)
        assert loop.var == "i0"
        assert len(loop.body) == 1

    def test_end_do_accepted(self):
        (loop,) = block("""(
          do $i0 = 0, 3
            $out($i0) = $in($i0)
          end do
        )""")
        assert isinstance(loop, TLoop)

    def test_rassign(self):
        stmts = block("""(
          $r0 = $i0 * $i1
        )""")
        assert stmts == [TRAssign(name="r0",
                                  value=TBinop("*", TIndexVar("i0"),
                                               TIndexVar("i1")))]

    def test_four_tuple_forms(self):
        stmts = block("""(
          $f0 = $in(0) + $in(1)
          $f1 = $f0
          $f2 = -$f0
          $out(0) = 2.0 * $f2
        )""")
        assert [s.op for s in stmts] == ["+", "=", "neg", "*"]

    def test_intrinsic_operand(self):
        (stmt,) = block("""(
          $f0 = W(n_, $r0) * $in($i1)
        )""")
        assert isinstance(stmt.a, TIntrinsic)
        assert stmt.a.name == "W"

    def test_complex_pair_operand(self):
        (stmt,) = block("""(
          $out(0) = (0.7,-0.7) * $in(0)
        )""")
        assert stmt.a == TNumber(complex(0.7, -0.7))

    def test_call_statement(self):
        (call,) = block("""(
          B_($in, $t0, 0, 0, 1, 1)
        )""")
        assert isinstance(call, TCall)
        assert call.var == "B_"
        assert call.in_vec == "in"
        assert call.out_vec == "t0"

    def test_two_operators_rejected(self):
        with pytest.raises(SplSyntaxError):
            block("""(
              $f0 = $in(0) + $in(1) + $in(2)
            )""")

    def test_unbalanced_do_rejected(self):
        with pytest.raises(SplSyntaxError):
            block("""(
              do $i0 = 0, 3
                $out($i0) = $in($i0)
            )""")

    def test_stray_end_rejected(self):
        with pytest.raises(SplSyntaxError):
            block("""(
              end
            )""")

    def test_assignment_to_input_allowed_shape(self):
        # $in(k) as destination is syntactically valid per the grammar
        # (some templates permute in place); just check it parses.
        (stmt,) = block("""(
          $in(0) = $in(1)
        )""")
        assert isinstance(stmt.dest, TVecElem)

    def test_non_loop_var_in_do_rejected(self):
        with pytest.raises(SplSyntaxError):
            block("""(
              do $f0 = 0, 3
              end
            )""")
